"""Tracked solver perf suite: incremental vs. the retained reference path.

Times three representative scenarios twice in the same run — once with the
component-aware incremental solver and once with the pre-PR reference
solver (global synchronous progressive filling, retained as
``DeploymentConfig(solver="reference")``):

* **fig2_baseline** — the Fig. 2-shaped dd bag (the repo's hottest shape:
  every stripe fan-out rebalances the victim NICs),
* **hpcc_under_montage** — the HPCC tenant suite with the Montage
  scavenging workload underneath (Fig. 3's contention channel),
* **fault_storm** — the §V-C revocation storm over a replicated
  population (bursts of evacuations + repairs).

Each scenario must produce **byte-identical simulated outputs** in both
modes (runtimes, NIC figures, monitor series, fault counters); the suite
asserts that, reports the solver counters from :data:`flownet_stats`, and
fails if the Fig. 2-shaped scenario is not ≥ 5× faster end-to-end under
the incremental solver.  Counter budgets for the smoke lane live in
``perf_budget.json`` — counter-based, so the CI gate is stable on shared
runners (wall-clock is reported, only asserted on the full run).

Results land in ``results/perf-suite.json`` (or ``-smoke``) and
``BENCH_perf.json`` at the repo root, the perf trajectory later PRs
regress against.  ``PERF_SMOKE=1`` shrinks every scenario for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _harness import load_cached, save_cached
from repro.core import DeploymentConfig, MemFSSDeployment
from repro.core.experiment import baseline_run
from repro.core.slowdown import BackgroundWorkload, _run_suite
from repro.faults import FaultInjector, fault_stats, revocation_storm
from repro.metrics import render_table
from repro.sim import flownet_stats
from repro.tenants import hpcc_suite
from repro.units import GB, MB
from repro.workflows import montage

SMOKE = os.environ.get("PERF_SMOKE") == "1"
KEY = "perf-suite-smoke" if SMOKE else "perf-suite"
ROOT = Path(__file__).resolve().parent.parent
BUDGET = json.loads((Path(__file__).parent / "perf_budget.json").read_text())

SOLVERS = ("incremental", "reference")

# Scenario scales (reduced but shape-preserving under PERF_SMOKE).
FIG2_TASKS = 48 if SMOKE else 256
FIG2_FILE = 32 * MB if SMOKE else 1024 * MB
HPCC_SCALE = 0.15 if SMOKE else 0.4
HPCC_WARMUP = 5.0 if SMOKE else 15.0
STORM_FILES = 6 if SMOKE else 12
STORM_FILE_SIZE = 4 * MB
STORM_AT = 0.05
SEED = 1913


def _fig2(solver: str) -> dict:
    m = baseline_run(alpha=0.25, n_tasks=FIG2_TASKS, file_size=FIG2_FILE,
                     config=DeploymentConfig(solver=solver),
                     keep_series=True)
    times, values = m.series["victim.rx"]
    return {
        "runtime_s": m.runtime_s,
        "own_cpu": m.own_cpu, "own_tx": m.own_tx, "own_rx": m.own_rx,
        "victim_rx": m.victim_rx,
        "victim_rx_bytes_s": m.victim_rx_bytes_s,
        "peak_victim_rx": m.peak_victim_rx,
        "victim_rx_series": [list(map(float, times)),
                             list(map(float, values))],
    }


def _hpcc_under_montage(solver: str) -> dict:
    cfg = DeploymentConfig(alpha=0.25, stripe_size=64 * MB, solver=solver)
    dep = MemFSSDeployment(cfg)
    background = BackgroundWorkload(
        dep, lambda i: montage(width=96, compute_scale=0.02,
                               parallel_task_scale=2.0))
    background.start()
    dep.env.run(until=dep.env.now + HPCC_WARMUP)
    times = _run_suite(dep, hpcc_suite(HPCC_SCALE))
    background.stop()
    return {"runtimes_s": times}


def _fault_storm(solver: str) -> dict:
    fault_stats.reset()
    cfg = DeploymentConfig(n_own=2, n_victim=8, alpha=0.25,
                           victim_memory=2 * GB, own_store_capacity=8 * GB,
                           stripe_size=1 * MB, replication=2, seed=SEED,
                           io_retries=4, solver=solver)
    dep = MemFSSDeployment(cfg)
    env, fs, agent = dep.env, dep.fs, dep.own[0]
    injector = FaultInjector(
        env, revocation_storm(at=STORM_AT, fraction=0.5),
        manager=dep.manager, reservations=dep.cluster.reservations,
        rng=dep.rng)
    injector.start()
    blob = b"\x5a" * STORM_FILE_SIZE
    paths = [f"/bench/f{i}" for i in range(STORM_FILES)]

    def driver():
        t0 = env.now
        for path in paths:
            yield from fs.write_file(agent, path, payload=blob)
        losses = 0
        for path in paths:
            _n, back = yield from fs.read_file(agent, path)
            losses += back != blob
        return env.now - t0, losses

    proc = env.process(driver())
    runtime, losses = env.run(until=proc)
    env.run()  # drain in-flight evacuations
    return {
        "runtime_s": runtime,
        "data_losses": losses,
        "fault_counters": fault_stats.snapshot(),
        "injected": [[t, kind, list(names)]
                     for t, kind, names in injector.log],
    }


SCENARIOS = {
    "fig2_baseline": (_fig2, {"alpha": 0.25, "n_tasks": FIG2_TASKS,
                              "file_mb": FIG2_FILE / MB}),
    "hpcc_under_montage": (_hpcc_under_montage,
                           {"suite_scale": HPCC_SCALE,
                            "warmup_s": HPCC_WARMUP}),
    "fault_storm": (_fault_storm, {"n_files": STORM_FILES,
                                   "storm_fraction": 0.5, "seed": SEED}),
}


def _publish(data: dict) -> None:
    # The repo-root trajectory file always mirrors the *full* run; the
    # smoke lane only writes its own results/perf-suite-smoke.json.
    if not data["smoke"]:
        (ROOT / "BENCH_perf.json").write_text(
            json.dumps(data, indent=2, sort_keys=True))


def run_perf_suite() -> dict:
    cached = load_cached(KEY)
    if cached is not None:
        _publish(cached)
        return cached
    t0 = time.time()
    data: dict = {"smoke": SMOKE, "scenarios": {}}
    for name, (fn, params) in SCENARIOS.items():
        signatures, walls, counters = {}, {}, {}
        for solver in SOLVERS:
            flownet_stats.reset()
            t = time.perf_counter()
            signatures[solver] = fn(solver)
            walls[solver] = time.perf_counter() - t
            counters[solver] = flownet_stats.snapshot()
        data["scenarios"][name] = {
            "params": params,
            "byte_identical":
                signatures["incremental"] == signatures["reference"],
            "signature": signatures["incremental"],
            "wall_s": walls,
            "speedup": walls["reference"] / walls["incremental"],
            "solver_counters": counters,
        }
    data["wall_seconds"] = time.time() - t0
    save_cached(KEY, data)
    _publish(data)
    return data


def test_perf_suite(benchmark):
    data = benchmark.pedantic(run_perf_suite, rounds=1, iterations=1)
    scenarios = data["scenarios"]
    print()
    print(render_table(
        ["scenario", "incremental (s)", "reference (s)", "speedup",
         "identical", "solves", "flows touched"],
        [[name,
          f"{s['wall_s']['incremental']:.2f}",
          f"{s['wall_s']['reference']:.2f}",
          f"{s['speedup']:.2f}x",
          str(s["byte_identical"]),
          s["solver_counters"]["incremental"]["solves"],
          s["solver_counters"]["incremental"]["flows_touched"]]
         for name, s in scenarios.items()],
        title="Solver perf suite "
              f"({'smoke' if data['smoke'] else 'full'} scale)"))

    # Byte-identical simulated physics in both solver modes, everywhere.
    for name, s in scenarios.items():
        assert s["byte_identical"], name

    # The tentpole target: >= 5x end-to-end on the Fig. 2-shaped scenario
    # (full scale only; smoke runs are too small to amortize anything and
    # are gated on counters instead).
    if not data["smoke"]:
        assert scenarios["fig2_baseline"]["speedup"] >= 5.0

    # Counter budgets: the incremental solver must not regress into doing
    # more solve work than the checked-in ceiling allows.
    budget = BUDGET["smoke" if data["smoke"] else "full"]
    for name, limits in budget.items():
        got = scenarios[name]["solver_counters"]["incremental"]
        for counter, ceiling in limits.items():
            assert got[counter] <= ceiling, (
                f"{name}.{counter}: {got[counter]} > budget {ceiling}")

    # The storm scenario still recovers: no data loss, no open faults.
    storm = scenarios["fault_storm"]["signature"]
    assert storm["data_losses"] == 0
    assert storm["fault_counters"]["open_faults"] == 0
