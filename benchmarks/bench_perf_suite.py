"""Tracked solver perf suite: incremental vs. reference vs. adaptive.

Times representative scenarios under every flow-solver mode the fabric
supports — the component-aware incremental solver, the pre-PR reference
solver (global synchronous progressive filling, retained as
``DeploymentConfig(solver="reference")``), and the adaptive ``"auto"``
mode that picks a fill strategy per mutation burst
(:mod:`repro.sim.select`):

* **fig2_baseline** — the Fig. 2-shaped dd bag (the repo's hottest shape:
  every stripe fan-out rebalances the victim NICs),
* **hpcc_under_montage** — the HPCC tenant suite with the Montage
  scavenging workload underneath (Fig. 3's contention channel),
* **fault_storm** — the §V-C revocation storm over a replicated
  population (bursts of evacuations + repairs),
* **das5x16_fig2** — the Fig. 2 shape on a ×16 DAS-5 (1088 nodes), the
  ROADMAP's 1000+-node scale target.  Run with the incremental and auto
  solvers only (auto must be byte-identical to the solver it selects and
  land within the wall-time gate); the reference solver is quadratic in
  links here and is deliberately not part of the gate,
* **fault_storm_large** — the revocation storm at 128 nodes, the shape
  behind the old fault_storm 0.81x regression, now required to win.

Each scenario must produce **byte-identical simulated outputs** in every
mode it runs (runtimes, NIC figures, monitor series, fault counters);
the suite asserts that, reports the solver counters from
:data:`flownet_stats`, and gates:

* incremental ≥ 5× on fig2_baseline (full scale, unchanged),
* **auto ≥ 1× reference everywhere and ≥ 10× on fig2_baseline** —
  the adaptive selector may never lose to the baseline it replaces,
* counter budgets and the das5x16 wall-time ceilings from
  ``perf_budget.json`` (counter gates are exact, wall gates generous so
  the CI lane is stable on shared runners).

Results land in ``results/perf-suite.json`` (or ``-smoke``) and
``BENCH_perf.json`` at the repo root, the perf trajectory later PRs
regress against; the auto mode's per-flush decision trace lands in
``results/solver-decisions[-smoke].json`` for audit.  ``PERF_SMOKE=1``
shrinks every scenario for CI.
"""

from __future__ import annotations

import gc
import json
import math
import multiprocessing as mp
import os
import time
from pathlib import Path

from _harness import load_cached, save_cached
from repro.core import DeploymentConfig, MemFSSDeployment
from repro.core.experiment import baseline_run
from repro.core.slowdown import BackgroundWorkload, _run_suite
from repro.faults import FaultInjector, fault_stats, revocation_storm
from repro.metrics import render_table
from repro.sim import (flownet_stats, reset_selection_log,
                       selection_snapshot, selection_summary)
from repro.tenants import hpcc_suite
from repro.units import GB, MB
from repro.workflows import montage

SMOKE = os.environ.get("PERF_SMOKE") == "1"
KEY = "perf-suite-smoke" if SMOKE else "perf-suite"
ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(__file__).resolve().parent / "results"
BUDGET = json.loads((Path(__file__).parent / "perf_budget.json").read_text())

SOLVERS = ("incremental", "auto", "reference")
#: Longest stored decision trace per scenario (the in-process log caps
#: at 4096; the stored file records how much was cut on top of that).
MAX_TRACE = 500

# Scenario scales (reduced but shape-preserving under PERF_SMOKE).
FIG2_TASKS = 48 if SMOKE else 256
FIG2_FILE = 32 * MB if SMOKE else 1024 * MB
HPCC_SCALE = 0.15 if SMOKE else 0.4
HPCC_WARMUP = 5.0 if SMOKE else 15.0
STORM_FILES = 6 if SMOKE else 12
STORM_FILE_SIZE = 4 * MB
STORM_AT = 0.05
SEED = 1913
# ×16 DAS-5 Fig. 2 shape: 1088 nodes either way; the task bag shrinks.
DAS5X16_TASKS = 8 if SMOKE else 128
DAS5X16_FILE = 32 * MB if SMOKE else 256 * MB
# Large storm: 64 nodes (smoke) / 128 nodes (full), replicated files.
STORM_L_SCALE = 2 if SMOKE else 4
STORM_L_FILES = 8 if SMOKE else 24


def _fig2_signature(m) -> dict:
    times, values = m.series["victim.rx"]
    return {
        "runtime_s": m.runtime_s,
        "own_cpu": m.own_cpu, "own_tx": m.own_tx, "own_rx": m.own_rx,
        "victim_rx": m.victim_rx,
        "victim_rx_bytes_s": m.victim_rx_bytes_s,
        "peak_victim_rx": m.peak_victim_rx,
        "victim_rx_series": [list(map(float, times)),
                             list(map(float, values))],
    }


def _fig2(solver: str) -> dict:
    m = baseline_run(alpha=0.25, n_tasks=FIG2_TASKS, file_size=FIG2_FILE,
                     config=DeploymentConfig(solver=solver),
                     keep_series=True)
    return _fig2_signature(m)


def _das5x16_fig2(solver: str) -> dict:
    m = baseline_run(alpha=0.25, n_tasks=DAS5X16_TASKS,
                     file_size=DAS5X16_FILE,
                     config=DeploymentConfig(scale=16, solver=solver),
                     keep_series=True)
    return _fig2_signature(m)


def _hpcc_under_montage(solver: str) -> dict:
    cfg = DeploymentConfig(alpha=0.25, stripe_size=64 * MB, solver=solver)
    dep = MemFSSDeployment(cfg)
    background = BackgroundWorkload(
        dep, lambda i: montage(width=96, compute_scale=0.02,
                               parallel_task_scale=2.0))
    background.start()
    dep.env.run(until=dep.env.now + HPCC_WARMUP)
    times = _run_suite(dep, hpcc_suite(HPCC_SCALE))
    background.stop()
    return {"runtimes_s": times}


def _storm(config: DeploymentConfig, n_files: int) -> dict:
    fault_stats.reset()
    dep = MemFSSDeployment(config)
    env, fs, agent = dep.env, dep.fs, dep.own[0]
    injector = FaultInjector(
        env, revocation_storm(at=STORM_AT, fraction=0.5),
        manager=dep.manager, reservations=dep.cluster.reservations,
        rng=dep.rng)
    injector.start()
    blob = b"\x5a" * STORM_FILE_SIZE
    paths = [f"/bench/f{i}" for i in range(n_files)]

    def driver():
        t0 = env.now
        for path in paths:
            yield from fs.write_file(agent, path, payload=blob)
        losses = 0
        for path in paths:
            _n, back = yield from fs.read_file(agent, path)
            losses += back != blob
        return env.now - t0, losses

    proc = env.process(driver())
    runtime, losses = env.run(until=proc)
    env.run()  # drain in-flight evacuations
    return {
        "runtime_s": runtime,
        "data_losses": losses,
        "fault_counters": fault_stats.snapshot(),
        "injected": [[t, kind, list(names)]
                     for t, kind, names in injector.log],
    }


def _fault_storm(solver: str) -> dict:
    return _storm(DeploymentConfig(
        n_own=2, n_victim=8, alpha=0.25, victim_memory=2 * GB,
        own_store_capacity=8 * GB, stripe_size=1 * MB, replication=2,
        seed=SEED, io_retries=4, solver=solver), STORM_FILES)


def _fault_storm_large(solver: str) -> dict:
    return _storm(DeploymentConfig(
        n_own=4, n_victim=28, scale=STORM_L_SCALE, alpha=0.25,
        victim_memory=2 * GB, own_store_capacity=16 * GB,
        stripe_size=1 * MB, replication=2, seed=SEED, io_retries=4,
        solver=solver), STORM_L_FILES)


#: name -> (runner, recorded params, solver modes to run).  das5x16 skips
#: the reference solver on purpose: its whole-graph dict fill is
#: quadratic in links there, and the gate is auto-vs-selected identity +
#: the wall ceiling, not a reference speedup.
SCENARIOS = {
    "fig2_baseline": (_fig2, {"alpha": 0.25, "n_tasks": FIG2_TASKS,
                              "file_mb": FIG2_FILE / MB}, SOLVERS),
    "hpcc_under_montage": (_hpcc_under_montage,
                           {"suite_scale": HPCC_SCALE,
                            "warmup_s": HPCC_WARMUP}, SOLVERS),
    "fault_storm": (_fault_storm, {"n_files": STORM_FILES,
                                   "storm_fraction": 0.5, "seed": SEED},
                    SOLVERS),
    "das5x16_fig2": (_das5x16_fig2,
                     {"alpha": 0.25, "scale": 16, "n_nodes": 1088,
                      "n_tasks": DAS5X16_TASKS,
                      "file_mb": DAS5X16_FILE / MB},
                     ("incremental", "auto")),
    "fault_storm_large": (_fault_storm_large,
                          {"n_files": STORM_L_FILES,
                           "scale": STORM_L_SCALE,
                           "n_nodes": 32 * STORM_L_SCALE,
                           "storm_fraction": 0.5, "seed": SEED}, SOLVERS),
}


#: Scenarios measured with interleaved reps in a single child: their
#: speedup gate compares near-equal sub-second walls, where host drift
#: between separately-forked children is larger than the effect being
#: gated.  Interleaving the reps mode-for-mode cancels that drift.
#: Everything else gets a child per mode, isolating the reference
#: solver's heap churn (which at tens-of-seconds scale taxes whatever
#: is timed after it by double-digit percents, even across an explicit
#: ``gc.collect()``).
PAIRED = frozenset({"fault_storm"})


def _timed_rep(fn, solver: str) -> tuple[float, dict]:
    flownet_stats.reset()
    reset_selection_log()
    gc.collect()
    t = time.perf_counter()
    sig = fn(solver)
    return time.perf_counter() - t, sig


def _base_payload(wall: float, signature: dict, solver: str) -> dict:
    """Payload for one cell; call right after its rep (reads globals)."""
    payload = {
        "wall": wall,
        "signature": signature,
        "counters": flownet_stats.snapshot(),
    }
    if solver == "auto":
        trace = selection_snapshot()
        payload["decisions"] = {
            "summary": selection_summary(),
            "trace": trace[:MAX_TRACE],
            "trace_truncated": max(0, len(trace) - MAX_TRACE),
        }
    return payload


def _solver_payload(name: str, solver: str) -> dict:
    """Measure one (scenario, solver) cell: signature, counters, wall.

    Signatures, counters and the selector trace are deterministic, so
    one rep covers them.  Wall clocks are not: the speedup gates compare
    best-of-N walls, with more reps the shorter the wall (a scheduling
    hiccup or a cold first rep is a larger fraction of a small wall).
    Smoke runs gate on counters, not speedups, and take a single rep.
    """
    fn, _, _ = SCENARIOS[name]
    wall, signature = _timed_rep(fn, solver)
    payload = _base_payload(wall, signature, solver)
    if SMOKE:
        extra = 0
    elif wall < 5.0:
        # The first rep in a freshly forked child runs cold (method and
        # allocator caches); on short walls that skews the best-of
        # upward, so it only seeds the payload and is excluded from the
        # timing.  Long walls amortize the cold start and keep it.
        payload["wall"] = math.inf
        extra = 4 if wall < 1.0 else 3
    else:
        extra = 1
    for _ in range(extra):
        w, _sig = _timed_rep(fn, solver)
        payload["wall"] = min(payload["wall"], w)
    return payload


def _paired_payloads(name: str) -> dict:
    """Measure every solver mode of one scenario, reps interleaved.

    The first round doubles as the cold-start warmup: it seeds each
    payload (signature, counters, trace) but its walls are excluded
    from the best-of timing, mirroring :func:`_solver_payload`.
    """
    fn, _, solvers = SCENARIOS[name]
    payloads: dict[str, dict] = {}
    for rnd in range(1 if SMOKE else 6):
        for solver in solvers:
            wall, sig = _timed_rep(fn, solver)
            if solver not in payloads:
                payloads[solver] = _base_payload(wall, sig, solver)
                if not SMOKE:
                    payloads[solver]["wall"] = math.inf
            else:
                payloads[solver]["wall"] = min(
                    payloads[solver]["wall"], wall)
    return payloads


def _in_child(worker, what: str):
    """Run *worker* in a forked child so each measurement starts from
    the same clean allocator heap; falls back to in-process measurement
    on platforms without fork.  The fork inherits warmed imports."""
    if "fork" not in mp.get_all_start_methods():  # pragma: no cover
        return worker()
    ctx = mp.get_context("fork")
    recv, send = ctx.Pipe(duplex=False)

    def child() -> None:
        try:
            send.send(worker())
        finally:
            send.close()

    proc = ctx.Process(target=child)
    proc.start()
    send.close()
    try:
        payload = recv.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(f"perf child for {what} died "
                           f"(exit {proc.exitcode})") from None
    proc.join()
    return payload


def _measure_scenario(name: str, solvers: tuple) -> dict:
    """{solver: payload} for one scenario, per the PAIRED policy."""
    if name in PAIRED:
        return _in_child(lambda: _paired_payloads(name), name)
    return {s: _in_child(lambda s=s: _solver_payload(name, s),
                         f"{name}/{s}")
            for s in solvers}


def _publish(data: dict) -> None:
    # The decision trace is audit data: always written next to the suite
    # results, never into the repo-root trajectory file (it is bulky).
    RESULTS.mkdir(exist_ok=True)
    trace_name = ("solver-decisions-smoke.json" if data["smoke"]
                  else "solver-decisions.json")
    (RESULTS / trace_name).write_text(json.dumps(
        data.get("selector_decisions", {}), indent=2, sort_keys=True))
    # The repo-root trajectory file always mirrors the *full* run; the
    # smoke lane only writes its own results/perf-suite-smoke.json.
    if not data["smoke"]:
        slim = {k: v for k, v in data.items() if k != "selector_decisions"}
        (ROOT / "BENCH_perf.json").write_text(
            json.dumps(slim, indent=2, sort_keys=True))


def run_perf_suite() -> dict:
    cached = load_cached(KEY)
    if cached is not None:
        _publish(cached)
        return cached
    t0 = time.time()
    data: dict = {"smoke": SMOKE, "scenarios": {}, "selector_decisions": {}}
    for name, (fn, params, solvers) in SCENARIOS.items():
        signatures, walls, counters = {}, {}, {}
        got_all = _measure_scenario(name, solvers)
        for solver in solvers:
            got = got_all[solver]
            signatures[solver] = got["signature"]
            walls[solver] = got["wall"]
            counters[solver] = got["counters"]
            if "decisions" in got:
                data["selector_decisions"][name] = got["decisions"]
        base = solvers[0]
        entry = {
            "params": params,
            "solvers": list(solvers),
            "byte_identical": all(signatures[s] == signatures[base]
                                  for s in solvers),
            "signature": signatures[base],
            "wall_s": walls,
            "solver_counters": counters,
        }
        if "reference" in walls:
            entry["speedup"] = walls["reference"] / walls["incremental"]
            entry["speedup_auto"] = walls["reference"] / walls["auto"]
        else:
            # No reference run: report auto against the selected solver.
            entry["speedup_auto"] = walls["incremental"] / walls["auto"]
        if name in data["selector_decisions"]:
            entry["selector"] = data["selector_decisions"][name]["summary"]
        data["scenarios"][name] = entry
    data["wall_seconds"] = time.time() - t0
    save_cached(KEY, data)
    _publish(data)
    return data


def test_perf_suite(benchmark):
    data = benchmark.pedantic(run_perf_suite, rounds=1, iterations=1)
    scenarios = data["scenarios"]
    print()
    print(render_table(
        ["scenario", "incremental (s)", "reference (s)", "auto (s)",
         "auto speedup", "identical", "solves", "flows touched"],
        [[name,
          f"{s['wall_s']['incremental']:.2f}",
          (f"{s['wall_s']['reference']:.2f}"
           if "reference" in s["wall_s"] else "-"),
          f"{s['wall_s']['auto']:.2f}",
          f"{s['speedup_auto']:.2f}x",
          str(s["byte_identical"]),
          s["solver_counters"]["incremental"]["solves"],
          s["solver_counters"]["incremental"]["flows_touched"]]
         for name, s in scenarios.items()],
        title="Solver perf suite "
              f"({'smoke' if data['smoke'] else 'full'} scale)"))

    # Byte-identical simulated physics in every solver mode, everywhere.
    for name, s in scenarios.items():
        assert s["byte_identical"], name

    # Speedup gates (full scale only; smoke runs are too small to
    # amortize anything and are gated on counters instead):
    # fig2 keeps the original >= 5x incremental target, and the adaptive
    # mode must beat the reference solver >= 10x there and may not lose
    # to it anywhere the reference runs.  The storm scenarios carry an
    # explicit measurement-noise floor: their solver work is single-
    # digit milliseconds of a wall this host resolves to ~5-8% at best,
    # so a strict 1.0x there would gate on scheduler jitter, not on the
    # solvers — the deterministic work gates below are the real
    # no-regression proof (the seed's fault_storm hole was a 25% wall
    # regression, which the 0.9 floor still catches).
    if not data["smoke"]:
        assert scenarios["fig2_baseline"]["speedup"] >= 5.0
        assert scenarios["fig2_baseline"]["speedup_auto"] >= 10.0
        for name in ("fig2_baseline", "hpcc_under_montage"):
            assert scenarios[name]["speedup_auto"] >= 1.0, (
                f"{name}: auto {scenarios[name]['speedup_auto']:.2f}x "
                "< 1.0x vs reference")
        for name in ("fault_storm", "fault_storm_large"):
            assert scenarios[name]["speedup_auto"] >= 0.9, (
                f"{name}: auto {scenarios[name]['speedup_auto']:.2f}x "
                "< 0.9x vs reference (beyond measurement noise)")

    # Deterministic no-regression gates for the storm shapes, valid at
    # any scale: the adaptive mode must do no more solver work than the
    # per-mutation reference it replaces.  Coalescing guarantees fewer
    # solves and the burst-shape decision keeps whole-graph fills off
    # the quiet path, so every counter is <= by construction.
    for name in ("fault_storm", "fault_storm_large"):
        got = scenarios[name]["solver_counters"]
        for counter in ("solves", "full_solves", "rounds",
                        "flows_touched"):
            assert got["auto"][counter] <= got["reference"][counter], (
                f"{name}: auto did more solver work than reference "
                f"({counter}: {got['auto'][counter]} > "
                f"{got['reference'][counter]})")

    # Budget gates: counter ceilings on the incremental solver's work,
    # plus `wall_s_<solver>` wall-clock ceilings (the das5x16 "completes
    # on one core in time" gate — generous, so shared runners pass).
    budget = BUDGET["smoke" if data["smoke"] else "full"]
    for name, limits in budget.items():
        s = scenarios[name]
        got = s["solver_counters"]["incremental"]
        for counter, ceiling in limits.items():
            if counter.startswith("wall_s_"):
                solver = counter[len("wall_s_"):]
                assert s["wall_s"][solver] <= ceiling, (
                    f"{name}.{counter}: {s['wall_s'][solver]:.2f}s "
                    f"> budget {ceiling}s")
            else:
                assert got[counter] <= ceiling, (
                    f"{name}.{counter}: {got[counter]} > budget {ceiling}")

    # The auto mode must actually have exercised the selector.
    for name, s in scenarios.items():
        if "auto" in s["wall_s"]:
            assert s["selector"]["decisions"] >= 1, name

    # The storm scenarios still recover: no data loss, no open faults.
    for name in ("fault_storm", "fault_storm_large"):
        storm = scenarios[name]["signature"]
        assert storm["data_losses"] == 0
        assert storm["fault_counters"]["open_faults"] == 0
