"""Fig. 7 — normalized runtime and resource consumption (paper §IV-D).

The Table II points normalized against the 20-node standalone run: as the
number of own nodes grows, normalized runtime approaches 1.0 from above
and normalized node-hours (the savings) approach 1.0 from below.
"""

import pytest

from repro.metrics import render_bars, render_table

from bench_table2_consumption import run_consumption


def test_fig7_normalized(benchmark):
    data = benchmark.pedantic(run_consumption, rounds=1, iterations=1)
    points = {p["label"]: p for p in data["points"]}
    base = points["standalone-20"]

    rows = []
    series = {}
    for n in (4, 8, 16):
        p = points[f"scavenging-{n}"]
        nr = p["runtime_s"] / base["runtime_s"]
        nh = p["node_hours"] / base["node_hours"]
        rows.append([f"{n} own + {40 - n} victims",
                     f"{nr:.3f}", f"{nh:.3f}"])
        series[f"runtime n={n}"] = nr
        series[f"node-hours n={n}"] = nh
    rows.append(["20 standalone", "1.000", "1.000"])
    print()
    print(render_table(["setup", "normalized runtime",
                        "normalized node-hours"], rows,
                       title="Fig. 7: normalized vs. 20-node standalone"))
    print(render_bars(series, unit="x", title="Fig. 7 series"))

    norm_rt = [points[f"scavenging-{n}"]["runtime_s"] / base["runtime_s"]
               for n in (4, 8, 16)]
    norm_nh = [points[f"scavenging-{n}"]["node_hours"] / base["node_hours"]
               for n in (4, 8, 16)]
    # Runtime decreases toward 1.0 as own nodes grow (wave quantization
    # lets the 16-own point graze 1.0 from below at this scale).
    assert norm_rt[0] > norm_rt[1] >= norm_rt[2] >= 0.98
    # Node-hours increase toward 1.0 as own nodes grow; stay below 1.0.
    assert norm_nh[0] < norm_nh[1] < norm_nh[2] < 1.0
