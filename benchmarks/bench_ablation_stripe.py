"""Ablation — stripe size (paper §III-C).

Striping exists "such that we achieve load balance within nodes in the
same class".  Small stripes balance better but cost more requests (and
more victim-side disturbance); large stripes amortize request overhead but
skew per-node load for small files.  Sweep the stripe size under the dd
bag and report runtime, victim load balance, and request rate.
"""

import statistics

import pytest

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.metrics import render_table
from repro.units import GB, MB
from repro.workflows import dd_bag

from _harness import load_cached, save_cached

STRIPES = (8 * MB, 32 * MB, 128 * MB)


def run_sweep():
    cached = load_cached("ablation-stripe")
    if cached is not None:
        return cached
    rows = []
    for stripe in STRIPES:
        cfg = DeploymentConfig(alpha=0.25, stripe_size=int(stripe))
        dep = MemFSSDeployment(cfg)
        result = dep.engine.execute(dd_bag(n_tasks=192, file_size=128 * MB))
        victim_bytes = [dep.fs.servers[v.name].kv.bytes_in
                        for v in dep.victims]
        mean_b = statistics.mean(victim_bytes)
        cv = statistics.pstdev(victim_bytes) / mean_b if mean_b else 0.0
        requests = sum(dep.fs.servers[v.name].requests_served
                       for v in dep.victims)
        rows.append({
            "stripe_mb": stripe / MB,
            "runtime_s": result.makespan,
            "victim_cv": cv,
            "victim_requests": requests,
        })
    data = {"rows": rows}
    save_cached("ablation-stripe", data)
    return data


def test_ablation_stripe_size(benchmark):
    data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = data["rows"]
    print()
    print(render_table(
        ["stripe", "runtime", "victim byte-balance CV", "victim requests"],
        [[f"{r['stripe_mb']:.0f} MB", f"{r['runtime_s']:.2f} s",
          f"{r['victim_cv']:.3f}", f"{r['victim_requests']:.0f}"]
         for r in rows],
        title="Stripe-size ablation (dd bag, alpha = 25%)"))

    # Smaller stripes -> more requests, better balance.
    reqs = [r["victim_requests"] for r in rows]
    assert reqs[0] > reqs[1] > reqs[2]
    cvs = [r["victim_cv"] for r in rows]
    assert cvs[0] <= cvs[2] + 0.05
    # Runtime stays in the same ballpark (throughput is FUSE-bound).
    rts = [r["runtime_s"] for r in rows]
    assert max(rts) / min(rts) < 1.5
