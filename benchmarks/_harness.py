"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure.  Experiments run at
a *reduced but shape-preserving* scale (documented per bench): background
workflows keep the paper's per-second traffic intensity but loop smaller
bags, and tenant benchmarks shrink proportionally (slowdown ratios are
scale-free).  Results are cached as JSON under ``benchmarks/results`` so
the Fig. 6 summary can aggregate Figs. 3-5 without re-simulating, and so
EXPERIMENTS.md can be regenerated from the same artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.core.slowdown import BackgroundWorkload, _run_suite
from repro.tenants import (hibench_hadoop_suite, hibench_spark_suite,
                           hpcc_suite)
from repro.units import MB
from repro.workflows import blast, dd_bag, montage

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Tenant input scales used by the benches (slowdown ratios are
#: scale-free; smaller inputs just shorten the wall time).
HPCC_SCALE = 0.4
HIBENCH_SCALE = 0.4

#: The paper's three MemFSS workloads, reduced to steady-state loops that
#: keep the full-scale traffic *intensity* (the bags are FUSE-bandwidth
#: bound, so fewer tasks per iteration only shortens the loop period).
WORKLOAD_FACTORIES = {
    "Montage": lambda i: montage(width=96, compute_scale=0.02,
                                 parallel_task_scale=2.0),
    "BLAST": lambda i: blast(n_searches=256, split_seconds=10.0,
                             search_seconds=60.0),
    "dd": lambda i: dd_bag(n_tasks=64, file_size=256 * MB),
}

SUITES = {
    "hpcc": lambda n: hpcc_suite(HPCC_SCALE),
    "hibench-hadoop": lambda n: hibench_hadoop_suite(n, HIBENCH_SCALE),
    "hibench-spark": lambda n: hibench_spark_suite(n, HIBENCH_SCALE),
}


def _cache_file(key: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / f"{key}.json"


def load_cached(key: str) -> dict | None:
    path = _cache_file(key)
    if path.exists():
        return json.loads(path.read_text())
    return None


def save_cached(key: str, data: dict) -> None:
    _cache_file(key).write_text(json.dumps(data, indent=2, sort_keys=True))


def run_suite_once(suite: str, alpha: float,
                   workload: str | None,
                   warmup: float = 30.0) -> dict[str, float]:
    """Per-benchmark runtimes of *suite* under the given scavenging load.

    ``workload=None`` is the undisturbed baseline.  A fresh deployment is
    built per call; results are deterministic for fixed parameters.
    """
    # 64 MB stripes halve the event rate of the background loop; the
    # interference channels integrate store *bytes*, so slowdowns are
    # insensitive to the stripe size (see bench_ablation_stripe).
    config = DeploymentConfig(alpha=alpha, stripe_size=64 * MB)
    dep = MemFSSDeployment(config)
    background = None
    if workload is not None:
        background = BackgroundWorkload(dep, WORKLOAD_FACTORIES[workload])
        background.start()
        dep.env.run(until=dep.env.now + warmup)
    times = _run_suite(dep, SUITES[suite](len(dep.victims)))
    if background is not None:
        background.stop()
    return times


def slowdown_table(suite: str, alpha: float,
                   workloads: tuple[str, ...] = ("Montage", "BLAST", "dd"),
                   ) -> dict:
    """Slowdowns of every benchmark in *suite* under each workload.

    Returns ``{"baseline": {...}, "<workload>": {bench: pct}}``, cached.
    """
    key = f"slowdown-{suite}-alpha{int(alpha * 100)}"
    cached = load_cached(key)
    if cached is not None:
        return cached
    t0 = time.time()
    baseline = run_suite_once(suite, alpha, None)
    out: dict = {"suite": suite, "alpha": alpha, "baseline": baseline,
                 "slowdowns": {}}
    for wl in workloads:
        loaded = run_suite_once(suite, alpha, wl)
        out["slowdowns"][wl] = {
            bench: (loaded[bench] / baseline[bench] - 1.0) * 100.0
            for bench in baseline}
    out["wall_seconds"] = time.time() - t0
    save_cached(key, out)
    return out
