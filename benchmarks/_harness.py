"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure.  Experiments run at
a *reduced but shape-preserving* scale (documented per bench): background
workflows keep the paper's per-second traffic intensity but loop smaller
bags, and tenant benchmarks shrink proportionally (slowdown ratios are
scale-free).  Results are cached as JSON under ``benchmarks/results`` so
the Fig. 6 summary can aggregate Figs. 3-5 without re-simulating, and so
EXPERIMENTS.md can be regenerated from the same artifacts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import DeploymentConfig
from repro.exec import (run_scenario, slowdown_suite_spec, slowdown_sweep)
from repro.exec.scenarios import PRESET_WORKLOADS
from repro.units import MB

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Worker processes for the slowdown fan-out (the baseline and each
#: workload run are independent scenarios); serial by default so bench
#: wall times stay comparable across machines.
BENCH_JOBS = int(os.environ.get("BENCH_JOBS", "1"))

#: Tenant input scales used by the benches (slowdown ratios are
#: scale-free; smaller inputs just shorten the wall time).
HPCC_SCALE = 0.4
HIBENCH_SCALE = 0.4

#: The paper's three MemFSS workloads, reduced to steady-state loops that
#: keep the full-scale traffic *intensity* (the bags are FUSE-bandwidth
#: bound, so fewer tasks per iteration only shortens the loop period).
#: Canonical presets live in ``repro.exec.scenarios.PRESET_WORKLOADS``;
#: this name survives for the benches' imports.
WORKLOAD_FACTORIES = PRESET_WORKLOADS

_SUITE_SCALES = {"hpcc": HPCC_SCALE, "hibench-hadoop": HIBENCH_SCALE,
                 "hibench-spark": HIBENCH_SCALE}


def _cache_file(key: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / f"{key}.json"


def load_cached(key: str) -> dict | None:
    path = _cache_file(key)
    if path.exists():
        return json.loads(path.read_text())
    return None


def save_cached(key: str, data: dict) -> None:
    _cache_file(key).write_text(json.dumps(data, indent=2, sort_keys=True))


def _suite_config(alpha: float) -> DeploymentConfig:
    # 64 MB stripes halve the event rate of the background loop; the
    # interference channels integrate store *bytes*, so slowdowns are
    # insensitive to the stripe size (see bench_ablation_stripe).
    return DeploymentConfig(alpha=alpha, stripe_size=64 * MB)


def run_suite_once(suite: str, alpha: float,
                   workload: str | None,
                   warmup: float = 30.0) -> dict[str, float]:
    """Per-benchmark runtimes of *suite* under the given scavenging load.

    ``workload=None`` is the undisturbed baseline.  One scenario spec,
    executed in-process; results are deterministic for fixed parameters.
    """
    spec = slowdown_suite_spec(_suite_config(alpha), suite,
                               _SUITE_SCALES[suite], workload,
                               warmup=warmup)
    return run_scenario(spec)["runtimes_s"]


def slowdown_table(suite: str, alpha: float,
                   workloads: tuple[str, ...] = ("Montage", "BLAST", "dd"),
                   ) -> dict:
    """Slowdowns of every benchmark in *suite* under each workload.

    Returns ``{"baseline": {...}, "<workload>": {bench: pct}}``, cached.
    The baseline and per-workload runs are independent scenarios fanned
    out through :func:`repro.exec.slowdown_sweep` (``BENCH_JOBS=N`` runs
    them on N worker processes, byte-identically).
    """
    key = f"slowdown-{suite}-alpha{int(alpha * 100)}"
    cached = load_cached(key)
    if cached is not None:
        return cached
    t0 = time.time()
    sweep = slowdown_sweep(_suite_config(alpha), suite,
                           _SUITE_SCALES[suite], workloads=workloads,
                           warmup=30.0, jobs=BENCH_JOBS)
    baseline = sweep[None]
    out: dict = {"suite": suite, "alpha": alpha, "baseline": baseline,
                 "slowdowns": {}}
    for wl in workloads:
        loaded = sweep[wl]
        out["slowdowns"][wl] = {
            bench: (loaded[bench] / baseline[bench] - 1.0) * 100.0
            for bench in baseline}
    out["wall_seconds"] = time.time() - t0
    save_cached(key, out)
    return out
