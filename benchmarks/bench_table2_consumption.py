"""Table II — resource-consumption reduction (paper §IV-D).

A large Montage instance whose no-GC data footprint just fits 20 DAS-5
nodes, run (a) standalone on 20 nodes (and shown to be *unable to run* on
fewer), and (b) with MemFSS scavenging from n ∈ {4, 8, 16} own nodes plus
40 − n victims.

Scale: Montage runs at width 256 with ``parallel_task_scale = 8`` so the
total parallel compute — and hence the Table II runtime curve, which is
tail + parallel/(n × slots) — is preserved while the data volume (and the
store capacities, scaled by the same 1/8) shrinks to a tractable event
count.  Victim offers are 28 GB/8 per node: the paper does not state the
victim capacity for this experiment, and ≈ 28 GB is what makes 4 own + 36
victims hold the 1 TB footprint (documented in EXPERIMENTS.md).

Shape checks:
- the footprint fits 20 standalone nodes but not 19;
- scavenging runtimes exceed the standalone runtime by ~4-35 %;
- node-hours drop by ~17-74 %, monotonically with fewer own nodes.
"""

import pytest

from repro.core import normalized, run_scavenging, run_standalone
from repro.metrics import render_table
from repro.units import GB, MB
from repro.workflows import MONTAGE_PAPER_WIDTH, montage

from _harness import load_cached, save_cached

SCALE = 8  # width 2048 -> 256; capacities shrink by the same factor
WIDTH = MONTAGE_PAPER_WIDTH // SCALE
OWN_CAPACITY = 60 * GB / SCALE   # 64 GB node minus the OS footprint
VICTIM_MEMORY = 28 * GB / SCALE
# Fine stripes keep per-node load imbalance low enough to pack the stores
# to ~90% (the real system striped at single-digit MB for the same reason).
STRIPE = 8 * MB


def paper_montage():
    return montage(width=WIDTH, parallel_task_scale=float(SCALE))


def run_consumption():
    cached = load_cached("table2-consumption")
    if cached is not None:
        return cached
    points = []
    base = run_standalone(paper_montage(), n_nodes=20,
                          store_capacity=OWN_CAPACITY, stripe_size=STRIPE)
    points.append(base)
    too_small = run_standalone(paper_montage(), n_nodes=19,
                               store_capacity=OWN_CAPACITY,
                               stripe_size=STRIPE)
    points.append(too_small)
    for n_own in (4, 8, 16):
        points.append(run_scavenging(
            paper_montage(), n_own=n_own, n_victim=40 - n_own,
            victim_memory=VICTIM_MEMORY, own_store_capacity=OWN_CAPACITY,
            stripe_size=STRIPE))
    data = {"points": [{
        "label": p.label, "n_nodes": p.n_nodes, "fits": p.fits,
        "runtime_s": p.runtime_s, "node_hours": p.node_hours,
    } for p in points]}
    save_cached("table2-consumption", data)
    return data


# The paper's Table II, for side-by-side printing.
PAPER_ROWS = {
    "standalone-20": (4521.0, 25.11),
    "scavenging-4": (5932.0, 6.59),
    "scavenging-8": (5213.0, 11.58),
    "scavenging-16": (4711.0, 20.93),
}


def test_table2_consumption(benchmark):
    data = benchmark.pedantic(run_consumption, rounds=1, iterations=1)
    points = {p["label"]: p for p in data["points"]}

    rows = []
    for label, p in points.items():
        if not p["fits"]:
            rows.append([label, str(p["n_nodes"]), "unable to run", "-",
                         "-", "-"])
            continue
        paper = PAPER_ROWS.get(label, (None, None))
        rows.append([
            label, str(p["n_nodes"]),
            f"{p['runtime_s']:.0f} s", f"{p['node_hours']:.2f}",
            f"{paper[0]:.0f} s" if paper[0] else "-",
            f"{paper[1]:.2f}" if paper[1] else "-",
        ])
    print()
    print(render_table(
        ["run", "own nodes", "runtime", "node-hours",
         "paper runtime", "paper node-hours"], rows,
        title="Table II: Montage resource consumption (scaled 1/8 data)"))

    # 20 nodes fit, 19 do not (the paper's 'Unable to run' row).
    assert points["standalone-20"]["fits"]
    assert not points["standalone-19"]["fits"]

    base = points["standalone-20"]
    for n in (4, 8, 16):
        p = points[f"scavenging-{n}"]
        assert p["fits"]
        ratio = p["runtime_s"] / base["runtime_s"]
        # Paper: +4 % to +31 % runtime; allow up to +45 % at this scale.
        # (At reduced width the parallel stages quantize into whole task
        # waves, so the 16-own point can land a hair *under* standalone.)
        assert 0.98 <= ratio < 1.45, (n, ratio)
        savings = 1.0 - p["node_hours"] / base["node_hours"]
        assert savings > 0.10, (n, savings)
    # Fewer own nodes -> longer runtime but bigger savings (both monotone).
    r4, r8, r16 = (points[f"scavenging-{n}"]["runtime_s"] for n in (4, 8, 16))
    h4, h8, h16 = (points[f"scavenging-{n}"]["node_hours"]
                   for n in (4, 8, 16))
    assert r4 > r8 >= r16 * 0.999
    assert h4 < h8 < h16 < base["node_hours"]
    # The headline: 17-74 % node-hour reduction band.
    assert 1.0 - h4 / base["node_hours"] > 0.60
    assert 1.0 - h16 / base["node_hours"] > 0.10
