"""Fault recovery: runtime inflation under a revocation storm.

A fixed file population is written through MemFSS and read back, twice:
once undisturbed (clean baseline) and once with a seeded
:func:`~repro.faults.revocation_storm` revoking half the scavenged
victims mid-write — double the paper's §V-C "many simultaneous
revocations" floor of 25%.  The storm run is executed twice with the
same seed to assert bit-reproducibility of the injected sequence and of
every counter it produces.

Reported (and cached to ``results/fault-recovery.json``):

* clean vs. storm virtual runtime and the inflation percentage,
* MTTR — revocation to drained evacuation, via ``fault_stats``,
* data integrity (every payload must read back intact: zero losses),
* redundancy deficits after a repair-daemon sweep (must be zero).

``FAULT_SMOKE=1`` shrinks the population for the CI smoke lane; smoke
results are cached under a separate key so they never overwrite the
committed full-scale artifact.
"""

from __future__ import annotations

import os
import time

from _harness import load_cached, save_cached
from repro.core import DeploymentConfig, MemFSSDeployment
from repro.faults import FaultInjector, fault_stats, revocation_storm
from repro.fs.scavenger import RepairDaemon
from repro.metrics import fmt_pct, render_table
from repro.units import GB, MB

SMOKE = os.environ.get("FAULT_SMOKE") == "1"
KEY = "fault-recovery-smoke" if SMOKE else "fault-recovery"

SEED = 1913            # deterministic: storm picks, jitter, placement
N_VICTIM = 8
N_FILES = 6 if SMOKE else 18
FILE_SIZE = 4 * MB
STORM_FRACTION = 0.5   # 4 of 8 victims — 2x the >=25% acceptance floor


def _config() -> DeploymentConfig:
    return DeploymentConfig(n_own=2, n_victim=N_VICTIM, alpha=0.25,
                            victim_memory=2 * GB,
                            own_store_capacity=8 * GB,
                            stripe_size=1 * MB, replication=2,
                            seed=SEED, io_retries=4)


def _payload(i: int) -> bytes:
    return (b"%08d" % i) * (FILE_SIZE // 8)


def _run_once(storm_at: float | None) -> dict:
    """One full write+read workload; optionally hit by the storm."""
    fault_stats.reset()
    dep = MemFSSDeployment(_config())
    env, fs, agent = dep.env, dep.fs, dep.own[0]
    injector = None
    if storm_at is not None:
        injector = FaultInjector(
            env, revocation_storm(at=storm_at, fraction=STORM_FRACTION),
            manager=dep.manager, reservations=dep.cluster.reservations,
            rng=dep.rng)
        injector.start()
    blobs = {f"/bench/f{i}": _payload(i) for i in range(N_FILES)}

    def driver():
        t0 = env.now
        for path, blob in blobs.items():
            yield from fs.write_file(agent, path, payload=blob)
        t_write = env.now - t0
        losses = 0
        for path, blob in blobs.items():
            _n, back = yield from fs.read_file(agent, path)
            losses += back != blob
        return t_write, env.now - t0, losses

    proc = env.process(driver())
    t_write, runtime, losses = env.run(until=proc)
    env.run()  # drain in-flight evacuations

    # One repair sweep proves full redundancy is back (deficits == 0).
    daemon = RepairDaemon(env, fs, manager=dep.manager)
    sweep = env.process(daemon.sweep())
    env.run(until=sweep)

    out = {
        "write_s": t_write,
        "runtime_s": runtime,
        "data_losses": losses,
        "redundancy_deficits": daemon.deficits,
        "counters": fault_stats.snapshot(),
        "servers": sorted(fs.servers),
    }
    if injector is not None:
        out["injected"] = [[t, kind, list(names)]
                           for t, kind, names in injector.log]
        out["victims_revoked"] = sum(
            len(names) for _t, kind, names in injector.log
            if kind == "revoke_storm")
    return out


def run_fault_recovery() -> dict:
    cached = load_cached(KEY)
    if cached is not None:
        return cached
    t0 = time.time()
    clean = _run_once(None)
    # Fire the storm halfway through the (known-deterministic) write
    # phase so evacuations race both writers and readers.
    storm_at = 0.5 * clean["write_s"]
    storm = _run_once(storm_at)
    rerun = _run_once(storm_at)
    data = {
        "config": {"n_own": 2, "n_victim": N_VICTIM, "alpha": 0.25,
                   "replication": 2, "n_files": N_FILES,
                   "file_mb": FILE_SIZE / MB,
                   "storm_fraction": STORM_FRACTION,
                   "storm_at_s": storm_at, "seed": SEED, "smoke": SMOKE},
        "clean": {k: clean[k] for k in
                  ("write_s", "runtime_s", "data_losses",
                   "redundancy_deficits")},
        "storm": storm,
        "inflation_pct": (storm["runtime_s"] / clean["runtime_s"] - 1.0)
        * 100.0,
        "mttr_s": storm["counters"]["mttr_s"],
        "reproducible": storm == rerun,
        "wall_seconds": time.time() - t0,
    }
    save_cached(KEY, data)
    return data


def test_fault_recovery(benchmark):
    data = benchmark.pedantic(run_fault_recovery, rounds=1, iterations=1)
    clean, storm = data["clean"], data["storm"]
    print()
    print(render_table(
        ["run", "runtime (s)", "losses", "deficits", "revoked"],
        [["clean", f"{clean['runtime_s']:.3f}", clean["data_losses"],
          clean["redundancy_deficits"], 0],
         ["storm", f"{storm['runtime_s']:.3f}", storm["data_losses"],
          storm["redundancy_deficits"], storm["victims_revoked"]]],
        title="Fault recovery under a revocation storm "
              f"(inflation {fmt_pct(data['inflation_pct'])}, "
              f"MTTR {data['mttr_s']:.3f}s)"))
    counters = {k: v for k, v in storm["counters"].items() if v}
    print(render_table(["counter", "value"], sorted(counters.items()),
                       title="storm-run fault counters"))

    # Zero data loss and full redundancy, in both runs.
    assert clean["data_losses"] == 0 and storm["data_losses"] == 0
    assert clean["redundancy_deficits"] == 0
    assert storm["redundancy_deficits"] == 0
    # The storm really revoked >= 25% of the victims, mid-workload.
    assert storm["victims_revoked"] >= 0.25 * data["config"]["n_victim"]
    assert 0.0 < data["config"]["storm_at_s"] < storm["write_s"] * 2
    # Recovery work happened, showed up in the counters, and cost time.
    assert storm["counters"]["revocations"] == storm["victims_revoked"]
    assert storm["counters"]["evacuations"] == storm["victims_revoked"]
    assert storm["counters"]["recoveries"] >= storm["victims_revoked"]
    assert storm["counters"]["open_faults"] == 0
    assert data["mttr_s"] > 0.0
    assert data["inflation_pct"] > 0.0
    # Same seed, same storm: the whole run is bit-reproducible.
    assert data["reproducible"] is True
