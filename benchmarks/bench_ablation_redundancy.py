"""Ablation — fault-tolerance redundancy (paper §III-E).

The paper's replication piggybacks on HRW's runner-up nodes; it also
argues full in-memory replication "could be a prohibitive strategy" and
points at erasure coding.  Quantify the trade: storage footprint, write
runtime, and loss tolerance for r ∈ {1, 2} replication vs. a (4, 1) XOR
parity code.
"""

import pytest

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.fs import PlacementMap, storage_overhead, stripe_key
from repro.metrics import render_table
from repro.units import MB
from repro.workflows import dd_bag

from _harness import load_cached, save_cached

VARIANTS = (
    ("r=1", dict(replication=1)),
    ("r=2", dict(replication=2)),
    ("erasure 4+1", dict(erasure=(4, 1))),
)


def run_variants():
    cached = load_cached("ablation-redundancy")
    if cached is not None:
        return cached
    rows = []
    for label, kw in VARIANTS:
        cfg = DeploymentConfig(alpha=0.25, stripe_size=16 * MB, **kw)
        dep = MemFSSDeployment(cfg)
        payload_bytes = 96 * 64 * MB
        result = dep.engine.execute(
            dd_bag(n_tasks=96, file_size=64 * MB))
        stored = dep.fs.used_bytes()
        rows.append({
            "variant": label,
            "runtime_s": result.makespan,
            "stored_over_payload": stored / payload_bytes,
        })
    data = {"rows": rows}
    save_cached("ablation-redundancy", data)
    return data


def test_ablation_redundancy_cost(benchmark):
    data = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = {r["variant"]: r for r in data["rows"]}
    print()
    print(render_table(
        ["variant", "write runtime", "stored bytes / payload"],
        [[v, f"{r['runtime_s']:.2f} s", f"{r['stored_over_payload']:.2f}x"]
         for v, r in rows.items()],
        title="Redundancy ablation (96 x 64 MB writes)"))

    # Replication doubles the footprint; the (4,1) code costs ~25 %.
    assert rows["r=1"]["stored_over_payload"] == pytest.approx(1.0, rel=0.02)
    assert rows["r=2"]["stored_over_payload"] == pytest.approx(2.0, rel=0.02)
    assert rows["erasure 4+1"]["stored_over_payload"] == pytest.approx(
        1.0 + storage_overhead(4, 1), rel=0.05)
    # Writes get slower with redundancy, and erasure is cheaper than r=2.
    assert rows["r=2"]["runtime_s"] > rows["r=1"]["runtime_s"]
    assert rows["erasure 4+1"]["runtime_s"] < rows["r=2"]["runtime_s"]


def test_ablation_redundancy_loss_tolerance(benchmark):
    """Both r=2 and 4+1 erasure survive a single stripe-holder loss."""
    def run():
        out = {}
        for label, kw in (("r=2", dict(replication=2)),
                          ("erasure 4+1", dict(erasure=(4, 1)))):
            cfg = DeploymentConfig(n_own=2, n_victim=4, alpha=0.5,
                                   victim_memory=2 * 1024 * MB,
                                   own_store_capacity=8 * 1024 * MB,
                                   stripe_size=4 * MB, **kw)
            dep = MemFSSDeployment(cfg)
            env, fs = dep.env, dep.fs

            def flow():
                yield from fs.write_file(dep.own[0], "/f",
                                         nbytes=32 * MB)
                meta = yield from fs.stat(dep.own[0], "/f")
                policy = PlacementMap.from_meta(meta)
                key = stripe_key(meta.inode, 0)
                fs.servers[policy.place(key)].kv.delete(key)
                size, _ = yield from fs.read_file(dep.own[0], "/f")
                return size

            proc = env.process(flow())
            out[label] = env.run(until=proc)
        return out

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sizes["r=2"] == 32 * MB
    assert sizes["erasure 4+1"] == 32 * MB
