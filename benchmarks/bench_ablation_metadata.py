"""Ablation — metadata placement (paper §III-D).

MemFSS keeps metadata on *own* nodes only, because "we believe the own
nodes less likely to fail or run out of memory since we control all
applications running on them".  Quantify that: spread metadata across all
nodes instead, evict one victim, and count the files whose metadata — and
therefore the files themselves — become unreachable.  With own-only
placement, eviction migrates the stripes and loses nothing.
"""

import pytest

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.fs import FileNotFound
from repro.hashing import ModuloPlacer
from repro.metrics import render_table
from repro.units import GB, MB


def run_variant(spread_metadata: bool) -> dict:
    cfg = DeploymentConfig(n_own=2, n_victim=6, alpha=0.25,
                           victim_memory=4 * GB,
                           own_store_capacity=16 * GB,
                           stripe_size=8 * MB)
    dep = MemFSSDeployment(cfg)
    env, fs = dep.env, dep.fs
    if spread_metadata:
        fs.meta_placer = ModuloPlacer(
            [n.name for n in dep.own + dep.victims])

    n_files = 48

    def write_all():
        for i in range(n_files):
            yield from fs.write_file(dep.own[0], f"/d{i}", nbytes=16 * MB)

    proc = env.process(write_all())
    env.run(until=proc)

    # Evict one victim through its lease; the watcher evacuates stripes.
    victim = dep.victims[0]
    dep.cluster.reservations.revoke_leases(victim, cause="pressure")
    env.run()

    def count_readable():
        ok = 0
        for i in range(n_files):
            try:
                yield from fs.read_file(dep.own[0], f"/d{i}")
                ok += 1
            except FileNotFound:
                continue
        return ok

    proc = env.process(count_readable())
    readable = env.run(until=proc)
    return {"n_files": n_files, "readable": readable,
            "evictions": dep.manager.evictions}


def test_ablation_metadata_placement(benchmark):
    def run_both():
        return {"own-only": run_variant(False),
                "spread": run_variant(True)}

    res = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[k, str(v["n_files"]), str(v["readable"]),
             str(v["n_files"] - v["readable"])]
            for k, v in res.items()]
    print()
    print(render_table(["metadata placement", "files", "readable after "
                        "eviction", "lost"], rows,
                       title="Metadata-placement ablation"))

    # Own-only metadata: eviction loses nothing (stripes are migrated).
    assert res["own-only"]["readable"] == res["own-only"]["n_files"]
    # Metadata spread onto victims: a victim eviction loses the files
    # whose metadata lived there (~1/8 of them here).
    assert res["spread"]["readable"] < res["spread"]["n_files"]
