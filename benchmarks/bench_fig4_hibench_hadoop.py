"""Fig. 4 — HiBench-on-Hadoop slowdown under scavenging (paper §IV-C).

Victims run the six representative HiBench benchmarks on the Hadoop model
while the own nodes loop Montage, BLAST, or dd, at α = 25 % (Fig. 4a) and
α = 50 % (Fig. 4b).

Shape checks (paper §IV-C):
- most benchmarks slow down by less than 10 %;
- TeraSort is the worst case at α = 25 % (large memory + shuffle traffic),
  clearly worse under dd than under Montage, and milder at α = 50 %;
- DFSIO-read exceeds 10 % (page-cache displacement);
- α = 50 % is generally milder than α = 25 %.
"""

import pytest

from repro.metrics import render_table

from _harness import slowdown_table

WORKLOADS = ("Montage", "BLAST", "dd")


@pytest.mark.parametrize("alpha", [0.25, 0.50], ids=["fig4a", "fig4b"])
def test_fig4_hibench_hadoop_slowdown(benchmark, alpha):
    data = benchmark.pedantic(slowdown_table, args=("hibench-hadoop", alpha),
                              rounds=1, iterations=1)
    benches = list(data["baseline"])
    rows = [[b] + [f"{data['slowdowns'][wl][b]:6.2f}%" for wl in WORKLOADS]
            for b in benches]
    print()
    print(render_table(
        ["HiBench (Hadoop)", *WORKLOADS], rows,
        title=f"Fig. 4 ({'a' if alpha == 0.25 else 'b'}): HiBench Hadoop "
              f"slowdown, alpha = {alpha * 100:.0f}%"))

    slow = data["slowdowns"]
    flat = [slow[wl][b] for wl in WORKLOADS for b in benches]
    # Bounded: the paper's worst single number is TeraSort/dd at 26 %.
    assert max(flat) < 30.0
    # Around half the entries stay below 10 % (the DFSIO pair exceeds it
    # under *every* workload here: its slowdown is carried by the resident
    # set's page-cache displacement, a capacity effect).
    below10 = sum(1 for v in flat if v < 10.0)
    assert below10 >= 0.40 * len(flat)
    # TeraSort: the shuffle/memory-heavy outlier, worst under dd.
    assert slow["dd"]["TeraSort"] > slow["Montage"]["TeraSort"]
    if alpha == 0.25:
        assert slow["dd"]["TeraSort"] > 10.0
        # DFSIO-read: page-cache competition pushes it past 10 %.
        assert slow["dd"]["DFSIO-read"] > 8.0


def test_fig4_teraSort_milder_at_50(benchmark):
    """Paper: TeraSort drops from 26 %/16 % (dd/BLAST) at α = 25 % to
    15 %/8 % at α = 50 % — less victim traffic, less interference."""
    def both():
        return (slowdown_table("hibench-hadoop", 0.25),
                slowdown_table("hibench-hadoop", 0.50))

    a25, a50 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert a50["slowdowns"]["dd"]["TeraSort"] < \
        a25["slowdowns"]["dd"]["TeraSort"]
