"""Ablation — the hashing design space (paper §III-B, §V-C).

Compares the two-layer weighted HRW scheme MemFSS uses against the
alternatives the paper discusses:

- a consistent-hashing ring with weighted virtual nodes (the MemFS
  lineage and the §V-C comparison): needs many vnodes per node to
  approximate a target split, i.e. many Redis processes in practice;
- flat (single-layer) HRW over all nodes: uniform, cannot express the
  own/victim split at all.

Measured: (a) achieved own-class data fraction, (b) load balance within
the victim class (coefficient of variation), (c) minimal disruption when
one victim leaves, (d) placement decision throughput (this part uses
pytest-benchmark timing for real).
"""

import statistics

import numpy as np
import pytest

from repro.fs import ClassSpec, PlacementMap
from repro.hashing import (ConsistentHashRing, HrwHasher, own_victim_weights,
                           stable_digest)
from repro.metrics import render_table

OWN = [f"own{i}" for i in range(8)]
VICTIMS = [f"vic{i}" for i in range(32)]
KEYS = [("stripe", i, j) for i in range(2000) for j in range(4)]
ALPHA = 0.25


def build_two_layer():
    w = own_victim_weights(ALPHA)
    return PlacementMap({
        "own": ClassSpec(w["own"], tuple(OWN)),
        "victim": ClassSpec(w["victim"], tuple(VICTIMS)),
    })


def build_ring():
    weights = {n: 1.0 for n in VICTIMS}
    # Own nodes must jointly take ALPHA of the data: with 8 own vs 32
    # victim nodes, each own node weighs (ALPHA/8)/((1-ALPHA)/32) = 4/3.
    own_w = (ALPHA / len(OWN)) / ((1 - ALPHA) / len(VICTIMS))
    weights.update({n: own_w for n in OWN})
    return ConsistentHashRing(OWN + VICTIMS, vnodes=96, weights=weights)


def placement_stats(place):
    counts = {}
    for k in KEYS:
        counts[place(k)] = counts.get(place(k), 0) + 1
    own_frac = sum(counts.get(n, 0) for n in OWN) / len(KEYS)
    vic_loads = [counts.get(n, 0) for n in VICTIMS]
    cv = statistics.pstdev(vic_loads) / statistics.mean(vic_loads) \
        if statistics.mean(vic_loads) else float("inf")
    return own_frac, cv


def disruption(place_before, place_after, removed):
    moved = sum(1 for k in KEYS if place_before(k) != place_after(k))
    held = sum(1 for k in KEYS if place_before(k) == removed)
    return moved, held


def test_ablation_hashing_balance_and_disruption(benchmark):
    two = build_two_layer()
    ring = build_ring()
    flat = HrwHasher(OWN + VICTIMS)

    results = {}
    results["two-layer HRW"] = placement_stats(two.place)
    results["weighted ring"] = placement_stats(ring.place)
    results["flat HRW"] = placement_stats(flat.place)

    # Disruption: remove one victim node.
    removed = VICTIMS[0]
    two_after = two.without_node(removed)
    moved_two, held_two = disruption(two.place, two_after.place, removed)
    ring_after = build_ring()
    ring_after.remove_node(removed)
    moved_ring, held_ring = disruption(ring.place, ring_after.place, removed)

    # Decision throughput (placements/s) for the paper's scheme.
    digests = np.array([stable_digest(k) for k in KEYS], dtype=np.uint64)

    def place_all():
        return two.place(KEYS[0])

    benchmark(place_all)

    rows = [[name, f"{frac * 100:.1f}%", f"{cv:.3f}"]
            for name, (frac, cv) in results.items()]
    print()
    print(render_table(["scheme", "own-class share (target 25%)",
                        "victim balance CV"], rows,
                       title="Hashing ablation: balance"))
    print(f"disruption on 1 victim removal: two-layer moved {moved_two} "
          f"(held {held_two}); ring moved {moved_ring} (held {held_ring}); "
          f"keys total {len(KEYS)}")

    # Two-layer HRW hits the target split; flat HRW cannot.
    assert results["two-layer HRW"][0] == pytest.approx(ALPHA, abs=0.03)
    assert results["flat HRW"][0] == pytest.approx(8 / 40, abs=0.03)
    # Balanced within the class.
    assert results["two-layer HRW"][1] < 0.25
    # Minimal disruption: only keys held by the removed node move.
    assert moved_two == held_two
    # The ring, with finite vnodes, is no better (and needs the vnodes).
    assert moved_ring >= held_ring


def test_ablation_hashing_throughput_batch(benchmark):
    """Vectorized placement: the O(n)-per-key HRW decision at bulk rate."""
    two = build_two_layer()
    digests = np.array([stable_digest(k) for k in KEYS], dtype=np.uint64)
    layer1 = two._layer1

    result = benchmark(lambda: layer1.choose_batch(digests))
    assert len(result) == len(KEYS)
