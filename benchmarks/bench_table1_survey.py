"""Table I — cluster resource-utilization survey (paper §II-B).

Prints the survey rows verbatim and cross-checks them against a simulated
representative tenant cluster: 8 nodes running the HiBench Hadoop mix,
measured with the same utilization probes the rest of the reproduction
uses.  The simulated cluster must land inside the surveyed envelope
(CPU well below saturation, memory ≤ ~50 %, network far below line rate)
— the under-utilization MemFSS scavenges.
"""

import pytest

from repro.cluster import build_das5
from repro.data import TABLE_I
from repro.metrics import class_utilization, render_table
from repro.tenants import InterferenceProbe, hibench_hadoop, run_tenant


def simulate_representative_cluster() -> dict[str, float]:
    """Run a Hadoop-style mix on 8 nodes; return mean utilizations."""
    cluster = build_das5(n_nodes=8)
    env = cluster.env
    nodes = list(cluster.nodes)
    probe = InterferenceProbe()
    mem_samples = []
    done = []

    def sampler():
        # 5 s memory sampling while the jobs run (allocations are
        # released at job exit, so end-of-run values show only the OS).
        while not done:
            mem_samples.append(sum(n.memory_utilization for n in nodes)
                               / len(nodes))
            yield env.timeout(5.0)

    def driver():
        for bench in ("KMeans", "PageRank", "WordCount", "TeraSort"):
            wl = hibench_hadoop(bench, n_nodes=len(nodes))
            yield from run_tenant(env, wl, nodes, cluster.fabric, probe)
        done.append(True)

    env.process(sampler())
    proc = env.process(driver())
    env.run(until=proc)
    util = class_utilization(nodes, cluster.fabric.net, env.now)
    memory = (sum(mem_samples) / len(mem_samples)) if mem_samples \
        else util.memory
    return {"cpu": util.cpu, "memory": memory, "network": util.network,
            "duration": env.now}


def test_table1_survey(benchmark):
    sim = benchmark.pedantic(simulate_representative_cluster,
                             rounds=1, iterations=1)

    rows = []
    for rec in TABLE_I:
        def fmt(bounds):
            lo, hi = bounds
            if lo is None and hi is None:
                return "N/A"
            return f"<= {hi * 100:.0f}%" if (lo in (0.0, None)) \
                else f"{lo * 100:.0f}-{hi * 100:.0f}%"
        rows.append([rec.study, fmt(rec.cpu), fmt(rec.memory),
                     fmt(rec.network)])
    rows.append(["(simulated Hadoop mix)", f"{sim['cpu'] * 100:.0f}%",
                 f"{sim['memory'] * 100:.0f}%",
                 f"{sim['network'] * 100:.1f}%"])
    print()
    print(render_table(
        ["Study", "CPU", "Memory", "Network"], rows,
        title="Table I: CPU, memory and network utilization surveys"))

    # The motivating claim: memory and network are heavily under-used
    # even while the CPUs are busy.
    assert sim["cpu"] < 0.9
    assert sim["memory"] <= 0.55, "memory should be <= ~50% (Table I)"
    assert sim["network"] < 0.20, "network far below line rate (Table I)"
