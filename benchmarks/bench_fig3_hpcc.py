"""Fig. 3 — HPCC slowdown under memory scavenging (paper §IV-C).

Victims run the eight HPCC categories while the own nodes loop Montage,
BLAST, or the dd bag on MemFSS, at α = 25 % (Fig. 3a) and α = 50 %
(Fig. 3b).  HPCC inputs are halved (ratios are scale-free); the background
workloads keep full traffic intensity.

Shape checks (paper §IV-C):
- most categories slow down by less than 10 %;
- STREAM and latency are the sensitive ones (≈ 11-13 % worst case);
- BLAST (many short requests) hurts the latency benchmark more than dd;
- the 50 % case is generally milder than the 25 % case.
"""

import pytest

from repro.metrics import render_table

from _harness import slowdown_table

WORKLOADS = ("Montage", "BLAST", "dd")


@pytest.mark.parametrize("alpha", [0.25, 0.50], ids=["fig3a", "fig3b"])
def test_fig3_hpcc_slowdown(benchmark, alpha):
    data = benchmark.pedantic(slowdown_table, args=("hpcc", alpha),
                              rounds=1, iterations=1)
    benches = list(data["baseline"])
    rows = [[b] + [f"{data['slowdowns'][wl][b]:6.2f}%" for wl in WORKLOADS]
            for b in benches]
    print()
    print(render_table(
        ["HPCC benchmark", *WORKLOADS], rows,
        title=f"Fig. 3 ({'a' if alpha == 0.25 else 'b'}): HPCC slowdown, "
              f"alpha = {alpha * 100:.0f}% data on own nodes"))

    slow = data["slowdowns"]
    flat = [slow[wl][b] for wl in WORKLOADS for b in benches]
    # Bounded overall: nothing beyond ~18 % even at reduced alpha (the
    # memory-bound kernels — STREAM, PTRANS, RandomAccess — cluster at
    # the top under dd).
    assert max(flat) < 18.0
    # Most entries below 10 % (paper: "most ... less than 10%").
    below10 = sum(1 for v in flat if v < 10.0)
    assert below10 >= 0.7 * len(flat)
    # Compute-bound categories barely notice the scavenger.
    for wl in WORKLOADS:
        assert slow[wl]["DGEMM"] < 5.0
        assert slow[wl]["HPL"] < 6.0
    # Montage (long low-I/O tail) stays far below dd; at α = 25 % it is
    # the smallest outright (at 50 % it and BLAST both flatten to ~2 %).
    avgs = {wl: sum(slow[wl][b] for b in benches) / len(benches)
            for wl in WORKLOADS}
    assert avgs["Montage"] < avgs["dd"]
    if alpha == 0.25:
        assert avgs["Montage"] == min(avgs.values())
        # BLAST's many short requests hurt the latency benchmark more
        # than dd's large sequential requests (paper's §IV-C explanation;
        # at α = 50 % both shrink under 6 % and the gap closes).
        assert slow["BLAST"]["latency"] > slow["dd"]["latency"]
        # The sensitive categories: STREAM under dd, latency under BLAST.
        assert slow["dd"]["STREAM"] > 8.0
        assert slow["BLAST"]["latency"] > 8.0
