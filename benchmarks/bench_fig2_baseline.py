"""Fig. 2 — scavenging overhead baseline (paper §IV-B).

8 own + 32 victim nodes; a bag of dd tasks × 128 MB; α ∈ {0, 25, 50, 75,
100} % of the data on own nodes.  Reduced scale: 256 tasks per bag (the
bag is FUSE-bandwidth-bound, so per-node load rates — the quantities
Figs. 2a-2e plot — are identical to the 2048-task original; only the run
is shorter).

Shape checks (paper §IV-B):
- victim CPU load never above 5 %;
- victim NIC ingest never above ~500 MB/s (16 % of the 3 GB/s IPoIB rate);
- both fall as α rises (Figs. 2a-2e);
- runtime: α = 100 % is the slowest case, α = 25 % among the fastest
  (Fig. 2f's load-balance argument).
"""

import pytest

from repro.core import FIG2_ALPHAS, baseline_sweep
from repro.metrics import render_table
from repro.units import GB, MB

from _harness import load_cached, save_cached

N_TASKS = 256
FILE_SIZE = 128 * MB


def run_sweep():
    cached = load_cached("fig2-baseline")
    if cached is not None:
        return cached
    metrics = baseline_sweep(n_tasks=N_TASKS, file_size=FILE_SIZE)
    data = {
        "alphas": list(FIG2_ALPHAS),
        "rows": [{
            "alpha": m.alpha,
            "runtime_s": m.runtime_s,
            "own_cpu": m.own_cpu,
            "own_tx": m.own_tx,
            "own_rx": m.own_rx,
            "victim_cpu": m.victim_cpu,
            "victim_rx": m.victim_rx,
            "victim_rx_bytes_s": m.victim_rx_bytes_s,
        } for m in metrics],
    }
    save_cached("fig2-baseline", data)
    return data


def test_fig2_baseline(benchmark):
    data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = data["rows"]

    table = []
    for r in rows:
        ipoib_pct = r["victim_rx_bytes_s"] / (3 * GB) * 100
        table.append([
            f"{r['alpha'] * 100:.0f}%",
            f"{r['runtime_s']:.2f}",
            f"{r['own_cpu'] * 100:.1f}%",
            f"{r['own_tx'] * 100:.1f}%",
            f"{r['victim_cpu'] * 100:.2f}%",
            f"{r['victim_rx_bytes_s'] / MB:.0f} MB/s",
            f"{ipoib_pct:.1f}%",
        ])
    print()
    print(render_table(
        ["alpha (own)", "runtime", "own CPU", "own tx", "victim CPU",
         "victim ingest", "% of IPoIB"],
        table, title="Fig. 2: dd-bag baseline, 8 own + 32 victim nodes"))

    by_alpha = {r["alpha"]: r for r in rows}
    # Victim CPU bound (paper: never above 5 %).
    for r in rows:
        assert r["victim_cpu"] < 0.05, f"victim CPU too high at {r['alpha']}"
    # Victim NIC ingest bound (paper: < 500 MB/s = 16 % of IPoIB).
    for r in rows:
        assert r["victim_rx_bytes_s"] < 560 * MB
    # Monotone: more data on own nodes -> less victim load (Figs. 2a-2e).
    loads = [by_alpha[a]["victim_rx_bytes_s"] for a in data["alphas"]]
    assert all(a >= b - 1e-6 for a, b in zip(loads, loads[1:]))
    assert by_alpha[1.0]["victim_rx_bytes_s"] == pytest.approx(0.0)
    # Fig. 2f: 100 % (receiver-bound own class) is the slowest scenario;
    # 25 % is within a whisker of the fastest.
    runtimes = {a: by_alpha[a]["runtime_s"] for a in data["alphas"]}
    assert runtimes[1.0] == max(runtimes.values())
    assert runtimes[0.25] <= min(runtimes.values()) * 1.05
