"""Tracked sweep-executor bench: serial vs. parallel vs. warm-cache Fig. 2.

Times the five-α Fig. 2 sweep three ways in one run:

* **serial** — the pre-PR behaviour (one process, spec order), with a
  fresh content-addressed cache attached so the run doubles as the
  cache's cold fill,
* **process** — the same specs fanned out over ``-j 4`` spawn workers
  (``-j 2`` under ``SWEEP_SMOKE=1``), no cache, and
* **warm** — the sweep again against the now-filled cache: every
  scenario must be answered from disk (zero simulations).

The three result sets must be byte-identical (canonical JSON).  The
parallel speedup is recorded always and *asserted* (≥ 2.5×) only on full
runs with ≥ 4 usable cores — on fewer cores the fan-out physically
cannot beat 2.5× and the number is reported for the record instead.  The
warm-cache speedup is asserted everywhere: answering from the cache must
beat re-simulating by ≥ 2.5× at any scale.

Results land in ``results/sweep-parallel.json`` (or ``-smoke``) and, for
full runs, ``BENCH_sweep.json`` at the repo root — the sweep-executor
trajectory later PRs regress against.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from _harness import load_cached, save_cached
from repro.exec import ResultCache, SweepRunner, exec_stats, fig2_sweep_specs
from repro.metrics import render_table
from repro.units import MB

SMOKE = os.environ.get("SWEEP_SMOKE") == "1"
KEY = "sweep-parallel-smoke" if SMOKE else "sweep-parallel"
ROOT = Path(__file__).resolve().parent.parent

# Full scale is the paper's own Fig. 2 sweep (2048 dd tasks of 128 MB;
# larger bags stop fitting the α = 0 victim capacity).
N_TASKS = 24 if SMOKE else 2048
FILE_SIZE = 16 * MB if SMOKE else 128 * MB
JOBS = 2 if SMOKE else 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _canon(results) -> str:
    return json.dumps([r.payload for r in results], sort_keys=True)


def run_sweep_bench() -> dict:
    cached = load_cached(KEY)
    if cached is not None:
        _publish(cached)
        return cached
    specs = fig2_sweep_specs(n_tasks=N_TASKS, file_size=FILE_SIZE)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-cache-") as tmp:
        cache = ResultCache(root=tmp)

        exec_stats.reset()
        t0 = time.perf_counter()
        serial = SweepRunner("serial", cache=cache).run(specs)
        serial_s = time.perf_counter() - t0
        cold_counters = exec_stats.snapshot()

        exec_stats.reset()
        t0 = time.perf_counter()
        parallel = SweepRunner("process", jobs=JOBS).run(specs)
        parallel_s = time.perf_counter() - t0

        exec_stats.reset()
        t0 = time.perf_counter()
        warm = SweepRunner("serial", cache=cache).run(specs)
        warm_s = time.perf_counter() - t0
        warm_counters = exec_stats.snapshot()

    data = {
        "smoke": SMOKE,
        "params": {"n_tasks": N_TASKS, "file_mb": FILE_SIZE / MB,
                   "jobs": JOBS, "n_scenarios": len(specs)},
        "cpus": _usable_cpus(),
        "wall_s": {"serial": serial_s, "process": parallel_s,
                   "warm_cache": warm_s},
        "parallel_speedup": serial_s / parallel_s,
        "warm_cache_speedup": serial_s / warm_s,
        "byte_identical": (_canon(serial) == _canon(parallel)
                           == _canon(warm)),
        "cold_counters": cold_counters,
        "warm_counters": warm_counters,
        "runtimes_s": {f"alpha{int(r.payload['alpha'] * 100)}":
                       r.payload["runtime_s"] for r in serial},
    }
    save_cached(KEY, data)
    _publish(data)
    return data


def _publish(data: dict) -> None:
    # The repo-root trajectory file always mirrors the *full* run; the
    # smoke lane only writes its own results/sweep-parallel-smoke.json.
    if not data["smoke"]:
        (ROOT / "BENCH_sweep.json").write_text(
            json.dumps(data, indent=2, sort_keys=True))


def test_sweep_parallel(benchmark):
    data = benchmark.pedantic(run_sweep_bench, rounds=1, iterations=1)
    walls = data["wall_s"]
    print()
    print(render_table(
        ["mode", "wall (s)", "speedup"],
        [["serial", f"{walls['serial']:.2f}", "1.00x"],
         [f"process -j {data['params']['jobs']}",
          f"{walls['process']:.2f}", f"{data['parallel_speedup']:.2f}x"],
         ["warm cache", f"{walls['warm_cache']:.3f}",
          f"{data['warm_cache_speedup']:.1f}x"]],
        title=f"Fig. 2 sweep executor ({'smoke' if data['smoke'] else 'full'}"
              f" scale, {data['cpus']} cpus)"))

    # The determinism contract, end to end: serial == process == cached.
    assert data["byte_identical"]

    # A warm re-run answers every scenario from the cache and simulates
    # nothing.
    n = data["params"]["n_scenarios"]
    assert data["warm_counters"]["cache_hits"] == n
    assert data["warm_counters"]["scenarios_run"] == 0
    assert data["cold_counters"]["cache_stores"] == n
    assert data["warm_cache_speedup"] >= 2.5

    # The fan-out target needs cores to stand on; on starved runners the
    # number is recorded (above) but cannot be a gate.
    if not data["smoke"] and data["cpus"] >= 4:
        assert data["parallel_speedup"] >= 2.5
