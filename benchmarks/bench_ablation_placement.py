"""Ablation — placement-resolution throughput (batch planner vs. scalar).

The write/read/unlink data paths used to resolve every stripe with a
scalar two-layer HRW call: one FNV digest plus a Python loop over classes
and nodes per stripe.  The batch-first :class:`repro.fs.StripePlan`
resolves all stripes of a file in one vectorized pass, and interned
policies memoize whole plans across calls.  This bench measures
stripes-resolved/second at the Fig. 2 scale (a 2048-stripe file — the dd
bag's 2048 × 128 MB corpus resolved per file) for:

- ``scalar``      — the per-stripe loop (``policy.ranked(key, k=1)``),
- ``plan_cold``   — a fresh vectorized plan with digests computed per key
                    in Python (worst case: arbitrary keys, no digest array),
- ``plan``        — the ``plan_file`` miss path the write path actually
                    takes: a fresh plan over the memoized stripe-digest
                    array,
- ``plan_cached`` — a ``plan_file`` cache hit (the steady-state read path).

The committed ``results/ablation-placement.json`` records the speedups;
the acceptance bar is plan ≥ 10× scalar.  Placement *outcomes* are
asserted identical, so the speed is free: same seeds → same placements →
bit-identical figure outputs.
"""

import time

import numpy as np

from repro.fs import ClassSpec, PlacementMap, stripe_digest_array
from repro.fs.placement import clear_placement_caches
from repro.fs.striping import stripe_key
from repro.hashing import own_victim_weights
from repro.metrics import render_table

from _harness import load_cached, save_cached

N_STRIPES = 2048        # the Fig. 2 dd-bag size
INODE = 1
ALPHA = 0.25
OWN = tuple(f"own{i}" for i in range(8))
VICTIMS = tuple(f"vic{i}" for i in range(32))


def build_policy() -> PlacementMap:
    w = own_victim_weights(ALPHA)
    return PlacementMap({
        "own": ClassSpec(w["own"], OWN),
        "victim": ClassSpec(w["victim"], VICTIMS),
    })


def _best_of(fn, reps: int = 5) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_measurement() -> dict:
    cached = load_cached("ablation-placement")
    if cached is not None:
        return cached
    clear_placement_caches()
    policy = build_policy()
    keys = [stripe_key(INODE, i) for i in range(N_STRIPES)]

    def scalar():
        return [policy.ranked(key, k=1)[0] for key in keys]

    def plan_cold():
        return list(policy.plan(keys).primaries)

    digests = np.asarray(stripe_digest_array(INODE, N_STRIPES))

    def plan_fresh():
        return list(policy.plan(keys, digests).primaries)

    warm = policy.plan_file(INODE, N_STRIPES)

    def plan_cached():
        return list(policy.plan_file(INODE, N_STRIPES).primaries)

    timings = {}
    results = {}
    for name, fn in (("scalar", scalar), ("plan_cold", plan_cold),
                     ("plan", plan_fresh),
                     ("plan_cached", plan_cached)):
        seconds, out = _best_of(fn)
        timings[name] = seconds
        results[name] = out
    # Placement equivalence is part of the measurement contract.
    assert all(results[n] == results["scalar"] for n in results), \
        "batch planner disagrees with scalar placement"
    assert list(warm.primaries) == results["scalar"]

    data = {
        "n_stripes": N_STRIPES,
        "alpha": ALPHA,
        "nodes": {"own": len(OWN), "victim": len(VICTIMS)},
        "seconds": timings,
        "stripes_per_second": {n: N_STRIPES / s
                               for n, s in timings.items()},
        "speedup_vs_scalar": {n: timings["scalar"] / s
                              for n, s in timings.items()},
    }
    save_cached("ablation-placement", data)
    return data


def test_ablation_placement_throughput():
    data = run_measurement()
    rows = [[name, f"{data['seconds'][name] * 1e3:.2f} ms",
             f"{data['stripes_per_second'][name]:,.0f}",
             f"{data['speedup_vs_scalar'][name]:.1f}x"]
            for name in data["seconds"]]
    print()
    print(render_table(
        ["path", "2048-stripe resolve", "stripes/s", "vs scalar"], rows,
        title="Placement ablation: batch planner vs scalar loop"))
    # The acceptance bar: the planner path a write takes (plan_file miss)
    # resolves a 2048-stripe file >= 10x faster than the seed scalar loop.
    assert data["speedup_vs_scalar"]["plan"] >= 10.0
    assert data["speedup_vs_scalar"]["plan_cold"] >= 3.0
    assert data["speedup_vs_scalar"]["plan_cached"] >= \
        data["speedup_vs_scalar"]["plan"]


def test_ablation_placement_outcomes_identical():
    """Fresh (non-cached) check that batch == scalar at bench scale."""
    policy = build_policy()
    keys = [stripe_key(7, i) for i in range(N_STRIPES)]
    plan = policy.plan(keys)
    scalar = [policy.place(k) for k in keys]
    assert list(plan.primaries) == scalar
