"""Fig. 6 — average slowdown per suite and α (paper §IV-C).

Aggregates Figs. 3-5 (reusing their cached results when present):

- HPCC and HiBench Hadoop: averages below 10 % at both α = 25 % and 50 %;
- HiBench Spark (α = 50 %): the outlier, ≈ 18 % in the paper.
"""

import pytest

from repro.metrics import render_table

from _harness import slowdown_table

WORKLOADS = ("Montage", "BLAST", "dd")
CASES = [
    ("hpcc", 0.25, "HPCC 25%"),
    ("hpcc", 0.50, "HPCC 50%"),
    ("hibench-hadoop", 0.25, "Hadoop 25%"),
    ("hibench-hadoop", 0.50, "Hadoop 50%"),
    ("hibench-spark", 0.50, "Spark 50%"),
]


def collect_averages():
    out = {}
    for suite, alpha, label in CASES:
        data = slowdown_table(suite, alpha)
        benches = list(data["baseline"])
        per_wl = {wl: sum(data["slowdowns"][wl][b] for b in benches)
                  / len(benches) for wl in WORKLOADS}
        per_wl["all"] = sum(per_wl[wl] for wl in WORKLOADS) / len(WORKLOADS)
        out[label] = per_wl
    return out


def test_fig6_average_slowdown(benchmark):
    avgs = benchmark.pedantic(collect_averages, rounds=1, iterations=1)
    rows = [[label] + [f"{avgs[label][wl]:6.2f}%"
                       for wl in (*WORKLOADS, "all")]
            for _s, _a, label in CASES]
    print()
    print(render_table(["suite / alpha", *WORKLOADS, "average"], rows,
                       title="Fig. 6: average slowdown by suite"))

    # HPCC and Hadoop averages below 10 % at both alphas.
    for label in ("HPCC 25%", "HPCC 50%", "Hadoop 25%", "Hadoop 50%"):
        assert avgs[label]["all"] < 10.0, label
    # Spark is the outlier: clearly above the others, bounded below ~25 %.
    spark = avgs["Spark 50%"]["all"]
    hadoop50 = avgs["Hadoop 50%"]["all"]
    assert spark > hadoop50
    assert spark < 25.0
