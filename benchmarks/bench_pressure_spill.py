"""Capacity-guard overhead: the write path must be free when unpressured.

The capacity-aware write path (`repro.fs.capacity`) consults a ledger of
store free space before every stripe put.  When no store is under
pressure that check must be invisible twice over:

* **byte-identical** — the guarded run issues the exact same put
  sequence as ``capacity_guard=False`` (runtime, NIC series and monitor
  outputs all match bit for bit; the fig2 golden test pins the same
  property at the trajectory level), and
* **cheap** — < 5 % wall-clock overhead on the Fig. 2-shaped dd bag,
  the repo's hottest write path (the shape tracked in
  ``BENCH_perf.json``).

A third, deliberately *pressured* scenario (tiny victim stores) records
the spill counters, showing the guard actually engages when space runs
out.  Results land in ``results/pressure-spill.json``.
"""

from __future__ import annotations

import time

from _harness import save_cached
from repro.core import DeploymentConfig
from repro.core.experiment import baseline_run
from repro.fs import pressure_stats
from repro.metrics import render_table
from repro.units import GB, MB

N_TASKS = 48
FILE_SIZE = 32 * MB
ROUNDS = 3
OVERHEAD_BUDGET_PCT = 5.0


def _signature(m) -> dict:
    times, values = m.series["victim.rx"]
    return {
        "runtime_s": m.runtime_s,
        "own_cpu": m.own_cpu, "own_tx": m.own_tx, "own_rx": m.own_rx,
        "victim_rx": m.victim_rx,
        "victim_rx_bytes_s": m.victim_rx_bytes_s,
        "victim_rx_series": [list(map(float, times)),
                             list(map(float, values))],
    }


def _one_run(guard: bool):
    return baseline_run(alpha=0.25, n_tasks=N_TASKS, file_size=FILE_SIZE,
                        config=DeploymentConfig(capacity_guard=guard),
                        keep_series=True)


def _timed_pair() -> tuple[dict, dict, float, float]:
    """Best-of-ROUNDS wall time per mode, rounds interleaved.

    One discarded warm-up run per mode first, so process-wide caches
    (interned policies, stripe plans, allocator warm-up) don't bill
    whichever mode happens to run first.
    """
    _one_run(True)
    _one_run(False)
    best = {True: float("inf"), False: float("inf")}
    sigs = {}
    for _ in range(ROUNDS):
        for guard in (True, False):
            t0 = time.perf_counter()
            m = _one_run(guard)
            best[guard] = min(best[guard], time.perf_counter() - t0)
            sigs[guard] = _signature(m)
    return sigs[True], sigs[False], best[True], best[False]


def _pressured_counters() -> dict:
    """Victim stores too small for their share: the guard must spill."""
    pressure_stats.reset()
    baseline_run(alpha=0.10, n_tasks=32, file_size=32 * MB,
                 config=DeploymentConfig(
                     n_own=4, n_victim=8, victim_memory=48 * MB,
                     own_store_capacity=8 * GB, stripe_size=8 * MB))
    return pressure_stats.snapshot()


def run_bench() -> dict:
    guarded_sig, bare_sig, guarded_wall, bare_wall = _timed_pair()
    overhead_pct = (guarded_wall / bare_wall - 1.0) * 100.0
    pressured = _pressured_counters()
    data = {
        "params": {"n_tasks": N_TASKS, "file_size": FILE_SIZE,
                   "rounds": ROUNDS},
        "byte_identical": guarded_sig == bare_sig,
        "guarded_wall_s": guarded_wall,
        "bare_wall_s": bare_wall,
        "overhead_pct": overhead_pct,
        "signature": guarded_sig,
        "pressured_counters": pressured,
    }
    save_cached("pressure-spill", data)
    return data


def test_pressure_spill_overhead(benchmark):
    data = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print(render_table(
        ("path", "wall (s)"),
        [("capacity_guard=True", f"{data['guarded_wall_s']:.3f}"),
         ("capacity_guard=False", f"{data['bare_wall_s']:.3f}"),
         ("overhead", f"{data['overhead_pct']:+.2f}%")],
        title="fig2-shaped dd bag, unpressured"))

    assert data["byte_identical"], \
        "capacity guard perturbed the unpressured put sequence"
    assert data["overhead_pct"] < OVERHEAD_BUDGET_PCT
    # The same guard must actually engage under pressure.
    assert data["pressured_counters"]["spilled_writes"] > 0
    assert data["pressured_counters"]["exhausted_writes"] == 0


if __name__ == "__main__":
    out = run_bench()
    print(f"overhead {out['overhead_pct']:+.2f}% "
          f"(identical={out['byte_identical']}); "
          f"pressured spills={out['pressured_counters']['spilled_writes']}")
