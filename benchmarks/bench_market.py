"""Fig. 2-style market sweep: controller-chosen α vs the static 25 % row.

Per seed the three ``market-fig2`` modes share one churn schedule and one
workload (see :mod:`repro.market.scenario`):

* **calm** — no churn, no controller: the per-task baseline durations,
* **static** — churn under the paper's fixed α = 25 % (the controller
  grants reposted leases but never retunes),
* **controller** — the same churn with live α retuning against the
  risk-discounted supply.

The headline number is the **mean slowdown** (per-task duration over the
same seed's calm run, averaged over tasks then seeds): the controller
must beat the static row.  Three structural guards ride along:

* zero lost files in every run (the read-back audit inside the scenario),
* migration volume equals the stripe-plan diff — ``bytes_migrated`` is
  exactly ``stripes_migrated × stripe_size``, never a full reshuffle,
* an idle market (no churn events) leaves the controller's per-task
  durations byte-identical to the calm run: every epoch short-circuits.

Results land in ``results/market-alpha.json`` (per-seed slowdowns, α
traces, market counters) and, for full runs, ``BENCH_market.json`` at
the repo root — the market trajectory later PRs regress against.
``MARKET_SMOKE=1`` shrinks the sweep for CI and writes
``results/market-alpha-smoke.json`` instead (guards only; the
controller-vs-static assertion needs the full scale).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.market import market_mode_specs, market_spec, run_market
from repro.metrics import render_table
from repro.units import MB

SMOKE = os.environ.get("MARKET_SMOKE") == "1"
ROOT = Path(__file__).resolve().parent.parent
SEEDS = range(4) if SMOKE else range(8)
STRIPE_SIZE = 32 * MB          # the scenario's deployment stripe size
SCALE = dict(n_tasks=96, file_size=32 * MB) if SMOKE else {}


def _mean_slowdown(run: dict, calm: dict) -> float:
    ratios = [run["task_s"][t] / calm["task_s"][t]
              for t in calm["task_s"]]
    return sum(ratios) / len(ratios)


def _seed_point(seed: int) -> dict:
    runs = {}
    for spec in market_mode_specs(seed, **SCALE):
        out = run_market(spec)
        runs[out["mode"]] = out
    calm = runs["calm"]
    point = {"seed": seed}
    for mode in ("static", "controller"):
        run = runs[mode]
        assert run["lost_files"] == [], \
            f"seed {seed} {mode}: lost {run['lost_files']}"
        market = run["market"]
        # Plan-diff accounting: every migrated byte belongs to a whole
        # migrated stripe — a full reshuffle would blow this identity.
        assert market["bytes_migrated"] == \
            market["stripes_migrated"] * STRIPE_SIZE
        point[mode] = {
            "mean_slowdown": _mean_slowdown(run, calm),
            "makespan_s": run["makespan_s"],
            "final_alpha": run["final_alpha"],
            "alpha_trace": run["alpha_trace"],
            "market": market,
        }
    point["calm_makespan_s"] = calm["makespan_s"]
    return point


def _idle_guard() -> dict:
    """No churn → the controller must be invisible, task for task."""
    seed = 1
    calm = run_market(market_spec(seed, "calm", n_events=0, **SCALE))
    idle = run_market(market_spec(seed, "controller", n_events=0, **SCALE))
    market = idle["market"]
    return {
        "task_s_identical": idle["task_s"] == calm["task_s"],
        "epochs": market["epochs"],
        "idle_epochs": market["idle_epochs"],
        "bytes_migrated": market["bytes_migrated"],
        "final_alpha": idle["final_alpha"],
    }


def run_bench() -> dict:
    t0 = time.time()
    points = [_seed_point(seed) for seed in SEEDS]
    idle = _idle_guard()
    static_mean = sum(p["static"]["mean_slowdown"]
                      for p in points) / len(points)
    ctl_mean = sum(p["controller"]["mean_slowdown"]
                   for p in points) / len(points)
    wins = sum(p["controller"]["mean_slowdown"]
               < p["static"]["mean_slowdown"] for p in points)
    data = {
        "smoke": SMOKE,
        "seeds": list(SEEDS),
        "static_mean_slowdown": static_mean,
        "controller_mean_slowdown": ctl_mean,
        "controller_wins": wins,
        "idle_guard": idle,
        "points": points,
        "wall_seconds": time.time() - t0,
    }
    out = ROOT / "results"
    out.mkdir(exist_ok=True)
    name = "market-alpha-smoke.json" if SMOKE else "market-alpha.json"
    (out / name).write_text(json.dumps(data, indent=2, sort_keys=True))
    if not SMOKE:
        (ROOT / "BENCH_market.json").write_text(json.dumps({
            "seeds": len(points),
            "static_mean_slowdown": static_mean,
            "controller_mean_slowdown": ctl_mean,
            "controller_wins": wins,
            "idle_identical": idle["task_s_identical"],
            "wall_seconds": data["wall_seconds"],
        }, indent=2, sort_keys=True))
    return data


def test_market_alpha_sweep(benchmark):
    data = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    rows = [[str(p["seed"]),
             f"{p['static']['mean_slowdown']:.4f}",
             f"{p['controller']['mean_slowdown']:.4f}",
             f"{p['controller']['final_alpha']:.3f}"]
            for p in data["points"]]
    rows.append(["mean", f"{data['static_mean_slowdown']:.4f}",
                 f"{data['controller_mean_slowdown']:.4f}", ""])
    print(render_table(
        ("seed", "static a=25%", "controller", "final a"), rows,
        title="market-fig2 mean slowdown vs calm"))

    idle = data["idle_guard"]
    assert idle["task_s_identical"], \
        "an idle market perturbed per-task durations"
    assert idle["epochs"] == idle["idle_epochs"] > 0
    assert idle["bytes_migrated"] == 0
    if not SMOKE:
        # The headline: live retuning beats the paper's best static row.
        assert data["controller_mean_slowdown"] \
            < data["static_mean_slowdown"]


if __name__ == "__main__":
    out = run_bench()
    print(f"controller {out['controller_mean_slowdown']:.4f} vs "
          f"static {out['static_mean_slowdown']:.4f} mean slowdown "
          f"({out['controller_wins']}/{len(out['points'])} seeds won); "
          f"idle identical={out['idle_guard']['task_s_identical']} "
          f"[{out['wall_seconds']:.0f}s]")
