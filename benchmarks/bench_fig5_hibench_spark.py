"""Fig. 5 — HiBench-on-Spark slowdown at α = 50 % (paper §IV-C).

Spark executors take 48 GB per node, so the paper only measures the 50 %
case ("storing more data into the victim nodes is not feasible").  Spark
is itself an in-memory framework: scavenging competes for memory capacity
(JVM GC pressure), memory bandwidth, and network — slowdowns are visibly
larger than Hadoop's, averaging ≈ 18 % in the paper.
"""

import pytest

from repro.metrics import render_bars, render_table

from _harness import slowdown_table

WORKLOADS = ("Montage", "BLAST", "dd")


def test_fig5_hibench_spark_slowdown(benchmark):
    data = benchmark.pedantic(slowdown_table, args=("hibench-spark", 0.50),
                              rounds=1, iterations=1)
    benches = list(data["baseline"])
    rows = [[b] + [f"{data['slowdowns'][wl][b]:6.2f}%" for wl in WORKLOADS]
            for b in benches]
    print()
    print(render_table(
        ["HiBench (Spark)", *WORKLOADS], rows,
        title="Fig. 5: HiBench Spark slowdown, alpha = 50%"))

    slow = data["slowdowns"]
    flat = [slow[wl][b] for wl in WORKLOADS for b in benches]
    spark_avg = sum(flat) / len(flat)
    print(render_bars({wl: sum(slow[wl][b] for b in benches) / len(benches)
                       for wl in WORKLOADS},
                      title="average Spark slowdown per workload"))

    # Spark is the memory-hungry outlier, but still bounded (paper: avg
    # ~18 %, "below 20" even in the worst case narrative).
    assert spark_avg > 5.0, "Spark should visibly feel the scavenger"
    assert spark_avg < 30.0
    # The heaviest traffic (dd) hurts most on average.
    wl_avgs = {wl: sum(slow[wl][b] for b in benches) / len(benches)
               for wl in WORKLOADS}
    assert wl_avgs["dd"] >= wl_avgs["Montage"]
