"""Tests for tenant phases and the SPMD runner."""

import pytest

from repro.cluster import build_das5
from repro.sim import Environment
from repro.store import StoreServer
from repro.tenants import (AllocPhase, ComputePhase, DiskPhase, FreePhase,
                           InterferenceProbe, LatencyPhase,
                           MemBandwidthPhase, NetworkPhase, PhasedWorkload,
                           SleepPhase, run_tenant)
from repro.units import GB, MB


@pytest.fixture
def rig():
    cluster = build_das5(n_nodes=4)
    probe = InterferenceProbe()
    return cluster, cluster.env, list(cluster.nodes), probe


def run_wl(cluster, wl, nodes, probe):
    env = cluster.env
    proc = env.process(run_tenant(env, wl, nodes, cluster.fabric, probe))
    return env.run(until=proc)


class TestPhases:
    def test_compute_phase_duration(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("c", [ComputePhase(core_seconds=320, cores=32)])
        run = run_wl(cluster, wl, nodes[:2], probe)
        assert run.runtime == pytest.approx(10.0)

    def test_membw_phase_duration(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("m", [MemBandwidthPhase(nbytes=480 * GB)])
        run = run_wl(cluster, wl, nodes[:1], probe)
        assert run.runtime == pytest.approx(10.0)  # 48 GB/s bus

    def test_network_alltoall(self, rig):
        cluster, env, nodes, probe = rig
        # 4 nodes, 6 GB to each of 3 peers: tx = 18 GB over 6 GB/s = 3 s.
        wl = PhasedWorkload("n", [NetworkPhase(nbytes_per_peer=6 * GB)])
        run = run_wl(cluster, wl, nodes, probe)
        assert run.runtime == pytest.approx(3.0, rel=0.05)

    def test_network_ring(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("r", [NetworkPhase(nbytes_per_peer=6 * GB,
                                               pattern="ring")])
        run = run_wl(cluster, wl, nodes, probe)
        assert run.runtime == pytest.approx(1.0, rel=0.05)

    def test_network_bad_pattern(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("b", [NetworkPhase(nbytes_per_peer=1,
                                               pattern="mesh")])
        with pytest.raises(ValueError):
            run_wl(cluster, wl, nodes, probe)

    def test_latency_phase_baseline(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("l", [LatencyPhase(n_messages=1_000_000,
                                               base_rtt=4e-6)])
        run = run_wl(cluster, wl, nodes[:2], probe)
        assert run.runtime == pytest.approx(4.0, rel=0.01)

    def test_disk_read_all_cached(self, rig):
        cluster, env, nodes, probe = rig
        # Dataset fits the page cache -> reads at bus speed.
        wl = PhasedWorkload("d", [DiskPhase(nbytes=48 * GB,
                                            dataset_bytes=10 * GB)])
        run = run_wl(cluster, wl, nodes[:1], probe)
        assert run.runtime == pytest.approx(1.0, rel=0.05)

    def test_disk_read_uncached_hits_disk(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        node.allocate_memory("hog", 59 * GB)  # 1 GB of cache left
        wl = PhasedWorkload("d", [DiskPhase(nbytes=1.5 * GB,
                                            dataset_bytes=100 * GB)])
        run = run_wl(cluster, wl, [node], probe)
        # ~99% of reads miss -> ~1.49 GB at 150 MB/s ≈ 10 s.
        assert run.runtime > 8.0

    def test_disk_write_mostly_synchronous_when_cache_small(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        node.allocate_memory("hog", 59 * GB)  # ~1 GB of cache left
        # Dataset far exceeds the cache: ~99% of the write is synchronous
        # disk traffic (1.485 GB at 150 MB/s ~ 10 s).
        wl = PhasedWorkload("w", [DiskPhase(nbytes=1.5 * GB,
                                            dataset_bytes=100 * GB,
                                            write=True)])
        run = run_wl(cluster, wl, [node], probe)
        assert run.runtime == pytest.approx(10.1, rel=0.05)

    def test_disk_write_buffered_when_cache_large(self, rig):
        cluster, env, nodes, probe = rig
        # Dataset fits the cache: write-behind absorbs it at bus speed.
        wl = PhasedWorkload("w", [DiskPhase(nbytes=1.5 * GB,
                                            dataset_bytes=1 * GB,
                                            write=True)])
        run = run_wl(cluster, wl, nodes[:1], probe)
        assert run.runtime < 0.5

    def test_alloc_free_cycle(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        wl = PhasedWorkload("a", [AllocPhase(10 * GB), SleepPhase(1.0),
                                  FreePhase()])
        run_wl(cluster, wl, [node], probe)
        assert node.memory_free == 60 * GB  # everything released

    def test_run_tenant_releases_leftover_memory(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        wl = PhasedWorkload("leak", [AllocPhase(10 * GB)])  # no FreePhase
        run_wl(cluster, wl, [node], probe)
        assert node.memory_free == 60 * GB

    def test_barrier_between_phases(self, rig):
        cluster, env, nodes, probe = rig
        # Node 0 has a CPU hog -> its compute phase is slower; the barrier
        # makes the whole phase as slow as the slowest node.
        hog = nodes[0].cpu.submit(None, cap=31.0, label="hog")
        wl = PhasedWorkload("b", [ComputePhase(core_seconds=32.0, cores=32)])
        run = run_wl(cluster, wl, nodes[:2], probe)
        nodes[0].cpu.remove(hog)
        # Unhindered node: 1 s.  Hogged node: max-min halves its share ->
        # 2 s; the barrier stretches the phase to the slowest node.
        assert run.runtime == pytest.approx(2.0, rel=0.05)

    def test_empty_node_list_rejected(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("x", [SleepPhase(1)])

        def go():
            yield from run_tenant(env, wl, [], cluster.fabric, probe)

        with pytest.raises(ValueError):
            proc = env.process(go())
            env.run(until=proc)

    def test_phase_times_recorded(self, rig):
        cluster, env, nodes, probe = rig
        wl = PhasedWorkload("t", [SleepPhase(2.0, name="s1"),
                                  SleepPhase(3.0, name="s2")])
        run = run_wl(cluster, wl, nodes[:1], probe)
        assert run.phase_times["0:s1"] == pytest.approx(2.0)
        assert run.phase_times["1:s2"] == pytest.approx(3.0)


class TestInterferenceProbe:
    def _net_probe(self, cluster):
        return InterferenceProbe(net=cluster.fabric.net, copy_factor=2.0)

    def test_membw_share_sees_store_net_flows(self, rig):
        cluster, env, nodes, probe = rig
        probe = self._net_probe(cluster)
        # A store ingest of 2.4 GB/s -> 4.8 GB/s bus traffic of 48 = 10%.
        cluster.fabric.transfer(nodes[1], nodes[0], None, cap=2.4 * GB,
                                label="store:x.net")
        assert probe.membw_share(nodes[0]) == pytest.approx(0.1)

    def test_tenant_flows_ignored(self, rig):
        cluster, env, nodes, probe = rig
        probe = self._net_probe(cluster)
        cluster.fabric.transfer(nodes[1], nodes[0], None, cap=2.4 * GB,
                                label="tenant:shuffle")
        assert probe.membw_share(nodes[0]) == 0.0

    def test_store_net_bytes_integrates(self, rig):
        cluster, env, nodes, probe = rig
        probe = self._net_probe(cluster)
        flow = cluster.fabric.transfer(nodes[1], nodes[0], 6 * GB,
                                       label="store:x.net")
        env.run(until=flow.done)
        assert probe.store_net_bytes(nodes[0]) == pytest.approx(6 * GB)
        assert probe.store_net_bytes(nodes[2]) == 0.0

    def test_request_rate_from_servers(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        server = StoreServer(env, node, cluster.fabric, capacity=1 * GB)
        probe2 = InterferenceProbe.from_servers({node.name: server})
        server.request_rate.record(env.now, count=100)
        assert probe2.request_rate(node, env.now) > 0
        assert probe.request_rate(node, env.now) == 0

    def test_resident_bytes(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        server = StoreServer(env, node, cluster.fabric, capacity=1 * GB)
        probe2 = InterferenceProbe.from_servers({node.name: server})
        server.kv.put("k", nbytes=100 * MB)
        server._sync_memory()
        assert probe2.resident_bytes(node) == pytest.approx(
            100 * MB + server.costs.key_overhead)


class TestInterferenceEffects:
    def test_membw_phase_slows_under_store_traffic(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        probe = InterferenceProbe(net=cluster.fabric.net, copy_factor=2.0)
        wl = PhasedWorkload("m", [MemBandwidthPhase(nbytes=48 * GB)])
        baseline = run_wl(cluster, wl, [node], probe).runtime
        # Persistent store ingest: 1.2 GB/s -> 5% of the bus after copies.
        cluster.fabric.transfer(nodes[1], node, None, cap=1.2 * GB,
                                label="store:x.net")
        loaded = run_wl(cluster, wl, [node], probe).runtime
        assert loaded > baseline * 1.2  # share + pollution

    def test_latency_phase_inflates_with_request_rate(self, rig):
        cluster, env, nodes, probe = rig
        node = nodes[0]
        server = StoreServer(env, node, cluster.fabric, capacity=1 * GB)
        probe2 = InterferenceProbe.from_servers({node.name: server})
        wl = PhasedWorkload("l", [LatencyPhase(n_messages=100_000)])
        base = run_wl(cluster, wl, [node], probe2).runtime

        # Sustain a store request arrival rate; let the tracker converge
        # (tau = 2 s) before the loaded run starts.
        t_load = env.now + 10.0

        def chatter():
            # 10k requests/s: ~0.3 cores of request handling.
            while env.now < t_load + 60:
                server.request_rate.record(env.now, count=100)
                yield env.timeout(0.01)

        env.process(chatter())
        env.run(until=t_load)
        proc = env.process(run_tenant(env, wl, [node], cluster.fabric,
                                      probe2))
        run = env.run(until=proc)
        assert run.runtime > base * 1.2
