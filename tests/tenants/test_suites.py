"""Tests for the HPCC / HiBench suite definitions."""

import pytest

from repro.cluster import build_das5
from repro.tenants import (GC_SENSITIVITY, HIBENCH_HADOOP, HIBENCH_SPARK,
                           HPCC_BENCHMARKS, GcComputePhase,
                           InterferenceProbe, MapReduceSpec, SparkJobSpec,
                           hibench_hadoop, hibench_hadoop_suite,
                           hibench_spark, hibench_spark_suite,
                           hpcc_benchmark, hpcc_suite, mapreduce_job,
                           run_tenant, spark_job)
from repro.tenants.base import (ComputePhase, DiskPhase,
                                FrameworkComputePhase, LatencyPhase,
                                MemBandwidthPhase, NetworkPhase)
from repro.units import GB


class TestHpccSuite:
    def test_eight_categories_in_order(self):
        names = [wl.name for wl in hpcc_suite()]
        assert names == list(HPCC_BENCHMARKS)
        assert names[0] == "HPL"
        assert "STREAM" in names

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            hpcc_benchmark("LINPACKZ")
        with pytest.raises(ValueError):
            hpcc_benchmark("HPL", scale=0)

    def test_stream_is_membw_dominated(self):
        wl = hpcc_benchmark("STREAM")
        kinds = [type(p) for p in wl.phases]
        assert MemBandwidthPhase in kinds
        assert ComputePhase not in kinds

    def test_latency_is_latency_phase(self):
        wl = hpcc_benchmark("latency")
        assert isinstance(wl.phases[0], LatencyPhase)

    def test_dgemm_is_pure_compute(self):
        wl = hpcc_benchmark("DGEMM")
        assert any(isinstance(p, ComputePhase) for p in wl.phases)
        assert not any(isinstance(p, (NetworkPhase, MemBandwidthPhase))
                       for p in wl.phases)

    def test_hpcc_uses_native_verbs(self):
        for name in HPCC_BENCHMARKS:
            for p in hpcc_benchmark(name).phases:
                if isinstance(p, NetworkPhase):
                    assert p.transport == "verbs", name

    def test_scale_shrinks_runtime(self):
        cluster = build_das5(n_nodes=4)
        probe = InterferenceProbe()

        def runtime(scale):
            wl = hpcc_benchmark("STREAM", scale=scale)
            proc = cluster.env.process(run_tenant(
                cluster.env, wl, list(cluster.nodes), cluster.fabric,
                probe))
            return cluster.env.run(until=proc).runtime

        assert runtime(0.5) < runtime(1.0)


class TestHibenchHadoop:
    def test_six_benchmarks(self):
        assert set(HIBENCH_HADOOP) == {"KMeans", "PageRank", "WordCount",
                                       "TeraSort", "DFSIO-read",
                                       "DFSIO-write"}
        assert len(hibench_hadoop_suite()) == 6

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            hibench_hadoop("SortZ")

    def test_terasort_characterization(self):
        """Paper: CPU-intensive map, large memory, large shuffle."""
        wl = hibench_hadoop("TeraSort")
        kinds = [type(p) for p in wl.phases]
        assert FrameworkComputePhase in kinds
        assert NetworkPhase in kinds
        shuffles = [p for p in wl.phases if isinstance(p, NetworkPhase)]
        assert all(p.transport == "tcp" for p in shuffles)
        fw = [p for p in wl.phases if isinstance(p, FrameworkComputePhase)]
        assert all(p.memory_intensity >= 1.0 for p in fw)

    def test_dfsio_read_is_disk_dominated(self):
        wl = hibench_hadoop("DFSIO-read")
        disk = [p for p in wl.phases if isinstance(p, DiskPhase)]
        assert len(disk) == 1
        assert disk[0].dataset_bytes > 60 * GB  # exceeds any page cache

    def test_iterative_jobs_have_multiple_rounds(self):
        wl = hibench_hadoop("KMeans")
        reads = [p for p in wl.phases if isinstance(p, DiskPhase)]
        assert len(reads) >= 3

    def test_mapreduce_job_validation(self):
        spec = MapReduceSpec(name="x", input_bytes=1, dataset_bytes=1,
                             map_core_seconds=1)
        with pytest.raises(ValueError):
            mapreduce_job(spec, n_nodes=0)


class TestHibenchSpark:
    def test_five_benchmarks_no_dfsio(self):
        assert "DFSIO-read" not in HIBENCH_SPARK
        assert "DFSIO-write" not in HIBENCH_SPARK
        assert len(hibench_spark_suite()) == 5

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            hibench_spark("DFSIO-read")

    def test_executors_take_48gb(self):
        wl = hibench_spark("TeraSort")
        alloc = wl.phases[0]
        assert alloc.nbytes == 48 * GB

    def test_gc_phase_present(self):
        wl = hibench_spark("KMeans")
        assert any(isinstance(p, GcComputePhase) for p in wl.phases)

    def test_spark_job_validation(self):
        spec = SparkJobSpec(name="x", input_bytes=1, dataset_bytes=1,
                            compute_core_seconds=1)
        with pytest.raises(ValueError):
            spark_job(spec, n_nodes=0)


class TestGcComputePhase:
    def test_inflates_under_displacement(self):
        from repro.store import StoreServer
        from repro.tenants import PhasedWorkload
        cluster = build_das5(n_nodes=2)
        env = cluster.env
        node = cluster.nodes[0]
        server = StoreServer(env, node, cluster.fabric, capacity=20 * GB)
        probe = InterferenceProbe.from_servers({node.name: server})

        def run_once():
            wl = PhasedWorkload("gc", [GcComputePhase(core_seconds=320,
                                                      cores=32)])
            proc = env.process(run_tenant(env, wl, [node], cluster.fabric,
                                          probe))
            return env.run(until=proc).runtime

        base = run_once()
        # Occupy the node: tenant 40 GB + store 10 GB resident.
        node.allocate_memory("tenant-other", 40 * GB)
        server.kv.put("blob", nbytes=10 * GB)
        server._sync_memory()
        loaded = run_once()
        node.free_memory("tenant-other")
        # pressure = 10/(10+10) = 0.5 -> +GC_SENSITIVITY/2.
        assert loaded == pytest.approx(base * (1 + GC_SENSITIVITY * 0.5),
                                       rel=0.05)
