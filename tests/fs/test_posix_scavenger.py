"""Tests for the FUSE-like mount layer and the scavenging manager."""

import pytest

from repro.cluster import build_das5
from repro.fs import (ClassSpec, FileExists, FsError, HandleClosed, MemFSS,
                      MountPoint, PlacementMap, ScavengingManager,
                      stripe_key)
from repro.fs import PlacementMap as PP
from repro.hashing import own_victim_weights
from repro.store import StoreServer
from repro.units import GB


class TestMountPoint:
    def test_only_own_nodes_mount(self, rig):
        MountPoint(rig.fs, rig.own[0])
        with pytest.raises(FsError):
            MountPoint(rig.fs, rig.victims[0])

    def test_open_write_close_read(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])

        def writer():
            h = yield from mp.open("/x", "w")
            yield from h.write(b"hello ")
            yield from h.write(b"world")
            meta = yield from h.close()
            return meta

        meta = rig.run(writer())
        assert meta.size == 11

        def reader():
            h = yield from mp.open("/x", "r")
            first = yield from h.read(5)
            rest = yield from h.read()
            return first, rest

        first, rest = rig.run(reader())
        assert first == b"hello"
        assert rest == b" world"

    def test_write_size_mode(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])

        def writer():
            h = yield from mp.open("/big", "w")
            yield from h.write_size(500)
            yield from h.write_size(500)
            return (yield from h.close())

        meta = rig.run(writer())
        assert meta.size == 1000

        def reader():
            h = yield from mp.open("/big", "r")
            n = yield from h.read(100)
            m = yield from h.read()
            return n, m

        n, m = rig.run(reader())
        assert (n, m) == (100, 900)

    def test_seek(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])
        rig.run(mp.write_file("/f", payload=b"0123456789"))

        def reader():
            h = yield from mp.open("/f", "r")
            h.seek(4)
            return (yield from h.read(3))

        assert rig.run(reader()) == b"456"

    def test_open_existing_for_write_raises(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])
        rig.run(mp.write_file("/f", nbytes=1))
        with pytest.raises(FileExists):
            rig.run(mp.open("/f", "w"))

    def test_closed_handle_rejects_io(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])

        def flow():
            h = yield from mp.open("/f", "w")
            yield from h.write(b"x")
            yield from h.close()
            yield from h.write(b"y")

        with pytest.raises(HandleClosed):
            rig.run(flow())

    def test_double_close_is_noop(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])

        def flow():
            h = yield from mp.open("/f", "w")
            yield from h.write(b"x")
            yield from h.close()
            return (yield from h.close())

        assert rig.run(flow()) is None

    def test_mode_validation(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])
        with pytest.raises(ValueError):
            rig.run(mp.open("/f", "a"))

    def test_mixing_payload_and_size_writes_rejected(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])

        def flow():
            h = yield from mp.open("/f", "w")
            yield from h.write(b"x")
            yield from h.write_size(10)

        with pytest.raises(FsError):
            rig.run(flow())

    def test_namespace_passthrough(self, rig):
        mp = MountPoint(rig.fs, rig.own[0])
        rig.run(mp.mkdir("/d"))
        rig.run(mp.write_file("/d/f", nbytes=5))
        assert rig.run(mp.listdir("/d")) == ["f"]
        assert rig.run(mp.exists("/d/f"))
        rig.run(mp.rename("/d/f", "/d/g"))
        meta = rig.run(mp.stat("/d/g"))
        assert meta.size == 5
        rig.run(mp.unlink("/d/g"))
        assert rig.run(mp.listdir("/d")) == []


def build_scavenging_rig(alpha=0.5, n_own=2, n_victim=3,
                         per_node_memory=2 * GB):
    """Own-only FS first; victims joined through the ScavengingManager."""
    cluster = build_das5(n_nodes=n_own + n_victim)
    env = cluster.env
    res = cluster.reservations
    own = list(res.reserve("memfss-user", n_own).nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric, capacity=10 * GB)
               for n in own}
    policy = PlacementMap(
        {"own": ClassSpec(0.0, tuple(n.name for n in own))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy, stripe_size=64)
    tenant = res.reserve("tenant", n_victim)
    for node in tenant.nodes:
        res.register_offer(node, per_node_memory, owner="tenant")
    mgr = ScavengingManager(env, fs, res)
    weights = own_victim_weights(alpha)
    # Re-weight the own class and add the victims at their computed weight.
    fs.policy = fs.policy.reweighted({"own": weights["own"]})
    mgr.scavenge(tenant.nodes, per_node_memory, weights["victim"])
    return cluster, fs, mgr, own, list(tenant.nodes)


class TestScavengingManager:
    def run(self, cluster, gen):
        proc = cluster.env.process(gen)
        return cluster.env.run(until=proc)

    def test_scavenge_extends_capacity(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig()
        assert set(fs.policy.class_names) == {"own", "victim"}
        assert fs.total_capacity() == 2 * 10 * GB + 3 * 2 * GB

    def test_data_lands_on_victims(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig(alpha=0.25)
        for i in range(20):
            self.run(cluster, fs.write_file(own[0], f"/f{i}",
                                            payload=bytes(640)))
        vic_bytes = sum(fs.servers[v.name].kv.used_bytes for v in victims)
        assert vic_bytes > 0

    def test_container_memory_accounted_on_victim(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig()
        self.run(cluster, fs.write_file(own[0], "/f", payload=bytes(6400)))
        total_victim_mem = sum(
            v.memory_owned_by(f"container:memfss@{v.name}") for v in victims)
        assert total_victim_mem > 0

    def test_evacuation_preserves_data(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig(alpha=0.25)
        blobs = {f"/f{i}": bytes((i * 31 + j) % 256 for j in range(640))
                 for i in range(12)}
        for path, blob in blobs.items():
            self.run(cluster, fs.write_file(own[0], path, payload=blob))
        # Evict one victim via its lease (the watcher migrates stripes).
        target = victims[0]
        cluster.reservations.revoke_leases(target, cause="pressure")
        cluster.env.run()  # let the watcher finish evacuating
        assert target.name not in fs.servers
        assert target.name not in fs.policy.all_nodes
        assert mgr.evictions == 1
        for path, blob in blobs.items():
            _, back = self.run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_evacuation_frees_victim_memory(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig()
        self.run(cluster, fs.write_file(own[0], "/f", payload=bytes(6400)))
        target = victims[0]
        self.run(cluster, mgr.withdraw(target))
        assert target.memory_owned_by(f"container:memfss@{target.name}") == 0

    def test_new_files_avoid_evacuated_node(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig(alpha=0.0)
        target = victims[0]
        self.run(cluster, mgr.withdraw(target))
        for i in range(10):
            self.run(cluster, fs.write_file(own[0], f"/g{i}",
                                            payload=bytes(640)))
        assert all(k is not None for k in [1])  # smoke
        # No stripe of the new files may be on the withdrawn node's server
        # (it is gone from fs.servers entirely).
        assert target.name not in fs.servers

    def test_metadata_rewritten_after_eviction(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig(alpha=0.25)
        self.run(cluster, fs.write_file(own[0], "/f", payload=bytes(1280)))
        target = victims[0]
        self.run(cluster, mgr.withdraw(target))
        meta = self.run(cluster, fs.stat(own[0], "/f"))
        for members in meta.class_members.values():
            assert target.name not in members

    def test_migrated_bytes_counted(self):
        cluster, fs, mgr, own, victims = build_scavenging_rig(alpha=0.0)
        self.run(cluster, fs.write_file(own[0], "/f", payload=bytes(6400)))
        held = fs.servers[victims[0].name].kv.used_bytes
        self.run(cluster, mgr.withdraw(victims[0]))
        if held > 0:
            assert mgr.migrated_bytes > 0
