"""Batch planner ≡ scalar placement, policy interning, digest arrays.

The refactor to a batch-first :class:`~repro.fs.placement.StripePlan` must
not move a single stripe: stripe locations are persisted in file metadata,
so batch and scalar resolution have to agree bit-for-bit — including at
the α = 0 % / 100 % endpoints of Fig. 2 (a class weight equal to the hash
modulus starves the class entirely) and for degenerate single-node
classes.  Hypothesis drives both hash families through random policies.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fs import (ClassSpec, FileMeta, PlacementMap, StripePlan,
                      planner_stats, stripe_digest_array, stripe_key)
from repro.fs.placement import clear_placement_caches
from repro.hashing import MIX64, TR98, own_victim_weights, stable_digest
from repro.hashing.hrw import get_family

FAMILIES = ("mix64", "tr98")


@st.composite
def policies(draw):
    """Random two-layer policies: 1-3 classes, 0-4 nodes each (at least one
    node overall), weights spanning [0, modulus] including both endpoints."""
    family = draw(st.sampled_from(FAMILIES))
    modulus = get_family(family).modulus
    n_classes = draw(st.integers(1, 3))
    sizes = draw(st.lists(st.integers(0, 4),
                          min_size=n_classes, max_size=n_classes))
    assume(any(sizes))
    classes = {}
    serial = 0
    for ci, size in enumerate(sizes):
        frac = draw(st.one_of(st.sampled_from([0.0, 1.0]),
                              st.floats(0.0, 1.0)))
        nodes = tuple(f"n{serial + i}" for i in range(size))
        serial += size
        classes[f"c{ci}"] = ClassSpec(frac * modulus, nodes)
    return PlacementMap(classes, family)


def keys_for(inode, n):
    return [stripe_key(inode, i) for i in range(n)]


class TestPlanEquivalence:
    @given(policies(), st.integers(0, 2**32), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_plan_matches_scalar(self, policy, inode, n):
        keys = keys_for(inode, n)
        plan = policy.plan(keys)
        assert len(plan) == n
        assert list(plan.primaries) == [policy.place(k) for k in keys]
        assert [plan.class_of(i) for i in range(n)] == \
            [policy.class_of(k) for k in keys]

    @given(policies(), st.integers(0, 2**32), st.integers(1, 16),
           st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_chain_matches_ranked_prefix(self, policy, inode, n, k):
        keys = keys_for(inode, n)
        plan = policy.plan(keys)
        for i, key in enumerate(keys):
            assert plan.chain(i, k) == policy.ranked(key, k=k)
            assert plan.chain(i) == policy.ranked(key)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("alpha", [0.0, 0.25, 1.0])
    def test_starved_endpoints(self, family, alpha):
        """Fig. 2's α endpoints: one class carries weight == modulus and
        must receive nothing, in scalar and batch resolution alike."""
        w = own_victim_weights(alpha, family)
        policy = PlacementMap({
            "own": ClassSpec(w["own"], ("o0", "o1")),
            "victim": ClassSpec(w["victim"], ("v0", "v1", "v2")),
        }, family)
        keys = keys_for(9, 400)
        plan = policy.plan(keys)
        assert list(plan.primaries) == [policy.place(k) for k in keys]
        if alpha == 0.0:
            assert all(p.startswith("v") for p in plan.primaries)
        elif alpha == 1.0:
            assert all(p.startswith("o") for p in plan.primaries)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_single_node_class(self, family):
        policy = PlacementMap({
            "solo": ClassSpec(0.0, ("lonely",)),
            "rest": ClassSpec(0.0, ("a", "b")),
        }, family)
        keys = keys_for(5, 200)
        plan = policy.plan(keys)
        assert list(plan.primaries) == [policy.place(k) for k in keys]
        for i, key in enumerate(keys):
            assert plan.chain(i, 3) == policy.ranked(key, k=3)

    def test_empty_plan(self):
        policy = PlacementMap({"a": ClassSpec(0.0, ("x",))})
        plan = policy.plan([])
        assert len(plan) == 0 and plan.primaries == ()

    def test_golden_placements_pinned(self):
        """Placements recorded from the pre-refactor scalar implementation:
        persisted stripe locations must never silently change."""
        golden = {
            "mix64": ["v0", "v2", "v11", "o1", "v5", "v9",
                      "v7", "v9", "v6", "v4", "v9", "v1"],
            "tr98": ["v7", "v3", "v5", "v8", "o2", "v11",
                     "v0", "v11", "v10", "v11", "v11", "v11"],
        }
        keys = [("stripe", 7, i) for i in range(12)]
        for family, expect in golden.items():
            w = own_victim_weights(0.25, family)
            policy = PlacementMap({
                "own": ClassSpec(w["own"],
                                 tuple(f"o{i}" for i in range(4))),
                "victim": ClassSpec(w["victim"],
                                    tuple(f"v{i}" for i in range(12))),
            }, family)
            assert [policy.place(k) for k in keys] == expect
            assert list(policy.plan(keys).primaries) == expect


class TestPolicyInterning:
    def make_meta(self, policy, inode=1):
        weights, members = policy.snapshot()
        return FileMeta(path="/f", inode=inode, size=100, stripe_size=10,
                        n_stripes=10, class_weights=weights,
                        class_members=members)

    @given(policies())
    @settings(max_examples=40, deadline=None)
    def test_from_meta_round_trip_is_interned(self, policy):
        meta = self.make_meta(policy)
        first = PlacementMap.from_meta(meta, policy.family)
        assert PlacementMap.from_meta(meta, policy.family) is first
        # The freshly built policy has the same snapshot -> same instance.
        assert PlacementMap.intern(policy) is first

    def test_interned_policy_shares_plans(self):
        clear_placement_caches()
        policy = PlacementMap.intern(
            PlacementMap({"a": ClassSpec(0.0, ("x", "y"))}))
        meta = self.make_meta(policy)
        again = PlacementMap.from_meta(meta, policy.family)
        assert again is policy
        plan = policy.plan_file(1, 10)
        assert again.plan_file(1, 10) is plan

    def test_distinct_snapshots_not_shared(self):
        a = PlacementMap.intern(
            PlacementMap({"a": ClassSpec(0.0, ("x",))}))
        b = PlacementMap.intern(
            PlacementMap({"a": ClassSpec(0.0, ("x", "y"))}))
        assert a is not b

    def test_family_part_of_intern_key(self):
        weights = {"a": 0.0}
        members = {"a": ["x", "y"]}
        meta = FileMeta(path="/f", inode=1, size=10, stripe_size=10,
                        n_stripes=1, class_weights=weights,
                        class_members=members)
        assert PlacementMap.from_meta(meta, MIX64) is not \
            PlacementMap.from_meta(meta, TR98)

    def test_counters_move(self):
        clear_placement_caches()
        policy = PlacementMap.intern(
            PlacementMap({"a": ClassSpec(0.0, ("x", "y"))}))
        meta = self.make_meta(policy)
        PlacementMap.from_meta(meta, policy.family)
        before = planner_stats.snapshot()
        PlacementMap.from_meta(meta, policy.family)
        policy.plan_file(1, 10)
        policy.plan_file(1, 10)
        after = planner_stats.snapshot()
        assert after["policy_hits"] == before["policy_hits"] + 1
        assert after["plan_hits"] == before["plan_hits"] + 1
        assert after["stripes_resolved"] >= before["stripes_resolved"] + 20


class TestPlanFile:
    def test_plan_file_cached_identity(self):
        policy = PlacementMap({"a": ClassSpec(0.0, ("x", "y", "z"))})
        assert policy.plan_file(3, 8) is policy.plan_file(3, 8)
        assert policy.plan_file(3, 8) is not policy.plan_file(4, 8)

    def test_plan_file_includes_parity_keys(self):
        from repro.fs import parity_key
        policy = PlacementMap({"a": ClassSpec(0.0, ("x", "y", "z"))})
        plan = policy.plan_file(3, 7, erasure=(3, 2))
        # ceil(7/3) = 3 groups x 2 parity keys after the 7 stripes.
        assert len(plan) == 7 + 6
        idx = plan.index_of(parity_key(3, 1, 0))
        assert plan.keys[idx] == parity_key(3, 1, 0)
        assert plan.primary(idx) == policy.place(parity_key(3, 1, 0))

    @given(st.integers(0, 2**40), st.integers(0, 80))
    @settings(max_examples=60, deadline=None)
    def test_stripe_digest_array_matches_stable_digest(self, inode, n):
        arr = stripe_digest_array(inode, n)
        assert arr.dtype == np.uint64 and not arr.flags.writeable
        assert arr.tolist() == \
            [stable_digest(stripe_key(inode, i)) for i in range(n)]

    def test_plan_digests_match_keys(self):
        policy = PlacementMap({"a": ClassSpec(0.0, ("x", "y"))})
        plan = policy.plan_file(11, 5)
        assert plan.digests.tolist() == \
            [stable_digest(k) for k in plan.keys]

    def test_plan_rejects_mismatched_digests(self):
        policy = PlacementMap({"a": ClassSpec(0.0, ("x",))})
        with pytest.raises(ValueError):
            StripePlan(policy, [stripe_key(1, 0)],
                       np.zeros(2, dtype=np.uint64))
