"""Fault-path tests for the scavenger: reads racing evacuation,
concurrent revocations, crash handling and the repair daemon."""

import pytest

from repro.cluster import build_das5
from repro.faults import fault_stats
from repro.fs import ClassSpec, MemFSS, PlacementMap, ScavengingManager
from repro.fs.scavenger import RepairDaemon
from repro.fs.striping import stripe_key
from repro.hashing import own_victim_weights
from repro.store import StoreServer
from repro.units import GB


@pytest.fixture(autouse=True)
def _reset_stats():
    fault_stats.reset()
    yield
    fault_stats.reset()


def build_rig(alpha=0.25, n_own=2, n_victim=4, per_node_memory=2 * GB,
              replication=1, erasure=None):
    """Own-only FS first; victims joined through the ScavengingManager."""
    cluster = build_das5(n_nodes=n_own + n_victim)
    env = cluster.env
    res = cluster.reservations
    own = list(res.reserve("memfss-user", n_own).nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric, capacity=10 * GB)
               for n in own}
    weights = own_victim_weights(alpha)
    policy = PlacementMap(
        {"own": ClassSpec(weights["own"], tuple(n.name for n in own))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy, stripe_size=64,
                replication=replication, erasure=erasure)
    tenant = res.reserve("tenant", n_victim)
    for node in tenant.nodes:
        res.register_offer(node, per_node_memory, owner="tenant")
    mgr = ScavengingManager(env, fs, res)
    mgr.scavenge(tenant.nodes, per_node_memory, weights["victim"])
    return cluster, fs, mgr, own, list(tenant.nodes)


def run(cluster, gen):
    proc = cluster.env.process(gen)
    return cluster.env.run(until=proc)


def write_blobs(cluster, fs, own, count=12, size=640):
    blobs = {f"/f{i}": bytes((i * 31 + j) % 256 for j in range(size))
             for i in range(count)}
    for path, blob in blobs.items():
        run(cluster, fs.write_file(own[0], path, payload=blob))
    return blobs


class TestReadDuringEvacuation:
    def test_reads_succeed_mid_evacuation(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25)
        blobs = write_blobs(cluster, fs, own)
        target = victims[0]

        def driver():
            # Fire the revocation, then read every file while the watcher
            # is draining the node: the chain walk (lazy movement, §V-C)
            # must serve each stripe from wherever it currently lives.
            cluster.reservations.revoke_leases(target, cause="pressure")
            out = {}
            for path in blobs:
                _n, back = yield from fs.read_file(own[0], path)
                out[path] = back
            return out

        out = run(cluster, driver())
        assert out == blobs
        cluster.env.run()  # let the evacuation finish
        assert target.name not in fs.servers
        # And everything is still intact afterwards.
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path


class TestConcurrentRevocations:
    def test_simultaneous_revocations_do_not_double_migrate(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.0, n_victim=4)
        blobs = write_blobs(cluster, fs, own, count=16)
        a, b = victims[0], victims[1]
        revoked = {a.name, b.name}
        cluster.reservations.revoke_leases(a, cause="pressure")
        cluster.reservations.revoke_leases(b, cause="pressure")
        cluster.env.run()
        assert a.name not in fs.servers and b.name not in fs.servers
        assert mgr.evictions == 2
        # No stripe may migrate twice, and none onto a dying node.
        keys = [k for k, _src, _dst in mgr.moved_keys]
        assert len(keys) == len(set(keys))
        for _key, _src, dst in mgr.moved_keys:
            assert dst not in revoked
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_policy_leaves_both_nodes_before_drain_completes(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.0)
        write_blobs(cluster, fs, own, count=8)
        a, b = victims[0], victims[1]

        def driver():
            cluster.reservations.revoke_leases(a, cause="pressure")
            cluster.reservations.revoke_leases(b, cause="pressure")
            yield cluster.env.timeout(0.0)
            # Both revocations left the placement immediately, even
            # though at most one drain can hold the lock right now.
            return fs.policy.all_nodes

        nodes = run(cluster, driver())
        assert a.name not in nodes and b.name not in nodes
        cluster.env.run()


class TestCrashAndRepair:
    def test_crash_removes_node_without_migration(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.0)
        write_blobs(cluster, fs, own, count=8)
        target = victims[0]
        fs.servers[target.name].crash()
        mgr.handle_crash(target.name)
        cluster.env.run()
        assert target.name not in fs.servers
        assert target.name not in fs.policy.all_nodes
        assert mgr.moved_keys == []  # nothing to drain: the data is gone

    def test_repair_daemon_restores_replication(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25,
                                                   replication=2)
        blobs = write_blobs(cluster, fs, own, count=10)
        target = victims[0]
        fs.servers[target.name].crash()
        mgr.handle_crash(target.name)
        daemon = RepairDaemon(cluster.env, fs, manager=mgr)
        repaired = run(cluster, daemon.sweep())
        assert daemon.deficits == 0
        assert fault_stats.repair_scans == 1
        if repaired:
            assert fault_stats.stripes_repaired == repaired
            assert fault_stats.repaired_bytes > 0
        # Redundancy is really back: lose one more node and still read.
        second = victims[1]
        fs.servers[second.name].crash()
        mgr.handle_crash(second.name)
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    @staticmethod
    def _single_loss_victim(cluster, fs, own, victims):
        """A victim whose crash loses at most one block per parity group.

        HRW has no group anti-affinity, so a group's data stripe and its
        parity can land on one node; XOR (m=1) cannot survive losing
        both.  The placement is deterministic, so pick a safe victim.
        """
        from repro.fs.erasure import group_layout, parity_key

        ok = {v.name: True for v in victims}
        for path in run(cluster, fs.list_all_files(own[0])):
            meta = run(cluster, fs.stat(own[0], path))
            policy = PlacementMap.from_meta(meta, fs.policy.family)
            plan = policy.plan_file(meta.inode, meta.n_stripes,
                                    erasure=meta.erasure)
            k, m = meta.erasure
            for gi, (first, count) in enumerate(
                    group_layout(meta.n_stripes, k)):
                prim = [plan.primary(i)
                        for i in range(first, first + count)]
                prim += [plan.primary(plan.index_of(
                    parity_key(meta.inode, gi, j))) for j in range(m)]
                for name in set(prim):
                    if prim.count(name) > 1 and name in ok:
                        ok[name] = False
        for v in victims:
            if ok[v.name]:
                return v
        pytest.skip("every victim co-locates a full parity group")

    def test_repair_daemon_reconstructs_erasure_coded_stripes(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25, n_victim=6,
                                                   erasure=(2, 1))
        blobs = write_blobs(cluster, fs, own, count=6)
        target = self._single_loss_victim(cluster, fs, own, victims)
        fs.servers[target.name].crash()
        mgr.handle_crash(target.name)
        daemon = RepairDaemon(cluster.env, fs, manager=mgr)
        run(cluster, daemon.sweep())
        assert daemon.deficits == 0
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_repair_rewrites_stale_membership(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25,
                                                   replication=2)
        write_blobs(cluster, fs, own, count=6)
        target = victims[0]
        fs.servers[target.name].crash()
        mgr.handle_crash(target.name)
        daemon = RepairDaemon(cluster.env, fs, manager=mgr)
        run(cluster, daemon.sweep())
        paths = run(cluster, fs.list_all_files(own[0]))
        for path in paths:
            meta = run(cluster, fs.stat(own[0], path))
            for members in meta.class_members.values():
                assert target.name not in members

    def test_repair_daemon_start_stop(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25,
                                                   replication=2)
        write_blobs(cluster, fs, own, count=4)
        daemon = RepairDaemon(cluster.env, fs, manager=mgr, interval=0.05)
        daemon.start()

        def driver():
            yield cluster.env.timeout(0.2)
            daemon.stop()

        run(cluster, driver())
        cluster.env.run()
        assert fault_stats.repair_scans >= 1

    def test_clean_sweep_resolves_open_faults(self):
        cluster, fs, mgr, own, victims = build_rig(alpha=0.25,
                                                   replication=2)
        write_blobs(cluster, fs, own, count=4)
        target = victims[0]
        fault_stats.record_fault(target.name, cluster.env.now)
        fs.servers[target.name].crash()
        mgr.handle_crash(target.name)
        daemon = RepairDaemon(cluster.env, fs, manager=mgr)
        run(cluster, daemon.sweep())
        assert fault_stats.open_faults == ()
        assert fault_stats.recoveries == 1
        assert fault_stats.mttr() >= 0.0
