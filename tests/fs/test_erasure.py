"""Unit tests for the erasure-coding helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import group_layout, parity_key, storage_overhead, xor_parity


class TestGroupLayout:
    def test_exact_groups(self):
        assert group_layout(8, 4) == [(0, 4), (4, 4)]

    def test_ragged_tail(self):
        assert group_layout(10, 4) == [(0, 4), (4, 4), (8, 2)]

    def test_empty(self):
        assert group_layout(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            group_layout(10, 0)
        with pytest.raises(ValueError):
            group_layout(-1, 4)

    @given(st.integers(0, 200), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_property_groups_cover_all_stripes(self, n, k):
        layout = group_layout(n, k)
        covered = sum(count for _f, count in layout)
        assert covered == n
        # Contiguous, non-overlapping.
        pos = 0
        for first, count in layout:
            assert first == pos
            pos += count


class TestXorParity:
    def test_empty(self):
        assert xor_parity([]) == b""

    def test_single_piece_is_identity(self):
        assert xor_parity([b"abc"]) == b"abc"

    def test_recovers_missing_piece(self):
        pieces = [b"hello", b"world", b"!" * 5]
        parity = xor_parity(pieces)
        recovered = xor_parity([parity, pieces[1], pieces[2]])
        assert recovered == pieces[0]

    def test_pads_to_longest(self):
        parity = xor_parity([b"\x01", b"\x02\x03"])
        assert parity == bytes([0x03, 0x03])

    @given(st.lists(st.binary(min_size=0, max_size=40), min_size=2,
                    max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_property_xor_roundtrip(self, pieces):
        parity = xor_parity(pieces)
        # XOR of parity with all but the first recovers the first (padded).
        rec = xor_parity([parity] + pieces[1:])
        assert rec[:len(pieces[0])] == pieces[0]


class TestOverheadAndKeys:
    def test_storage_overhead(self):
        assert storage_overhead(4, 1) == pytest.approx(0.25)
        assert storage_overhead(10, 2) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            storage_overhead(0, 1)

    def test_parity_key_shape(self):
        assert parity_key(3, 1, 0) == ("parity", 3, 1, 0)
        with pytest.raises(ValueError):
            parity_key(3, -1, 0)
