"""Unit tests for striping and metadata records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import (FileMeta, PathError, join_payload, normalize_path,
                      parent_dir, split_payload, stripe_count, stripe_key,
                      stripe_spans)


class TestStriping:
    def test_count_exact_multiple(self):
        assert stripe_count(100, 25) == 4

    def test_count_with_tail(self):
        assert stripe_count(101, 25) == 5

    def test_count_zero_size(self):
        assert stripe_count(0, 25) == 0

    def test_count_smaller_than_stripe(self):
        assert stripe_count(10, 25) == 1

    def test_count_validation(self):
        with pytest.raises(ValueError):
            stripe_count(-1, 25)
        with pytest.raises(ValueError):
            stripe_count(10, 0)

    def test_spans_cover_file_exactly(self):
        spans = stripe_spans(103, 25)
        assert spans[0].offset == 0
        assert spans[-1].end == 103
        assert sum(s.length for s in spans) == 103
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.offset

    def test_split_join_roundtrip(self):
        data = bytes(range(256)) * 3
        pieces = split_payload(data, 100)
        assert len(pieces) == stripe_count(len(data), 100)
        assert join_payload(pieces) == data

    def test_split_empty(self):
        assert split_payload(b"", 10) == []

    def test_stripe_key_shape(self):
        assert stripe_key(7, 3) == ("stripe", 7, 3)
        with pytest.raises(ValueError):
            stripe_key(7, -1)

    @given(st.binary(min_size=0, max_size=500),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_property_split_join_identity(self, data, stripe):
        assert join_payload(split_payload(data, stripe)) == data


class TestPaths:
    def test_normalize(self):
        assert normalize_path("/a/b/../c") == "/a/c"
        assert normalize_path("/a//b/") == "/a/b"
        assert normalize_path("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(PathError):
            normalize_path("a/b")
        with pytest.raises(PathError):
            normalize_path("")

    def test_dotdot_at_root_is_root(self):
        # POSIX: "/.." is "/" — normalization cannot escape the root.
        assert normalize_path("/../etc") == "/etc"
        assert normalize_path("/..") == "/"

    def test_parent(self):
        assert parent_dir("/a/b/c") == "/a/b"
        assert parent_dir("/a") == "/"


class TestFileMeta:
    def make(self, **kw):
        base = dict(path="/d/f", inode=9, size=1000, stripe_size=100,
                    n_stripes=10,
                    class_weights={"own": 0.0, "victim": 1.5e18},
                    class_members={"own": ["n0"], "victim": ["n1", "n2"]},
                    replication=2)
        base.update(kw)
        return FileMeta(**base)

    def test_roundtrip(self):
        meta = self.make()
        again = FileMeta.from_bytes(meta.to_bytes())
        assert again == meta

    def test_roundtrip_with_erasure(self):
        meta = self.make(replication=1, erasure=(4, 1))
        again = FileMeta.from_bytes(meta.to_bytes())
        assert again.erasure == (4, 1)

    def test_path_normalized(self):
        meta = self.make(path="/d//f")
        assert meta.path == "/d/f"

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(size=-1)
        with pytest.raises(ValueError):
            self.make(stripe_size=0)
        with pytest.raises(ValueError):
            self.make(replication=0)

    @given(st.integers(0, 10**12), st.integers(1, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_property_serialization_stable(self, size, stripe):
        meta = self.make(size=size, stripe_size=stripe,
                         n_stripes=stripe_count(size, stripe))
        assert FileMeta.from_bytes(meta.to_bytes()) == meta
