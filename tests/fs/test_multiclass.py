"""Dynamic multi-victim-class support (paper §III-B, §III-D).

The weighted class layer "can be generalized to an arbitrary number of
classes, allowing for multiple types of victim classes", and metadata
records the weights precisely "to support dynamic additions of subsequent
victim node classes".  These tests grow a deployment from own-only to two
victim classes at runtime and check that old placements survive.
"""

import pytest

from repro.cluster import build_das5
from repro.fs import ClassSpec, MemFSS, PlacementMap, ScavengingManager
from repro.hashing import calibrate_weights
from repro.store import StoreServer
from repro.units import GB


def build_rig(n_own=2, n_v1=3, n_v2=3):
    cluster = build_das5(n_nodes=n_own + n_v1 + n_v2)
    env = cluster.env
    res = cluster.reservations
    own = list(res.reserve("memfss", n_own).nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric, capacity=10 * GB)
               for n in own}
    policy = PlacementMap(
        {"own": ClassSpec(0.0, tuple(n.name for n in own))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy, stripe_size=64)
    t1 = res.reserve("tenant1", n_v1)
    t2 = res.reserve("tenant2", n_v2)
    res.enforce_scavenging(2 * GB)
    mgr = ScavengingManager(env, fs, res)
    return cluster, fs, mgr, own, list(t1.nodes), list(t2.nodes)


def run(cluster, gen):
    proc = cluster.env.process(gen)
    return cluster.env.run(until=proc)


class TestMultipleVictimClasses:
    def test_second_class_joins_at_runtime(self):
        cluster, fs, mgr, own, v1, v2 = build_rig()
        # Phase 1: scavenge the first tenant's nodes (50/50 split).
        w2 = calibrate_weights({"own": 0.5, "victim": 0.5})
        fs.policy = fs.policy.reweighted({"own": w2["own"]})
        mgr.scavenge(v1, 2 * GB, w2["victim"], class_name="victim")
        blobs = {}
        for i in range(10):
            blob = bytes((i * 31 + j) % 256 for j in range(640))
            blobs[f"/a{i}"] = blob
            run(cluster, fs.write_file(own[0], f"/a{i}", payload=blob))

        # Phase 2: a second tenant's nodes become available; rebalance to
        # a three-way split and scavenge them as a *new* class.
        w3 = calibrate_weights({"own": 0.4, "victim": 0.3, "victim2": 0.3},
                               samples=40_000, seed=11)
        fs.policy = fs.policy.reweighted(
            {"own": w3["own"], "victim": w3["victim"]})
        mgr.scavenge(v2, 2 * GB, w3["victim2"], class_name="victim2")
        assert set(fs.policy.class_names) == {"own", "victim", "victim2"}

        for i in range(10):
            blob = bytes((i * 7 + 3) % 256 for _ in range(640))
            blobs[f"/b{i}"] = blob
            run(cluster, fs.write_file(own[0], f"/b{i}", payload=blob))

        # Old files read back under their recorded (two-class) policy; new
        # files under the three-class policy.
        for path, blob in blobs.items():
            _, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_new_class_receives_data(self):
        cluster, fs, mgr, own, v1, v2 = build_rig()
        w3 = calibrate_weights({"own": 0.34, "victim": 0.33, "victim2": 0.33},
                               samples=40_000, seed=7)
        fs.policy = fs.policy.reweighted({"own": w3["own"]})
        mgr.scavenge(v1, 2 * GB, w3["victim"], class_name="victim")
        mgr.scavenge(v2, 2 * GB, w3["victim2"], class_name="victim2")
        for i in range(30):
            run(cluster, fs.write_file(own[0], f"/f{i}",
                                       payload=bytes(1280)))
        bytes_v2 = sum(fs.servers[n.name].kv.used_bytes for n in v2)
        assert bytes_v2 > 0

    def test_old_metadata_records_old_membership(self):
        cluster, fs, mgr, own, v1, v2 = build_rig()
        mgr.scavenge(v1, 2 * GB, 0.0, class_name="victim")
        run(cluster, fs.write_file(own[0], "/old", nbytes=640))
        mgr.scavenge(v2, 2 * GB, 0.0, class_name="victim2")
        run(cluster, fs.write_file(own[0], "/new", nbytes=640))
        old_meta = run(cluster, fs.stat(own[0], "/old"))
        new_meta = run(cluster, fs.stat(own[0], "/new"))
        assert "victim2" not in old_meta.class_weights
        assert "victim2" in new_meta.class_weights

    def test_evacuating_one_class_leaves_other_intact(self):
        cluster, fs, mgr, own, v1, v2 = build_rig()
        mgr.scavenge(v1, 2 * GB, 0.0, class_name="victim")
        mgr.scavenge(v2, 2 * GB, 0.0, class_name="victim2")
        blobs = {}
        for i in range(12):
            blob = bytes((i * 13 + 5) % 256 for _ in range(640))
            blobs[f"/f{i}"] = blob
            run(cluster, fs.write_file(own[0], f"/f{i}", payload=blob))
        # Withdraw one node of class victim2.
        run(cluster, mgr.withdraw(v2[0]))
        assert v2[0].name not in fs.policy.all_nodes
        assert set(fs.policy.class_names) == {"own", "victim", "victim2"}
        for path, blob in blobs.items():
            _, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path
