"""Shared rig for file-system tests: a small cluster with own + victim
stores and a MemFSS deployment."""

import pytest

from repro.cluster import build_das5
from repro.fs import ClassSpec, MemFSS, PlacementMap
from repro.hashing import own_victim_weights
from repro.store import AuthPolicy, StoreServer
from repro.units import GB


class Rig:
    def __init__(self, n_own=2, n_victim=3, alpha=0.5, stripe_size=64,
                 replication=1, erasure=None, password="pw",
                 write_window=4):
        self.cluster = build_das5(n_nodes=n_own + n_victim)
        self.env = self.cluster.env
        self.own = list(self.cluster.nodes[:n_own])
        self.victims = list(self.cluster.nodes[n_own:])
        auth = AuthPolicy(password, allowed_nodes=[n.name for n in self.own])
        self.servers = {}
        for node in self.own + self.victims:
            self.servers[node.name] = StoreServer(
                self.env, node, self.cluster.fabric, capacity=10 * GB,
                auth=auth, name=f"srv@{node.name}")
        weights = own_victim_weights(alpha)
        policy = PlacementMap({
            "own": ClassSpec(weights["own"],
                             tuple(n.name for n in self.own)),
            "victim": ClassSpec(weights["victim"],
                                tuple(n.name for n in self.victims)),
        })
        self.fs = MemFSS(self.env, self.cluster.fabric, self.own,
                         self.servers, policy, password=password,
                         stripe_size=stripe_size, replication=replication,
                         erasure=erasure, write_window=write_window)

    def run(self, gen):
        """Drive a generator to completion, return its value."""
        proc = self.env.process(gen)
        return self.env.run(until=proc)


@pytest.fixture
def rig():
    return Rig()


@pytest.fixture
def make_rig():
    return Rig
