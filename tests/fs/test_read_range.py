"""Tests for partial reads (read_range) and streaming task I/O."""

import pytest

from repro.fs import FileNotFound


class TestReadRange:
    def test_middle_range_payload(self, rig):
        data = bytes(range(256)) * 4  # 1024 B, 64 B stripes
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        n, piece = rig.run(rig.fs.read_range(rig.own[0], "/f", 100, 200))
        assert n == 200
        assert piece == data[100:300]

    def test_range_clamped_to_file_end(self, rig):
        data = bytes(100)
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        n, piece = rig.run(rig.fs.read_range(rig.own[0], "/f", 80, 1000))
        assert n == 20
        assert piece == data[80:]

    def test_range_beyond_eof_empty(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=bytes(10)))
        n, piece = rig.run(rig.fs.read_range(rig.own[0], "/f", 50, 10))
        assert n == 0
        assert piece == b""

    def test_size_only_mode(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=1000))
        n, piece = rig.run(rig.fs.read_range(rig.own[0], "/f", 0, 128))
        assert n == 128
        assert piece is None

    def test_only_covered_stripes_fetched(self, rig):
        """A range within one stripe costs one stripe GET, not the file."""
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=64 * 10))
        gets_before = sum(s.kv.gets for s in rig.servers.values())
        rig.run(rig.fs.read_range(rig.own[0], "/f", 0, 10))
        gets_after = sum(s.kv.gets for s in rig.servers.values())
        # 1 metadata GET + 1 stripe GET.
        assert gets_after - gets_before == 2

    def test_missing_file_raises(self, rig):
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_range(rig.own[0], "/ghost", 0, 10))

    def test_validation(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=10))
        with pytest.raises(ValueError):
            rig.run(rig.fs.read_range(rig.own[0], "/f", -1, 10))
        with pytest.raises(ValueError):
            rig.run(rig.fs.read_range(rig.own[0], "/f", 0, -1))

    def test_whole_file_via_ranges_matches(self, rig):
        data = bytes((i * 13) % 256 for i in range(777))
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        got = b""
        for off in range(0, 777, 100):
            _n, piece = rig.run(rig.fs.read_range(rig.own[0], "/f",
                                                  off, 100))
            got += piece
        assert got == data


class TestStreamingTasks:
    def test_io_slices_spreads_reads(self):
        from repro.cluster import build_das5
        from repro.fs import ClassSpec, MemFSS, PlacementMap
        from repro.store import StoreServer
        from repro.units import GB, MB
        from repro.workflows import (FileSpec, Task, Workflow,
                                     WorkflowEngine)

        cluster = build_das5(n_nodes=2)
        env = cluster.env
        own = list(cluster.nodes)
        servers = {n.name: StoreServer(env, n, cluster.fabric,
                                       capacity=8 * GB) for n in own}
        policy = PlacementMap(
            {"own": ClassSpec(0.0, tuple(n.name for n in own))})
        fs = MemFSS(env, cluster.fabric, own, servers, policy,
                    stripe_size=4 * MB)
        eng = WorkflowEngine(env, fs)
        wf = Workflow("stream", [
            Task(id="producer", stage="s0", compute_seconds=0.1,
                 outputs=(FileSpec("/in", 64 * MB),)),
            Task(id="consumer", stage="s1", compute_seconds=20.0,
                 inputs=(FileSpec("/in", 64 * MB),), io_slices=8),
        ])
        res = eng.execute(wf)
        assert res.tasks["consumer"].read_bytes == pytest.approx(64 * MB)
        # Compute dominates: duration >= 20 s despite interleaved reads.
        assert res.tasks["consumer"].duration >= 20.0

    def test_io_slices_validation(self):
        from repro.workflows import Task
        with pytest.raises(ValueError):
            Task(id="t", stage="s", io_slices=0)
