"""Capacity-aware write path: HRW chain spill under store pressure.

Covers the ledger/select_targets mechanics, end-to-end spill behavior
(data lands and reads back when individual stores fill up), honest
exhaustion (structured FULL instead of a bare traceback), the legacy
crash-on-full behavior behind ``capacity_guard=False``, and the
batch/scalar placement-equivalence property that makes spill
deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_das5
from repro.fs import (CapacityLedger, ClassSpec, MemFSS, PlacementMap,
                      pressure_stats, select_targets)
from repro.hashing import own_victim_weights
from repro.store import StoreError, StoreErrorCode, StoreServer
from repro.units import GB


@pytest.fixture(autouse=True)
def _reset_pressure():
    pressure_stats.reset()
    yield
    pressure_stats.reset()


def build_rig(cap_own=4096.0, cap_victim=4096.0, n_own=2, n_victim=3,
              alpha=0.5, stripe_size=64, replication=1, guard=True,
              write_window=4):
    cluster = build_das5(n_nodes=n_own + n_victim)
    env = cluster.env
    own = list(cluster.nodes[:n_own])
    victims = list(cluster.nodes[n_own:])
    servers = {}
    for node in own:
        servers[node.name] = StoreServer(env, node, cluster.fabric,
                                         capacity=cap_own,
                                         name=f"own@{node.name}")
    for node in victims:
        servers[node.name] = StoreServer(env, node, cluster.fabric,
                                         capacity=cap_victim,
                                         name=f"vic@{node.name}")
    weights = own_victim_weights(alpha)
    policy = PlacementMap({
        "own": ClassSpec(weights["own"], tuple(n.name for n in own)),
        "victim": ClassSpec(weights["victim"],
                            tuple(n.name for n in victims))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy,
                stripe_size=stripe_size, replication=replication,
                write_window=write_window, capacity_guard=guard)
    return cluster, fs, own


def run(cluster, gen):
    proc = cluster.env.process(gen)
    return cluster.env.run(until=proc)


class TestSelectTargets:
    CHAIN = ("a", "b", "c", "d")

    def test_picks_in_rank_order(self):
        usable = {"a": 100.0, "b": 100.0, "c": 100.0, "d": 100.0}
        targets, distance, short = select_targets(
            self.CHAIN, 50.0, 2, lambda n: usable[n])
        assert targets == ["a", "b"]
        assert distance == 0 and short == 0

    def test_skips_full_stores_and_counts_distance(self):
        usable = {"a": 10.0, "b": 100.0, "c": 10.0, "d": 100.0}
        targets, distance, short = select_targets(
            self.CHAIN, 50.0, 2, lambda n: usable[n])
        assert targets == ["b", "d"]
        # b is 1 below its ideal slot, d is 2 below its.
        assert distance == 3 and short == 0

    def test_shortfall_when_chain_exhausted(self):
        usable = {"a": 10.0, "b": 100.0, "c": 10.0, "d": 10.0}
        targets, distance, short = select_targets(
            self.CHAIN, 50.0, 3, lambda n: usable[n])
        assert targets == ["b"]
        assert short == 2

    def test_deterministic(self):
        usable = {"a": 10.0, "b": 60.0, "c": 55.0, "d": 0.0}
        first = select_targets(self.CHAIN, 50.0, 2, lambda n: usable[n])
        again = select_targets(self.CHAIN, 50.0, 2, lambda n: usable[n])
        assert first == again


class TestCapacityLedger:
    def test_usable_subtracts_inflight_and_overhead(self):
        cluster, fs, own = build_rig()
        (name, server), = list(fs.servers.items())[:1]
        base = ledger_usable = fs.ledger.usable(name)
        assert base == pytest.approx(server.free_space()
                                     - server.kv.key_overhead)
        cost = fs.ledger.reserve(name, 100.0)
        assert cost == pytest.approx(100.0 + server.kv.key_overhead)
        assert fs.ledger.usable(name) == pytest.approx(ledger_usable - cost)
        fs.ledger.release(name, cost)
        assert fs.ledger.usable(name) == pytest.approx(base)
        assert fs.ledger.inflight_bytes(name) == 0.0

    def test_unknown_store_never_admits(self):
        cluster, fs, own = build_rig()
        assert not fs.ledger.admits("no-such-store", 1.0)


class TestSpillEndToEnd:
    # Own stores hold metadata comfortably; the victim stores are tiny,
    # so victim-class stripes overflow onto own nodes through the chain.
    BIG_OWN = 256 * 1024.0
    TINY_VIC = 2048.0

    def test_spill_keeps_writes_landing_and_readable(self):
        cluster, fs, own = build_rig(cap_own=self.BIG_OWN,
                                     cap_victim=self.TINY_VIC)
        blobs = {}
        for i in range(20):
            blob = bytes((3 * i + j) % 256 for j in range(4096))
            run(cluster, fs.write_file(own[0], f"/f{i}", payload=blob))
            blobs[f"/f{i}"] = blob
        assert pressure_stats.spilled_writes > 0
        assert pressure_stats.spill_distance >= pressure_stats.spilled_writes
        assert pressure_stats.exhausted_writes == 0
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_guard_off_reproduces_crash_on_full(self):
        cluster, fs, own = build_rig(cap_own=self.BIG_OWN,
                                     cap_victim=self.TINY_VIC, guard=False)
        with pytest.raises(StoreError) as ei:
            for i in range(20):
                run(cluster, fs.write_file(own[0], f"/f{i}",
                                           payload=bytes(4096)))
        assert ei.value.code is StoreErrorCode.FULL
        assert pressure_stats.writes_checked == 0

    def test_exhaustion_is_structured_full(self):
        # A stripe bigger than any store: the whole chain refuses, so the
        # guarded path raises a structured FULL before touching a server.
        cluster, fs, own = build_rig(cap_own=2048.0, cap_victim=2048.0,
                                     stripe_size=4096)
        with pytest.raises(StoreError) as ei:
            run(cluster, fs.write_file(own[0], "/big",
                                       payload=bytes(4096)))
        assert ei.value.code is StoreErrorCode.FULL
        assert ei.value.details["requested_bytes"] == 4096.0
        assert ei.value.details["chain"]
        assert pressure_stats.exhausted_writes == 1

    def test_fill_to_the_brim_still_full_not_traceback(self):
        # Even when metadata itself runs out of room, the failure surfaces
        # as a typed FULL with structured details — never a bare crash.
        cluster, fs, own = build_rig(cap_own=16 * 1024.0,
                                     cap_victim=self.TINY_VIC)
        with pytest.raises(StoreError) as ei:
            for i in range(40):
                run(cluster, fs.write_file(own[0], f"/f{i}",
                                           payload=bytes(4096)))
        assert ei.value.code is StoreErrorCode.FULL
        assert "requested_bytes" in ei.value.details
        assert pressure_stats.spilled_writes > 0

    def test_unpressured_placement_is_identical(self):
        # With room everywhere the guard must not move a single stripe.
        def keys_by_server(guard):
            cluster, fs, own = build_rig(cap_own=10 * GB,
                                         cap_victim=10 * GB, guard=guard)
            for i in range(10):
                run(cluster, fs.write_file(own[0], f"/f{i}",
                                           payload=bytes(256)))
            return {name: sorted(map(repr, server.kv.keys()))
                    for name, server in fs.servers.items()}

        assert keys_by_server(True) == keys_by_server(False)

    def test_replicated_spill_keeps_replica_count(self):
        cluster, fs, own = build_rig(cap_own=self.BIG_OWN,
                                     cap_victim=self.TINY_VIC,
                                     replication=2, n_victim=4)
        for i in range(12):
            run(cluster, fs.write_file(own[0], f"/f{i}",
                                       payload=bytes(4096)))
        assert pressure_stats.replica_shortfall == 0
        for i in range(12):
            _n, back = run(cluster, fs.read_file(own[0], f"/f{i}"))
            assert back == bytes(4096)


class TestBatchScalarEquivalence:
    """Spill placement is a pure function of (plan chain, capacity map);
    the batch and scalar placement paths must agree on the chain."""

    POLICY = PlacementMap({
        "own": ClassSpec(2.0, ("n0", "n1", "n2")),
        "victim": ClassSpec(1.0, ("n3", "n4", "n5", "n6"))})

    @settings(max_examples=60, deadline=None)
    @given(inode=st.integers(0, 10_000), n=st.integers(1, 8))
    def test_chain_matches_ranked(self, inode, n):
        plan = self.POLICY.plan_file(inode, n)
        for idx in range(len(plan.keys)):
            assert plan.chain(idx) == self.POLICY.ranked(plan.keys[idx])

    @settings(max_examples=60, deadline=None)
    @given(inode=st.integers(0, 10_000), n=st.integers(1, 4),
           k=st.integers(1, 3), data=st.data())
    def test_spill_identical_on_both_paths(self, inode, n, k, data):
        plan = self.POLICY.plan_file(inode, n)
        nodes = self.POLICY.all_nodes
        budgets = data.draw(st.fixed_dictionaries(
            {name: st.floats(0.0, 200.0, allow_nan=False)
             for name in nodes}))
        nbytes = data.draw(st.floats(1.0, 150.0, allow_nan=False))
        for idx in range(len(plan.keys)):
            batch = select_targets(plan.chain(idx), nbytes, k,
                                   lambda t: budgets[t])
            scalar = select_targets(self.POLICY.ranked(plan.keys[idx]),
                                    nbytes, k, lambda t: budgets[t])
            assert batch == scalar
            targets, distance, short = batch
            assert len(targets) + short == k
            assert all(budgets[t] >= nbytes for t in targets)
