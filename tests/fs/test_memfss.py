"""Functional tests for MemFSS: real bytes through the simulated fabric."""

import pytest

from repro.fs import FileExists, FileNotFound, FsError, NotADir
from repro.fs.memfss import _REGISTRY_KEY


class TestWriteRead:
    def test_roundtrip_multi_stripe(self, rig):
        data = bytes(range(256)) * 10  # 2560 B over 64 B stripes = 40
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        size, back = rig.run(rig.fs.read_file(rig.own[0], "/f"))
        assert size == len(data)
        assert back == data

    def test_roundtrip_size_only(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=1000))
        size, back = rig.run(rig.fs.read_file(rig.own[1], "/f"))
        assert size == 1000
        assert back is None

    def test_empty_file(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/empty", payload=b""))
        size, back = rig.run(rig.fs.read_file(rig.own[0], "/empty"))
        assert size == 0
        assert back == b""

    def test_read_missing_raises(self, rig):
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_file(rig.own[0], "/nope"))

    def test_read_from_other_own_node(self, rig):
        data = b"cross-node" * 50
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        _, back = rig.run(rig.fs.read_file(rig.own[1], "/f"))
        assert back == data

    def test_victim_node_cannot_mount(self, rig):
        with pytest.raises(FsError):
            rig.fs.client(rig.victims[0])

    def test_stripes_split_between_classes(self, rig):
        for i in range(20):
            rig.run(rig.fs.write_file(rig.own[0], f"/f{i}",
                                      payload=bytes(640)))
        own_bytes = sum(rig.servers[n.name].kv.bytes_in for n in rig.own)
        vic_bytes = sum(rig.servers[n.name].kv.bytes_in for n in rig.victims)
        assert own_bytes > 0
        assert vic_bytes > 0

    def test_stat_reports_metadata(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=1000))
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        assert meta.size == 1000
        assert meta.n_stripes == 16  # ceil(1000/64)
        assert set(meta.class_weights) == {"own", "victim"}

    def test_io_counters(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=500))
        rig.run(rig.fs.read_file(rig.own[0], "/f"))
        assert rig.fs.bytes_written == 500
        assert rig.fs.bytes_read == 500
        assert rig.fs.files_created == 1

    def test_write_validation(self, rig):
        with pytest.raises(ValueError):
            rig.run(rig.fs.write_file(rig.own[0], "/f"))
        with pytest.raises(ValueError):
            rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=-1))


class TestNamespace:
    def test_mkdir_listdir(self, rig):
        rig.run(rig.fs.mkdir(rig.own[0], "/data"))
        rig.run(rig.fs.write_file(rig.own[0], "/data/a", nbytes=10))
        rig.run(rig.fs.write_file(rig.own[0], "/data/b", nbytes=10))
        entries = rig.run(rig.fs.listdir(rig.own[0], "/data"))
        assert entries == ["a", "b"]
        root = rig.run(rig.fs.listdir(rig.own[0], "/"))
        assert "data/" in root

    def test_mkdir_missing_parent_raises(self, rig):
        with pytest.raises(NotADir):
            rig.run(rig.fs.mkdir(rig.own[0], "/a/b/c"))

    def test_nested_mkdir(self, rig):
        rig.run(rig.fs.mkdir(rig.own[0], "/a"))
        rig.run(rig.fs.mkdir(rig.own[0], "/a/b"))
        assert rig.run(rig.fs.listdir(rig.own[0], "/a")) == ["b/"]

    def test_unlink_removes_everything(self, rig):
        data = bytes(1280)
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        used_before = rig.fs.used_bytes()
        released = rig.run(rig.fs.unlink(rig.own[0], "/f"))
        assert released == len(data)
        assert rig.fs.used_bytes() < used_before
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_file(rig.own[0], "/f"))
        assert "f" not in rig.run(rig.fs.listdir(rig.own[0], "/"))

    def test_unlink_missing_raises(self, rig):
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.unlink(rig.own[0], "/ghost"))

    def test_rename_keeps_data_without_moving_stripes(self, rig):
        data = b"stay-put" * 100
        rig.run(rig.fs.write_file(rig.own[0], "/old", payload=data))
        puts_before = sum(s.kv.puts for s in rig.servers.values())
        rig.run(rig.fs.rename(rig.own[0], "/old", "/new"))
        _, back = rig.run(rig.fs.read_file(rig.own[0], "/new"))
        assert back == data
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_file(rig.own[0], "/old"))
        # Only one metadata put, no stripe puts.
        puts_after = sum(s.kv.puts for s in rig.servers.values())
        assert puts_after - puts_before == 1

    def test_registry_tracks_files(self, rig):
        rig.run(rig.fs.write_file(rig.own[0], "/a", nbytes=1))
        rig.run(rig.fs.write_file(rig.own[0], "/b", nbytes=1))
        assert rig.run(rig.fs.list_all_files(rig.own[0])) == ["/a", "/b"]
        rig.run(rig.fs.unlink(rig.own[0], "/a"))
        assert rig.run(rig.fs.list_all_files(rig.own[0])) == ["/b"]

    def test_exists(self, rig):
        assert rig.run(rig.fs.exists(rig.own[0], "/f")) is False
        rig.run(rig.fs.write_file(rig.own[0], "/f", nbytes=1))
        assert rig.run(rig.fs.exists(rig.own[0], "/f")) is True


class TestMetadataPlacement:
    def test_metadata_lives_on_own_nodes_only(self, rig):
        for i in range(10):
            rig.run(rig.fs.write_file(rig.own[0], f"/f{i}", nbytes=100))
        for victim in rig.victims:
            kv = rig.servers[victim.name].kv
            meta_keys = [k for k in kv.keys()
                         if isinstance(k, tuple)
                         and k[0] in ("filemeta", "dirents", "allfiles")]
            assert meta_keys == []

    def test_metadata_spread_by_modulo(self, rig):
        for i in range(40):
            rig.run(rig.fs.write_file(rig.own[0], f"/f{i}", nbytes=10))
        per_own = [sum(1 for k in rig.servers[n.name].kv.keys()
                       if isinstance(k, tuple) and k[0] == "filemeta")
                   for n in rig.own]
        assert all(c > 0 for c in per_own)
        assert sum(per_own) == 40


class TestReplication:
    def test_replicated_stripes_on_two_nodes(self, make_rig):
        rig = make_rig(replication=2)
        data = bytes(640)
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        # Every stripe key must exist on exactly 2 servers.
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        from repro.fs import stripe_key
        for i in range(meta.n_stripes):
            holders = [n for n, s in rig.servers.items()
                       if stripe_key(meta.inode, i) in s.kv]
            assert len(holders) == 2

    def test_read_survives_primary_loss(self, make_rig):
        rig = make_rig(replication=2)
        data = b"replicated" * 64
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        # Wipe each stripe's primary copy.
        from repro.fs import PlacementMap, stripe_key
        policy = PlacementMap.from_meta(meta)
        for i in range(meta.n_stripes):
            key = stripe_key(meta.inode, i)
            primary = policy.place(key)
            rig.servers[primary].kv.delete(key)
        _, back = rig.run(rig.fs.read_file(rig.own[0], "/f"))
        assert back == data

    def test_unreplicated_loss_raises(self, rig):
        data = bytes(128)
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        from repro.fs import PlacementMap, stripe_key
        policy = PlacementMap.from_meta(meta)
        key = stripe_key(meta.inode, 0)
        rig.servers[policy.place(key)].kv.delete(key)
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_file(rig.own[0], "/f"))


class TestErasure:
    def test_parity_written(self, make_rig):
        rig = make_rig(erasure=(4, 1))
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=bytes(640)))
        parity_keys = [k for s in rig.servers.values() for k in s.kv.keys()
                       if isinstance(k, tuple) and k[0] == "parity"]
        # 640 B / 64 B = 10 stripes -> 3 groups of <=4 -> 3 parity stripes.
        assert len(parity_keys) == 3

    def test_reconstruct_lost_stripe(self, make_rig):
        rig = make_rig(erasure=(4, 1))
        data = bytes((i * 37) % 256 for i in range(640))
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=data))
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        from repro.fs import PlacementMap, stripe_key
        policy = PlacementMap.from_meta(meta)
        key = stripe_key(meta.inode, 5)
        rig.servers[policy.place(key)].kv.delete(key)
        _, back = rig.run(rig.fs.read_file(rig.own[0], "/f"))
        assert back == data

    def test_double_loss_in_group_fails(self, make_rig):
        rig = make_rig(erasure=(4, 1))
        rig.run(rig.fs.write_file(rig.own[0], "/f", payload=bytes(640)))
        meta = rig.run(rig.fs.stat(rig.own[0], "/f"))
        from repro.fs import PlacementMap, stripe_key
        policy = PlacementMap.from_meta(meta)
        for idx in (0, 1):  # same parity group
            key = stripe_key(meta.inode, idx)
            rig.servers[policy.place(key)].kv.delete(key)
        with pytest.raises(FileNotFound):
            rig.run(rig.fs.read_file(rig.own[0], "/f"))

    def test_erasure_and_replication_exclusive(self, make_rig):
        with pytest.raises(ValueError):
            make_rig(replication=2, erasure=(4, 1))
