"""Tests for the two-layer placement policy."""

import collections

import pytest

from repro.fs import ClassSpec, FileMeta, PlacementMap
from repro.hashing import MIX64, own_victim_weights


def make_policy(alpha=0.5, n_own=2, n_victim=4):
    w = own_victim_weights(alpha)
    return PlacementMap({
        "own": ClassSpec(w["own"], tuple(f"own{i}" for i in range(n_own))),
        "victim": ClassSpec(w["victim"],
                            tuple(f"vic{i}" for i in range(n_victim))),
    })


class TestConstruction:
    def test_rejects_shared_nodes(self):
        with pytest.raises(ValueError):
            PlacementMap({
                "a": ClassSpec(0.0, ("x",)),
                "b": ClassSpec(0.0, ("x",)),
            })

    def test_rejects_all_empty(self):
        with pytest.raises(ValueError):
            PlacementMap({"a": ClassSpec(0.0, ())})

    def test_rejects_no_classes(self):
        with pytest.raises(ValueError):
            PlacementMap({})

    def test_empty_class_allowed_if_another_has_nodes(self):
        p = PlacementMap({
            "a": ClassSpec(0.0, ("x",)),
            "b": ClassSpec(0.0, ()),
        })
        assert p.place("k") == "x"


class TestPlacement:
    def test_deterministic(self):
        p = make_policy()
        keys = [("stripe", i, j) for i in range(20) for j in range(5)]
        assert [p.place(k) for k in keys] == [p.place(k) for k in keys]

    def test_respects_alpha_fraction(self):
        p = make_policy(alpha=0.25)
        counts = collections.Counter(
            "own" if p.place(("stripe", i, 0)).startswith("own") else "victim"
            for i in range(8000))
        assert counts["own"] / 8000 == pytest.approx(0.25, abs=0.03)

    def test_uniform_within_class(self):
        p = make_policy(alpha=0.0, n_victim=4)  # everything to victims
        counts = collections.Counter(p.place(("stripe", i, 0))
                                     for i in range(8000))
        for node, c in counts.items():
            assert node.startswith("vic")
            assert c == pytest.approx(2000, rel=0.15)

    def test_alpha_one_starves_victims(self):
        p = make_policy(alpha=1.0)
        assert all(p.place(("s", i)).startswith("own") for i in range(500))

    def test_ranked_spills_into_next_class(self):
        p = make_policy(alpha=0.5, n_own=2, n_victim=3)
        chain = p.ranked("some-key")
        assert len(chain) == 5
        # First block is the winning class's nodes.
        win = p.class_of("some-key")
        prefix = 2 if win == "own" else 3
        assert all(n.startswith("own" if win == "own" else "vic")
                   for n in chain[:prefix])

    def test_ranked_k_prefix(self):
        p = make_policy()
        assert p.ranked("k", k=3) == p.ranked("k")[:3]


class TestMetaRoundTrip:
    def test_snapshot_reconstruction_identical_placement(self):
        p = make_policy(alpha=0.25)
        weights, members = p.snapshot()
        meta = FileMeta(path="/f", inode=1, size=1000, stripe_size=10,
                        n_stripes=100, class_weights=weights,
                        class_members=members)
        q = PlacementMap.from_meta(meta)
        keys = [("stripe", 1, i) for i in range(200)]
        assert [p.place(k) for k in keys] == [q.place(k) for k in keys]

    def test_old_files_keep_placement_after_policy_change(self):
        """The point of storing weights in metadata (§III-D): dynamic class
        changes must not invalidate old placements."""
        p = make_policy(alpha=0.5)
        weights, members = p.snapshot()
        meta = FileMeta(path="/f", inode=1, size=100, stripe_size=10,
                        n_stripes=10, class_weights=weights,
                        class_members=members)
        p2 = p.with_class("victim2", 0.0, ("w0", "w1"))
        del p2  # current policy changed; recorded policy still works
        q = PlacementMap.from_meta(meta)
        keys = [("stripe", 1, i) for i in range(10)]
        assert [q.place(k) for k in keys] == [p.place(k) for k in keys]


class TestEvolution:
    def test_with_class_adds(self):
        p = make_policy()
        p2 = p.with_class("victim2", 123.0, ("w0",))
        assert "victim2" in p2.class_names
        assert "victim2" not in p.class_names

    def test_without_class(self):
        p = make_policy()
        p2 = p.without_class("victim")
        assert p2.class_names == ("own",)
        with pytest.raises(KeyError):
            p.without_class("nope")

    def test_without_node_minimal_disruption(self):
        p = make_policy(alpha=0.0, n_victim=5)
        p2 = p.without_node("vic0")
        keys = [("s", i) for i in range(3000)]
        for k in keys:
            if p.place(k) != "vic0":
                assert p2.place(k) == p.place(k)

    def test_without_node_unknown(self):
        with pytest.raises(KeyError):
            make_policy().without_node("zzz")

    def test_reweighted(self):
        p = make_policy(alpha=0.5)
        p2 = p.reweighted({"victim": float(MIX64.modulus)})
        assert all(p2.place(("s", i)).startswith("own") for i in range(200))
