"""Tests for fraction -> weight calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (MIX64, TR98, achieved_fractions, calibrate_weights,
                           own_victim_weights, two_class_weights)


class TestTwoClassWeights:
    def test_half_is_unweighted(self):
        w1, w2 = two_class_weights(0.5)
        assert w1 == pytest.approx(0.0)
        assert w2 == pytest.approx(0.0)

    def test_zero_fraction_starves_first(self):
        w1, w2 = two_class_weights(0.0)
        assert w1 == pytest.approx(float(MIX64.modulus))
        assert w2 == 0.0

    def test_one_fraction_starves_second(self):
        w1, w2 = two_class_weights(1.0)
        assert w1 == 0.0
        assert w2 == pytest.approx(float(MIX64.modulus))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            two_class_weights(1.5)
        with pytest.raises(ValueError):
            two_class_weights(-0.1)

    @pytest.mark.parametrize("alpha", [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
    def test_achieved_fraction_matches_target(self, alpha):
        weights = own_victim_weights(alpha)
        got = achieved_fractions(weights, samples=100_000)
        assert got["own"] == pytest.approx(alpha, abs=0.01)

    @pytest.mark.parametrize("alpha", [0.25, 0.5])
    def test_tr98_family_also_calibrates(self, alpha):
        weights = own_victim_weights(alpha, family=TR98)
        got = achieved_fractions(weights, family=TR98, samples=100_000)
        assert got["own"] == pytest.approx(alpha, abs=0.015)

    @given(st.floats(min_value=0.02, max_value=0.98))
    @settings(max_examples=15, deadline=None)
    def test_property_fraction_round_trip(self, alpha):
        weights = own_victim_weights(alpha)
        got = achieved_fractions(weights, samples=60_000)
        assert got["own"] == pytest.approx(alpha, abs=0.02)

    def test_monotone_more_weight_less_data(self):
        fracs = []
        for alpha in (0.2, 0.4, 0.6, 0.8):
            w = own_victim_weights(alpha)
            fracs.append(achieved_fractions(w, samples=50_000)["own"])
        assert fracs == sorted(fracs)


class TestCalibrateWeights:
    def test_two_class_delegates_to_closed_form(self):
        w = calibrate_weights({"own": 0.25, "victim": 0.75})
        expect = two_class_weights(0.25)
        assert w["own"] == pytest.approx(expect[0])
        assert w["victim"] == pytest.approx(expect[1])

    def test_three_classes_converge(self):
        targets = {"own": 0.5, "victim1": 0.3, "victim2": 0.2}
        w = calibrate_weights(targets, samples=80_000, seed=7)
        got = achieved_fractions(w, samples=200_000, seed=99)
        for c, f in targets.items():
            assert got[c] == pytest.approx(f, abs=0.03)

    def test_four_classes_converge(self):
        targets = {"own": 0.4, "v1": 0.3, "v2": 0.2, "v3": 0.1}
        w = calibrate_weights(targets, samples=80_000, seed=3)
        got = achieved_fractions(w, samples=200_000, seed=42)
        for c, f in targets.items():
            assert got[c] == pytest.approx(f, abs=0.035)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_weights({"a": 0.5, "b": 0.6})
        with pytest.raises(ValueError):
            calibrate_weights({"a": 1.0})
        with pytest.raises(ValueError):
            calibrate_weights({"a": 1.2, "b": -0.2})

    def test_deterministic(self):
        targets = {"own": 0.5, "v1": 0.25, "v2": 0.25}
        w1 = calibrate_weights(targets, samples=40_000, seed=5)
        w2 = calibrate_weights(targets, samples=40_000, seed=5)
        assert w1 == w2
