"""Tests for the consistent-hashing baseline and modulo metadata placer."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing, ModuloPlacer


class TestConsistentHashRing:
    def test_placement_deterministic(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(6)])
        assert all(ring.place(f"k{i}") == ring.place(f"k{i}")
                   for i in range(100))

    def test_roughly_uniform_with_many_vnodes(self):
        nodes = [f"n{i}" for i in range(5)]
        ring = ConsistentHashRing(nodes, vnodes=256)
        counts = collections.Counter(ring.place(f"k{i}") for i in range(10_000))
        for n in nodes:
            assert counts[n] == pytest.approx(2000, rel=0.25)

    def test_weighted_nodes_take_proportional_share(self):
        ring = ConsistentHashRing(["big", "small"], vnodes=256,
                                  weights={"big": 3.0, "small": 1.0})
        counts = collections.Counter(ring.place(f"k{i}") for i in range(8000))
        ratio = counts["big"] / counts["small"]
        assert ratio == pytest.approx(3.0, rel=0.35)

    def test_remove_node_disruption_bounded(self):
        nodes = [f"n{i}" for i in range(8)]
        ring = ConsistentHashRing(nodes, vnodes=128)
        keys = [f"k{i}" for i in range(4000)]
        before = {k: ring.place(k) for k in keys}
        ring.remove_node("n0")
        moved = sum(1 for k in keys if ring.place(k) != before[k])
        # Only keys owned by n0 move (~1/8 of them).
        owned = sum(1 for k in keys if before[k] == "n0")
        assert moved == owned

    def test_add_node_takes_share(self):
        nodes = [f"n{i}" for i in range(7)]
        ring = ConsistentHashRing(nodes, vnodes=128)
        keys = [f"k{i}" for i in range(4000)]
        before = {k: ring.place(k) for k in keys}
        ring.add_node("new")
        moved = [k for k in keys if ring.place(k) != before[k]]
        assert all(ring.place(k) == "new" for k in moved)
        assert len(moved) == pytest.approx(500, rel=0.4)

    def test_replicas_distinct(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(6)], vnodes=64)
        reps = ring.replicas("some-key", 3)
        assert len(reps) == 3
        assert len(set(reps)) == 3
        assert reps[0] == ring.place("some-key")

    def test_replicas_capped_at_node_count(self):
        ring = ConsistentHashRing(["a", "b"], vnodes=16)
        assert len(ring.replicas("k", 5)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], vnodes=0)
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(KeyError):
            ring.remove_node("zzz")
        with pytest.raises(ValueError):
            ring.replicas("k", 0)


class TestModuloPlacer:
    def test_deterministic_and_member(self):
        nodes = [f"n{i}" for i in range(4)]
        p = ModuloPlacer(nodes)
        for i in range(100):
            assert p.place(f"meta-{i}") in nodes
            assert p.place(f"meta-{i}") == p.place(f"meta-{i}")

    def test_roughly_uniform(self):
        nodes = [f"n{i}" for i in range(4)]
        p = ModuloPlacer(nodes)
        counts = collections.Counter(p.place(f"m{i}") for i in range(4000))
        for n in nodes:
            assert counts[n] == pytest.approx(1000, rel=0.15)

    def test_replicas_distinct_and_wrap(self):
        p = ModuloPlacer(["a", "b", "c"])
        reps = p.replicas("key", 3)
        assert sorted(reps) == ["a", "b", "c"]
        assert reps[0] == p.place("key")

    def test_replicas_capped(self):
        p = ModuloPlacer(["a", "b"])
        assert len(p.replicas("k", 10)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ModuloPlacer([])
        with pytest.raises(ValueError):
            ModuloPlacer(["a", "a"])
        with pytest.raises(ValueError):
            ModuloPlacer(["a"]).replicas("k", 0)

    @given(st.text(min_size=1, max_size=16), st.integers(2, 10))
    @settings(max_examples=50, deadline=None)
    def test_property_place_in_nodes(self, key, n):
        nodes = [f"n{i}" for i in range(n)]
        assert ModuloPlacer(nodes).place(key) in nodes
