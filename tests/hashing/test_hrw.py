"""Unit + property tests for HRW hashing."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (HashFamily, HrwHasher, MIX64, TR98,
                           WeightedClassHrw, hash_mix64, hash_tr98,
                           stable_digest)


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest("abc") == stable_digest("abc")

    def test_distinct_inputs_distinct_digests(self):
        vals = [stable_digest(f"key-{i}") for i in range(1000)]
        assert len(set(vals)) == 1000

    def test_bytes_and_str_supported(self):
        assert isinstance(stable_digest(b"\x00\x01"), int)
        assert isinstance(stable_digest(("a", 1)), int)

    def test_known_stability(self):
        # Pin a value: placement must never silently change across versions,
        # because stripe locations are persisted in metadata.
        assert stable_digest("stripe-0") == stable_digest("stripe-0")
        assert stable_digest("a") != stable_digest("b")


class TestHashFunctions:
    def test_mix64_range(self):
        for i in range(100):
            v = hash_mix64(stable_digest(f"s{i}"), stable_digest(f"k{i}"))
            assert 0 <= v < 2**64

    def test_tr98_range(self):
        for i in range(100):
            v = hash_tr98(i * 977, i * 31 + 7)
            assert 0 <= v < 2**31

    def test_batch_matches_scalar_mix64(self):
        seeds = stable_digest("node-3")
        digests = np.array([stable_digest(f"k{i}") for i in range(50)],
                           dtype=np.uint64)
        batch = MIX64.batch(seeds, digests)
        scalar = [hash_mix64(seeds, int(d)) for d in digests]
        assert batch.tolist() == scalar

    def test_batch_matches_scalar_tr98(self):
        seed = stable_digest("node-3")
        digests = np.array([stable_digest(f"k{i}") for i in range(50)],
                           dtype=np.uint64)
        batch = TR98.batch(seed, digests)
        scalar = [hash_tr98(seed, int(d)) for d in digests]
        assert batch.tolist() == scalar


class TestHrwHasher:
    def test_placement_deterministic(self):
        h = HrwHasher([f"n{i}" for i in range(8)])
        assert all(h.place(f"k{i}") == h.place(f"k{i}") for i in range(100))

    def test_placement_roughly_uniform(self):
        nodes = [f"n{i}" for i in range(8)]
        h = HrwHasher(nodes)
        counts = collections.Counter(h.place(f"key-{i}") for i in range(8000))
        for n in nodes:
            assert counts[n] == pytest.approx(1000, rel=0.15)

    def test_ranked_first_equals_place(self):
        h = HrwHasher([f"n{i}" for i in range(8)])
        for i in range(50):
            assert h.ranked(f"k{i}")[0] == h.place(f"k{i}")

    def test_ranked_returns_all_distinct(self):
        h = HrwHasher([f"n{i}" for i in range(8)])
        r = h.ranked("some-key")
        assert sorted(r) == sorted(h.nodes)

    def test_ranked_k_prefix(self):
        h = HrwHasher([f"n{i}" for i in range(8)])
        assert h.ranked("k", k=3) == h.ranked("k")[:3]

    def test_minimal_disruption_on_node_removal(self):
        """HRW invariant: removing a node only remaps the keys it held."""
        nodes = [f"n{i}" for i in range(10)]
        h_full = HrwHasher(nodes)
        h_less = h_full.with_nodes(nodes[:-1])
        keys = [f"key-{i}" for i in range(3000)]
        for k in keys:
            before = h_full.place(k)
            after = h_less.place(k)
            if before != nodes[-1]:
                assert after == before
            else:
                assert after != nodes[-1]

    def test_minimal_disruption_on_node_addition(self):
        nodes = [f"n{i}" for i in range(9)]
        h_small = HrwHasher(nodes)
        h_big = h_small.with_nodes(nodes + ["n9"])
        moved = 0
        keys = [f"key-{i}" for i in range(3000)]
        for k in keys:
            if h_small.place(k) != h_big.place(k):
                assert h_big.place(k) == "n9"
                moved += 1
        # Expect about 1/10 of keys to move to the new node.
        assert moved == pytest.approx(300, rel=0.25)

    def test_removed_node_promotes_second_ranked(self):
        """Lazy-lookup property used in §V-C: when the winner disappears the
        key is found at the next node in the rank list."""
        nodes = [f"n{i}" for i in range(6)]
        h = HrwHasher(nodes)
        for i in range(200):
            key = f"k{i}"
            first, second = h.ranked(key, k=2)
            survivors = [n for n in nodes if n != first]
            assert h.with_nodes(survivors).place(key) == second

    def test_batch_matches_scalar_placement(self):
        nodes = [f"n{i}" for i in range(7)]
        h = HrwHasher(nodes)
        keys = [f"key-{i}" for i in range(200)]
        digests = np.array([stable_digest(k) for k in keys], dtype=np.uint64)
        idx = h.place_batch(digests)
        assert [nodes[i] for i in idx] == [h.place(k) for k in keys]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            HrwHasher([])
        with pytest.raises(ValueError):
            HrwHasher(["a", "a"])

    def test_single_node_gets_everything(self):
        h = HrwHasher(["only"])
        assert all(h.place(f"k{i}") == "only" for i in range(20))

    @given(st.integers(min_value=2, max_value=12),
           st.text(min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_property_place_is_in_nodes(self, n, key):
        h = HrwHasher([f"n{i}" for i in range(n)])
        assert h.place(key) in h.nodes

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=40,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_property_disruption_bound(self, keys):
        """Property: over any key set, removing 1 of 5 nodes remaps only keys
        owned by the removed node."""
        nodes = [f"n{i}" for i in range(5)]
        h = HrwHasher(nodes)
        h2 = h.with_nodes(nodes[1:])
        for k in keys:
            if h.place(k) != nodes[0]:
                assert h2.place(k) == h.place(k)


class TestWeightedClassHrw:
    def test_zero_weights_equal_split(self):
        layer = WeightedClassHrw({"a": 0.0, "b": 0.0})
        counts = collections.Counter(
            layer.choose_class(f"k{i}") for i in range(4000))
        assert counts["a"] == pytest.approx(2000, rel=0.1)

    def test_heavier_weight_gets_less(self):
        m = MIX64.modulus
        layer = WeightedClassHrw({"own": 0.0, "victim": 0.5 * m})
        counts = collections.Counter(
            layer.choose_class(f"k{i}") for i in range(4000))
        assert counts["own"] > counts["victim"]

    def test_full_weight_starves_class(self):
        m = MIX64.modulus
        layer = WeightedClassHrw({"own": 0.0, "victim": float(m)})
        assert all(layer.choose_class(f"k{i}") == "own" for i in range(500))

    def test_batch_matches_scalar(self):
        m = MIX64.modulus
        layer = WeightedClassHrw({"own": 0.0, "victim": 0.3 * m})
        keys = [f"key-{i}" for i in range(300)]
        digests = np.array([stable_digest(k) for k in keys], dtype=np.uint64)
        idx = layer.choose_batch(digests)
        got = [layer.classes[i] for i in idx]
        assert got == [layer.choose_class(k) for k in keys]

    def test_with_class_adds_dynamically(self):
        layer = WeightedClassHrw({"own": 0.0, "victim": 0.0})
        bigger = layer.with_class("victim2", 0.0)
        assert set(bigger.classes) == {"own", "victim", "victim2"}
        # Original untouched.
        assert set(layer.classes) == {"own", "victim"}

    def test_without_class(self):
        layer = WeightedClassHrw({"own": 0.0, "victim": 0.0})
        smaller = layer.without_class("victim")
        assert smaller.classes == ("own",)
        with pytest.raises(ValueError):
            smaller.without_class("own")

    def test_weight_bounds_validated(self):
        with pytest.raises(ValueError):
            WeightedClassHrw({"a": -1.0, "b": 0.0})
        with pytest.raises(ValueError):
            WeightedClassHrw({"a": float(MIX64.modulus) * 2, "b": 0.0})
        with pytest.raises(ValueError):
            WeightedClassHrw({})

    def test_dynamic_class_minimal_disruption(self):
        """Adding a new (victim2) class only steals keys, never reshuffles
        keys between the existing classes."""
        base = WeightedClassHrw({"own": 0.0, "victim": 0.0})
        grown = base.with_class("victim2", 0.0)
        for i in range(2000):
            k = f"key-{i}"
            if grown.choose_class(k) != "victim2":
                assert grown.choose_class(k) == base.choose_class(k)


class TestBatchResolution:
    """The vectorized callables behind the batch-first planner."""

    def test_custom_family_batch_falls_back_to_scalar(self):
        """A family without a vectorized callable must still batch (via the
        scalar loop), not raise mid-run."""
        fam = HashFamily("myfam", lambda s, d: (s * 31 + d) % 1009, 1009)
        digests = np.arange(20, dtype=np.uint64)
        out = fam.batch(7, digests)
        assert out.tolist() == [(7 * 31 + d) % 1009 for d in range(20)]

    def test_custom_family_drives_hasher(self):
        fam = HashFamily("myfam", lambda s, d: (s ^ d) % 1009, 1009)
        h = HrwHasher([f"n{i}" for i in range(5)], fam)
        keys = [f"k{i}" for i in range(50)]
        digests = np.array([stable_digest(k) for k in keys], dtype=np.uint64)
        idx = h.place_batch(digests)
        assert [h.nodes[i] for i in idx] == [h.place(k) for k in keys]

    @pytest.mark.parametrize("family", [MIX64, TR98])
    def test_rank_batch_matches_ranked(self, family):
        nodes = [f"n{i}" for i in range(9)]
        h = HrwHasher(nodes, family)
        keys = [("stripe", 3, i) for i in range(100)]
        digests = np.array([stable_digest(k) for k in keys], dtype=np.uint64)
        order = h.rank_batch(digests)
        for i, k in enumerate(keys):
            assert [nodes[j] for j in order[i]] == h.ranked(k)

    @pytest.mark.parametrize("family", [MIX64, TR98])
    def test_class_rank_batch_matches_scores(self, family):
        m = family.modulus
        layer = WeightedClassHrw(
            {"a": 0.0, "b": 0.4 * m, "c": float(m)}, family)
        keys = [f"key-{i}" for i in range(100)]
        digests = np.array([stable_digest(k) for k in keys], dtype=np.uint64)
        order = layer.rank_batch(digests)
        for i, k in enumerate(keys):
            sc = layer.scores(k)
            expect = sorted(layer.classes, key=lambda c: -sc[c])
            assert [layer.classes[j] for j in order[i]] == expect

    def test_score_batch_shape_and_dtype(self):
        h = HrwHasher(["a", "b", "c"])
        digests = np.arange(7, dtype=np.uint64)
        scores = h.score_batch(digests)
        assert scores.shape == (3, 7) and scores.dtype == np.uint64
        layer = WeightedClassHrw({"x": 0.0, "y": 1.0})
        cs = layer.score_batch(digests)
        assert cs.shape == (2, 7) and cs.dtype == np.float64
