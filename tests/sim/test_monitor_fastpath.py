"""Monitor hot path: memoized array views and fused multi-probes."""

import numpy as np
import pytest

from repro.sim import Environment, Monitor
from repro.sim.monitor import TimeSeries


class TestTimeSeriesArrayCache:
    def test_as_arrays_is_memoized_until_append(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        first = ts.as_arrays()
        assert ts.as_arrays() is first
        ts.append(1.0, 2.0)
        second = ts.as_arrays()
        assert second is not first
        np.testing.assert_array_equal(second[1], [1.0, 2.0])

    def test_summaries_use_the_cached_view(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.append(float(t), float(t) * 2)
        assert ts.mean() == 9.0
        assert ts.max() == 18.0
        assert ts.percentile(50) == 9.0
        assert ts.last() == 18.0
        ts.append(10.0, 100.0)
        assert ts.max() == 100.0

    def test_empty_series_summaries(self):
        ts = TimeSeries("x")
        assert ts.mean() == 0.0
        assert ts.max() == 0.0
        assert ts.percentile(99) == 0.0

    def test_windowed_mean_still_works(self):
        ts = TimeSeries("x")
        for t in range(4):
            ts.append(float(t), float(t))
        assert ts.mean(t_start=2.0) == 2.5
        assert ts.mean(t_end=1.0) == 0.5
        assert ts.mean(t_start=9.0) == 0.0


class TestMultiProbe:
    def test_fused_probe_matches_individual_probes(self):
        env = Environment()
        mon = Monitor(env, interval=1.0)
        state = {"v": 0.0}
        mon.add_probe("solo.a", lambda: state["v"])
        mon.add_probe("solo.b", lambda: state["v"] * 2)
        mon.add_multi_probe(("fused.a", "fused.b"),
                            lambda: (state["v"], state["v"] * 2))

        def driver():
            for _ in range(3):
                state["v"] += 1.0
                yield env.timeout(1.0)

        mon.start()
        proc = env.process(driver())
        env.run(until=proc)
        mon.stop()
        env.run()
        for suffix in ("a", "b"):
            solo = mon.series[f"solo.{suffix}"]
            fused = mon.series[f"fused.{suffix}"]
            assert solo.times == fused.times
            assert solo.values == fused.values

    def test_duplicate_names_rejected_across_probe_kinds(self):
        env = Environment()
        mon = Monitor(env)
        mon.add_multi_probe(("m.a", "m.b"), lambda: (0.0, 0.0))
        with pytest.raises(ValueError):
            mon.add_probe("m.a", lambda: 0.0)
        with pytest.raises(ValueError):
            mon.add_multi_probe(("m.c", "m.b"), lambda: (0.0, 0.0))
