"""Unit tests for max-min fair fluid resources."""

import math

import pytest

from repro.sim import Environment, FluidResource, SimulationError
from repro.sim.fluid import maxmin_allocate


class TestMaxminAllocate:
    def test_empty(self):
        assert maxmin_allocate(10, []) == []

    def test_single_uncapped_gets_all(self):
        assert maxmin_allocate(10, [math.inf]) == [10]

    def test_equal_split(self):
        assert maxmin_allocate(12, [math.inf] * 3) == [4, 4, 4]

    def test_cap_respected_and_redistributed(self):
        rates = maxmin_allocate(12, [2, math.inf, math.inf])
        assert rates == [2, 5, 5]

    def test_all_capped_below_fair_share(self):
        rates = maxmin_allocate(100, [1, 2, 3])
        assert rates == [1, 2, 3]

    def test_order_preserved(self):
        rates = maxmin_allocate(10, [math.inf, 1])
        assert rates == [9, 1]

    def test_conservation(self):
        caps = [3, math.inf, 7, math.inf, 1]
        rates = maxmin_allocate(20, caps)
        assert sum(rates) == pytest.approx(20)
        for r, c in zip(rates, caps):
            assert r <= c + 1e-9


class TestFluidResource:
    def test_single_flow_runs_at_capacity(self):
        env = Environment()
        res = FluidResource(env, capacity=100.0)
        flow = res.submit(work=500.0)
        env.run(until=flow.done)
        assert env.now == pytest.approx(5.0)

    def test_flow_cap_limits_rate(self):
        env = Environment()
        res = FluidResource(env, capacity=100.0)
        flow = res.submit(work=500.0, cap=50.0)
        env.run(until=flow.done)
        assert env.now == pytest.approx(10.0)

    def test_two_flows_share_fairly(self):
        env = Environment()
        res = FluidResource(env, capacity=100.0)
        a = res.submit(work=100.0)
        b = res.submit(work=100.0)
        env.run(until=env.all_of([a.done, b.done]))
        # Each ran at 50 until both drained together.
        assert env.now == pytest.approx(2.0)

    def test_remaining_flow_speeds_up_after_completion(self):
        env = Environment()
        res = FluidResource(env, capacity=100.0)
        short = res.submit(work=50.0)    # drains at t=1 (rate 50)
        long = res.submit(work=150.0)    # 50 by t=1, then rate 100
        env.run(until=short.done)
        assert env.now == pytest.approx(1.0)
        env.run(until=long.done)
        assert env.now == pytest.approx(2.0)

    def test_late_arrival_slows_existing_flow(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        first = res.submit(work=100.0)   # alone: 10s

        def second():
            yield env.timeout(5)         # first has done 50 units
            f = res.submit(work=25.0)    # both now at rate 5; f drains at t=10
            yield f.done
            return env.now

        p = env.process(second())
        env.run(until=first.done)
        # first: 50 left at t=5, rate 5 until t=10 (25 left) then sole rate 10
        assert env.now == pytest.approx(12.5)
        assert p.value == pytest.approx(10.0)

    def test_zero_work_completes_immediately(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        flow = res.submit(work=0.0)
        assert flow.done.triggered

    def test_persistent_flow_consumes_until_removed(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        bg = res.submit(work=None)       # persistent, takes the full 10
        real = res.submit(work=50.0)     # shares: rate 5

        def manager():
            yield env.timeout(4)         # real has done 20
            res.remove(bg)

        env.process(manager())
        env.run(until=real.done)
        # 20 done by t=4 at rate 5, remaining 30 at rate 10 -> t=7
        assert env.now == pytest.approx(7.0)

    def test_remove_pending_flow_fails_waiter(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        flow = res.submit(work=100.0)
        caught = {}

        def waiter():
            try:
                yield flow.done
            except SimulationError:
                caught["t"] = env.now

        def canceller():
            yield env.timeout(2)
            leftover = res.remove(flow)
            caught["left"] = leftover

        env.process(waiter())
        env.process(canceller())
        env.run()
        assert caught["t"] == pytest.approx(2.0)
        assert caught["left"] == pytest.approx(80.0)

    def test_capacity_adjustment_mid_flow(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        flow = res.submit(work=100.0)

        def shrink():
            yield env.timeout(5)         # 50 done
            res.adjust_capacity(5.0)     # remaining 50 at rate 5 -> +10s

        env.process(shrink())
        env.run(until=flow.done)
        assert env.now == pytest.approx(15.0)

    def test_flow_cap_adjustment_mid_flow(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        flow = res.submit(work=100.0, cap=10.0)

        def throttle():
            yield env.timeout(5)
            res.adjust_cap(flow, 2.0)

        env.process(throttle())
        env.run(until=flow.done)
        assert env.now == pytest.approx(30.0)

    def test_utilization_and_busy_time(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        res.submit(work=50.0, cap=5.0)
        assert res.utilization == pytest.approx(0.5)
        env.run()
        assert env.now == pytest.approx(10.0)
        assert res.busy_time() == pytest.approx(5.0)  # 0.5 util * 10 s

    def test_consume_helper(self):
        env = Environment()
        res = FluidResource(env, capacity=4.0)
        out = {}

        def proc():
            yield from res.consume(work=8.0)
            out["t"] = env.now

        env.process(proc())
        env.run()
        assert out["t"] == pytest.approx(2.0)

    def test_consume_withdraws_on_interrupt(self):
        from repro.sim import Interrupt
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        out = {}

        def proc():
            try:
                yield from res.consume(work=1000.0)
            except Interrupt:
                out["flows_left"] = len(res.flows)

        p = env.process(proc())

        def attacker():
            yield env.timeout(1)
            p.interrupt()

        env.process(attacker())
        env.run()
        assert out["flows_left"] == 0

    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(SimulationError):
            FluidResource(env, capacity=0)
        res = FluidResource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.submit(work=-1)
        with pytest.raises(SimulationError):
            res.submit(work=1, cap=0)

    def test_many_flows_conserve_work(self):
        env = Environment()
        res = FluidResource(env, capacity=7.0)
        flows = [res.submit(work=10.0 + i, cap=1.0 + (i % 3))
                 for i in range(20)]
        env.run(until=env.all_of([f.done for f in flows]))
        assert all(f.remaining == 0 for f in flows)
        total_work = sum(10.0 + i for i in range(20))
        # Busy integral equals total work / capacity.
        assert res.busy_time() == pytest.approx(total_work / 7.0)
