"""Incremental component-aware solver vs. the full progressive-fill oracle.

Three layers of evidence that the new solve path changes *nothing* about
the simulated physics:

- hypothesis-randomized flow/link graphs (caps, persistent flows, capacity
  changes, batched adds/removes) where the network's rates — under both
  the ``"incremental"`` and adaptive ``"auto"`` modes — must match a
  standalone :func:`progressive_fill` run over clones within 1e-9;
- trajectory agreement of every solver mode against ``"reference"`` on
  event-driven scenarios, including fault-injector partitions;
- a golden Fig. 2 run (committed fixture produced by the pre-PR solver)
  whose runtime and victim-NIC figures must stay bit-identical.
"""

import math
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FlowNetwork, SimulationError, flownet_stats
from repro.sim.flownet import Link, NetFlow, progressive_fill

CAP = 100.0


def mirror_fill(net):
    """Run the oracle on detached clones of *net*'s current state."""
    links = {l.name: Link(l.name, l.capacity) for l in net.links}
    env = Environment(net.env.now)
    clones = []
    for f in net.flows:
        clone = NetFlow(env, tuple(links[l.name] for l in f.links),
                        f.work, f.cap, f.label)
        clone.remaining = f.remaining
        clones.append(clone)
    progressive_fill(clones, links.values())
    return {id(f): c.rate for f, c in zip(net.flows, clones)}, \
        {l.name: links[l.name].used_rate for l in net.links}


def assert_matches_oracle(net):
    flow_rates, link_rates = mirror_fill(net)
    for f in net.flows:
        assert f.rate == pytest.approx(flow_rates[id(f)], abs=1e-9), f.label
    for l in net.links:
        assert l.used_rate == pytest.approx(link_rates[l.name], abs=1e-9), \
            l.name


# One mutation of the randomized schedule: (op, src, dst, work, cap).
_ops = st.tuples(
    st.sampled_from(["add", "add_persistent", "remove", "capacity", "batch"]),
    st.integers(0, 5), st.integers(0, 5),
    st.floats(1.0, 1e6), st.floats(0.1, 200.0))


@pytest.mark.parametrize("solver", ["incremental", "auto"])
@settings(max_examples=60, deadline=None)
@given(n_nodes=st.integers(2, 6), schedule=st.lists(_ops, max_size=24))
def test_randomized_schedules_match_oracle(solver, n_nodes, schedule):
    env = Environment()
    net = FlowNetwork(env, solver=solver)
    tx = [net.add_link(f"tx{i}", CAP) for i in range(n_nodes)]
    rx = [net.add_link(f"rx{i}", CAP) for i in range(n_nodes)]
    alive = []
    for op, a, b, work, cap in schedule:
        a %= n_nodes
        b %= n_nodes
        if op == "add":
            alive.append(net.transfer([tx[a], rx[b]], work, cap=cap,
                                      label=f"t:{a}->{b}"))
        elif op == "add_persistent":
            alive.append(net.transfer([tx[a], rx[b]], None, cap=cap,
                                      label=f"p:{a}->{b}"))
        elif op == "remove" and alive:
            net.remove(alive.pop(a % len(alive)))
        elif op == "capacity":
            net.set_capacity(tx[a], cap)
        elif op == "batch":
            with net.batch():
                f1 = net.transfer([tx[a], rx[b]], work, label="b:1")
                f2 = net.transfer([tx[b], rx[a]], work, label="b:2")
                net.remove(f1)
            alive.append(f2)
        assert_matches_oracle(net)
    # Let the event-driven part (wakeups, completions) run too.
    env.run(until=env.now + 1.0)
    assert_matches_oracle(net)


@settings(max_examples=25, deadline=None)
@given(n_nodes=st.integers(2, 5), schedule=st.lists(_ops, max_size=16),
       horizon=st.floats(0.1, 50.0))
def test_modes_trace_equivalent(n_nodes, schedule, horizon):
    """Every solver mode produces the same trajectory as the reference.

    Same completions in the same order, rates/times within 1e-9 — the
    reference mode's one global fill can split a round's delta across
    components differently than per-component fills, so arbitrary graphs
    agree to rounding, not bitwise.  (On the tracked single-component
    scenarios — the Fig. 2 golden below, the perf suite — agreement *is*
    bitwise and asserted exactly there.)
    """
    traces = []
    for solver in ("reference", "incremental", "auto"):
        env = Environment()
        net = FlowNetwork(env, solver=solver)
        tx = [net.add_link(f"tx{i}", CAP) for i in range(n_nodes)]
        rx = [net.add_link(f"rx{i}", CAP) for i in range(n_nodes)]
        alive = []
        done_at = []

        def watch(flow):
            flow.done._add_callback(
                lambda ev: done_at.append((env.now, flow.label)))

        for i, (op, a, b, work, cap) in enumerate(schedule):
            a %= n_nodes
            b %= n_nodes
            if op in ("add", "add_persistent"):
                f = net.transfer([tx[a], rx[b]],
                                 None if op == "add_persistent" else work,
                                 cap=cap, label=f"f:{i}")
                watch(f)
                alive.append(f)
            elif op == "remove" and alive:
                f = alive.pop(a % len(alive))
                try:
                    net.remove(f)
                except SimulationError:
                    pass
            elif op == "capacity":
                net.set_capacity(tx[a], cap)
            elif op == "batch":
                with net.batch():
                    f1 = net.transfer([tx[a], rx[b]], work, label=f"f:{i}.1")
                    f2 = net.transfer([tx[b], rx[a]], work, label=f"f:{i}.2")
                watch(f1)
                watch(f2)
                alive += [f1, f2]
        env.run(until=horizon)
        traces.append((
            sorted(done_at),
            sorted((f.label, f.rate, f.remaining) for f in net.flows),
            [(l.name, l.used_rate, net.busy_time(l)) for l in net.links],
        ))
    ref = traces[0]
    for got in traces[1:]:
        assert [lbl for _t, lbl in got[0]] == [lbl for _t, lbl in ref[0]]
        for (t_got, _), (t_ref, _) in zip(got[0], ref[0]):
            assert t_got == pytest.approx(t_ref, abs=1e-9)
        assert ([lbl for lbl, _r, _w in got[1]]
                == [lbl for lbl, _r, _w in ref[1]])
        for (_, r_got, w_got), (_, r_ref, w_ref) in zip(got[1], ref[1]):
            assert r_got == pytest.approx(r_ref, abs=1e-9)
            assert w_got == pytest.approx(w_ref, abs=1e-6)
        for (n_got, u_got, b_got), (n_ref, u_ref, b_ref) in zip(got[2],
                                                                ref[2]):
            assert n_got == n_ref
            assert u_got == pytest.approx(u_ref, abs=1e-9)
            assert b_got == pytest.approx(b_ref, abs=1e-6)


def test_set_capacity_partition_factor():
    """A Fabric-style partition (capacity × 1e-9) stays oracle-exact."""
    env = Environment()
    net = FlowNetwork(env)
    tx = [net.add_link(f"tx{i}", CAP) for i in range(3)]
    rx = [net.add_link(f"rx{i}", CAP) for i in range(3)]
    for i in range(3):
        net.transfer([tx[i], rx[(i + 1) % 3]], 1e9, label=f"f{i}")
    net.set_capacity(tx[0], CAP * 1e-9)
    net.set_capacity(rx[1], CAP * 1e-9)
    assert_matches_oracle(net)
    assert net.flows[0].rate == pytest.approx(CAP * 1e-9, rel=1e-6)
    net.set_capacity(tx[0], CAP)
    net.set_capacity(rx[1], CAP)
    assert_matches_oracle(net)


def test_fault_injector_partition_matches_oracle():
    """degrade/partition through the Fabric batch path stays oracle-exact."""
    from repro.cluster import build_das5

    cluster = build_das5(n_nodes=4)
    env, fabric = cluster.env, cluster.fabric
    nodes = cluster.nodes
    for i in range(1, 4):
        fabric.transfer(nodes[0], nodes[i], 1e12, label=f"dd:{i}")
        fabric.transfer(nodes[i], nodes[0], 1e12, label=f"up:{i}",
                        transport="tcp")
    restore = fabric.partition_node(nodes[1].name)
    assert_matches_oracle(fabric.net)
    env.run(until=1.0)
    restore()
    assert_matches_oracle(fabric.net)
    env.run(until=2.0)
    assert_matches_oracle(fabric.net)


class TestBatching:
    def test_batch_coalesces_solves(self):
        env = Environment()
        net = FlowNetwork(env)
        tx = [net.add_link(f"tx{i}", CAP) for i in range(4)]
        rx = [net.add_link(f"rx{i}", CAP) for i in range(4)]
        flownet_stats.reset()
        with net.batch():
            for i in range(4):
                net.transfer([tx[i], rx[(i + 1) % 4]], 1e6, label=f"f{i}")
        assert flownet_stats.solves == 1
        assert flownet_stats.batch_coalesced == 3
        assert_matches_oracle(net)

    def test_same_instant_transfers_coalesce_without_batch(self):
        env = Environment()
        net = FlowNetwork(env)
        tx = [net.add_link(f"tx{i}", CAP) for i in range(4)]
        rx = [net.add_link(f"rx{i}", CAP) for i in range(4)]

        def one(i):
            yield env.timeout(1.0)
            yield net.transfer([tx[i], rx[(i + 1) % 4]], 1e6,
                               label=f"f{i}").done

        for i in range(4):
            env.process(one(i))
        flownet_stats.reset()
        env.run(until=1.5)
        # All four transfers landed at t=1.0; the guard solved them once.
        assert flownet_stats.solves == 1
        assert flownet_stats.batch_coalesced == 3

    def test_reads_flush_inside_batch(self):
        env = Environment()
        net = FlowNetwork(env)
        tx = net.add_link("tx", CAP)
        rx = net.add_link("rx", CAP)
        with net.batch():
            f = net.transfer([tx, rx], 1e6)
            assert f.rate == pytest.approx(CAP)
            assert tx.used_rate == pytest.approx(CAP)

    def test_batch_is_reentrant(self):
        env = Environment()
        net = FlowNetwork(env)
        tx = net.add_link("tx", CAP)
        rx = net.add_link("rx", CAP)
        flownet_stats.reset()
        with net.batch():
            with net.batch():
                net.transfer([tx, rx], 1e6)
            net.transfer([tx, rx], 1e6)
        assert flownet_stats.solves == 1


class TestConsumeInterrupt:
    def _run(self, crash_at):
        env = Environment()
        net = FlowNetwork(env)
        tx = net.add_link("tx", CAP)
        rx = net.add_link("rx", CAP)

        def mover():
            yield from net.consume([tx, rx], 1e6, label="store:xfer")

        proc = env.process(mover())

        def killer():
            yield env.timeout(crash_at)
            proc.interrupt("evicted")

        env.process(killer())
        env.run(until=crash_at + 1.0)
        return net, tx, rx

    def test_interrupt_settles_byte_integrals(self):
        """Regression: the interrupt path used to pop the flow without
        settling, silently losing the bytes accrued since the last
        update — busy_time and class_bytes must reflect the 2 s of flow."""
        net, tx, rx = self._run(crash_at=2.0)
        assert net.busy_time(tx) == pytest.approx(2.0)
        assert net.busy_time(rx) == pytest.approx(2.0)
        assert tx.class_bytes["store"] == pytest.approx(2.0 * CAP)
        assert rx.class_bytes["store"] == pytest.approx(2.0 * CAP)
        assert not net.flows

    def test_interrupt_frees_capacity(self):
        net, tx, rx = self._run(crash_at=2.0)
        assert tx.used_rate == 0.0
        assert rx.used_rate == 0.0


class TestStalemate:
    def test_crafted_capacities_warn_once(self):
        """A NaN cap on an infinite link defeats every fixing rule: the
        round fixes nothing and the solver must warn (once) and count."""
        env = Environment()
        link = Link("weird", math.inf)
        flow = NetFlow(env, (link,), 1e6, cap=float("nan"), label="")
        flownet_stats.reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            progressive_fill([flow], [link])
            progressive_fill([flow], [link])
        assert flownet_stats.stalemates == 2
        stale = [w for w in caught
                 if "numerical stalemate" in str(w.message)]
        assert len(stale) == 1  # warned once per process, counted per hit

    def test_normal_inputs_do_not_stalemate(self):
        env = Environment()
        net = FlowNetwork(env)
        tx = net.add_link("tx", CAP)
        rx = net.add_link("rx", 3.0)
        flownet_stats.reset()
        for i in range(7):
            net.transfer([tx, rx], 1e6, cap=1.0 / (i + 1), label=f"f{i}")
        net.settle()
        assert_matches_oracle(net)
        assert flownet_stats.stalemates == 0
