"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (AnyOf, Environment, Interrupt, SimulationError)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = {}

    def proc():
        yield env.timeout(5)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == 5.0
    assert env.now == 5.0


def test_timeout_value_passthrough():
    env = Environment()
    out = {}

    def proc():
        out["v"] = yield env.timeout(1, value="payload")

    env.process(proc())
    env.run()
    assert out["v"] == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc("b", 2))
    env.process(proc("a", 1))
    env.process(proc("c", 3))
    env.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_simultaneous_events_fifo_order():
    env = Environment()
    log = []

    def proc(name):
        yield env.timeout(1)
        log.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return 42

    def parent(store):
        store["v"] = yield env.process(child())

    store = {}
    env.process(parent(store))
    env.run()
    assert store["v"] == 42


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "done"

    proc = env.process(child())
    assert env.run(until=proc) == "done"
    assert env.now == 3.0


def test_run_until_deadline_stops_clock_there():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10.0


def test_run_until_past_deadline_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    out = {}

    def waiter():
        out["v"] = yield ev

    def firer():
        yield env.timeout(4)
        ev.succeed("ping")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert out["v"] == "ping"


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = {}

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught["exc"] = exc

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert isinstance(caught["exc"], ValueError)


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_exception_propagates_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kaput")

    proc = env.process(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        env.run(until=proc)


def test_all_of_waits_for_every_event():
    env = Environment()
    out = {}

    def proc():
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(5, value="y")
        results = yield env.all_of([t1, t2])
        out["values"] = sorted(results.values())
        out["t"] = env.now

    env.process(proc())
    env.run()
    assert out["t"] == 5.0
    assert out["values"] == ["x", "y"]


def test_any_of_fires_on_first():
    env = Environment()
    out = {}

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(9, value="slow")
        results = yield AnyOf(env, [t1, t2])
        out["t"] = env.now
        out["values"] = list(results.values())

    env.process(proc())
    env.run()
    assert out["t"] == 1.0
    assert "fast" in out["values"]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    out = {}

    def proc():
        yield env.all_of([])
        out["t"] = env.now

    env.process(proc())
    env.run()
    assert out["t"] == 0.0


def test_interrupt_reaches_waiting_process():
    env = Environment()
    out = {}

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            out["cause"] = i.cause
            out["t"] = env.now

    def attacker(v):
        yield env.timeout(3)
        v.interrupt("evict")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert out == {"cause": "evict", "t": 3.0}


def test_interrupt_then_original_event_is_stale():
    """After an interrupt, the original timeout firing must not resume the
    process a second time."""
    env = Environment()
    resumed = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        resumed.append(env.now)
        yield env.timeout(50)
        resumed.append(env.now)

    def attacker(v):
        yield env.timeout(2)
        v.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert resumed == [2.0, 52.0]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_waiting_on_already_processed_event_resumes_immediately():
    env = Environment()
    out = {}

    def early():
        yield env.timeout(1)
        return "val"

    child = env.process(early())

    def late():
        yield env.timeout(5)
        out["v"] = yield child  # child finished long ago
        out["t"] = env.now

    env.process(late())
    env.run()
    assert out == {"v": "val", "t": 5.0}


def test_schedule_callback():
    env = Environment()
    hits = []
    env.schedule_callback(2.5, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.5]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7.0


def test_determinism_same_model_same_trace():
    def build():
        env = Environment()
        log = []

        def proc(name, d):
            yield env.timeout(d)
            log.append((env.now, name))
            yield env.timeout(d)
            log.append((env.now, name))

        for i in range(5):
            env.process(proc(f"p{i}", 1 + i * 0.5))
        env.run()
        return log

    assert build() == build()


def test_call_later_runs_in_order():
    env = Environment()
    hits = []
    env.call_later(2.0, lambda: hits.append(("b", env.now)))
    env.call_later(1.0, lambda: hits.append(("a", env.now)))
    env.call_later(2.0, lambda: hits.append(("c", env.now)))
    env.run()
    assert hits == [("a", 1.0), ("b", 2.0), ("c", 2.0)]


def test_call_later_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.call_later(-0.1, lambda: None)


def test_call_later_reuses_pooled_slot():
    env = Environment()
    hits = []

    def again():
        hits.append(env.now)
        if len(hits) < 3:
            env.call_later(1.0, again)

    env.call_later(1.0, again)
    env.run()
    assert hits == [1.0, 2.0, 3.0]
    # The reschedule-from-inside-the-callback path reuses one slot.
    assert len(env._cb_pool) == 1


def test_call_later_interleaves_with_timeouts_by_insertion_order():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.0)
        log.append("proc")

    env.process(proc())
    env.call_later(1.0, lambda: log.append("cb"))
    env.run()
    # The callback's calendar entry was inserted first (the process only
    # creates its timeout once its bootstrap event runs at t=0), so it
    # wins the tie at t=1 — insertion order, exactly like Timeout.
    assert log == ["cb", "proc"]
