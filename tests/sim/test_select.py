"""Unit tests for the adaptive solver selector (:mod:`repro.sim.select`).

The selector's contract is behavioral, not numeric: quiet graphs walk
components, an obvious storm flips to the full fill immediately, and
sustained churn trips the EWMA and then decays back.  The decision trace
is the audit channel the perf suite stores, so its bookkeeping (bounds,
summary, reset) is pinned here too.
"""

import pytest

from repro.sim import (Environment, FlowNetwork, flownet_stats,
                       reset_selection_log, selection_snapshot,
                       selection_summary)
from repro.sim.select import SolverSelector

CAP = 100.0


class TestDecide:
    def setup_method(self):
        reset_selection_log()

    def test_quiet_graph_stays_incremental(self):
        sel = SolverSelector()
        for i in range(20):
            assert sel.decide(4, 1000, 50, now=float(i)) == "incremental"

    def test_spike_picks_full_immediately(self):
        sel = SolverSelector()
        assert sel.decide(600, 1000, 50, now=0.0) == "full"

    def test_sub_spike_churn_trips_ewma_then_decays(self):
        sel = SolverSelector()  # spike 0.5, ewma 0.4, alpha 0.25
        decisions = [sel.decide(450, 1000, 50, now=float(i))
                     for i in range(12)]
        # 0.45 per flush never spikes, but the EWMA converges toward
        # 0.45 and crosses the 0.4 threshold after a few flushes.
        assert decisions[0] == "incremental"
        assert "full" in decisions
        # A quiet stretch decays the EWMA back below threshold.
        last = [sel.decide(0, 1000, 50, now=100.0 + i) for i in range(20)]
        assert last[-1] == "incremental"

    def test_empty_graph_counts_as_all_dirty(self):
        sel = SolverSelector()
        assert sel.decide(0, 0, 0, now=0.0) == "full"

    def test_trace_records_every_decision(self):
        sel = SolverSelector()
        sel.decide(600, 1000, 7, now=1.5)
        sel.decide(1, 1000, 7, now=2.5)
        trace = selection_snapshot()
        assert [e["decision"] for e in trace] == ["full", "incremental"]
        assert trace[0] == {"t": 1.5, "decision": "full",
                            "dirty_links": 600, "total_links": 1000,
                            "active_flows": 7, "ewma": trace[0]["ewma"]}
        summary = selection_summary()
        assert summary["decisions"] == 2
        assert summary["full"] == 1
        assert summary["incremental"] == 1
        assert summary["dropped"] == 0

    def test_trace_is_bounded_and_counts_overflow(self):
        sel = SolverSelector()
        for i in range(5000):
            sel.decide(1, 1000, 1, now=float(i))
        summary = selection_summary()
        assert summary["decisions"] == 4096
        assert summary["dropped"] == 904
        reset_selection_log()
        assert selection_summary() == {"decisions": 0, "dropped": 0,
                                       "full": 0, "incremental": 0}


class TestAutoNetwork:
    """The selector wired into a live network (solver="auto")."""

    def _net(self, n=6):
        env = Environment()
        net = FlowNetwork(env, solver="auto")
        tx = [net.add_link(f"tx{i}", CAP) for i in range(n)]
        rx = [net.add_link(f"rx{i}", CAP) for i in range(n)]
        return env, net, tx, rx

    def test_same_instant_transfers_coalesce_to_one_decision(self):
        env, net, tx, rx = self._net(4)

        def one(i):
            yield env.timeout(1.0)
            yield net.transfer([tx[i], rx[(i + 1) % 4]], 1e6,
                               label=f"f{i}").done

        for i in range(4):
            env.process(one(i))
        flownet_stats.reset()
        reset_selection_log()
        env.run(until=1.5)
        # All four transfers landed at t=1.0: one guard flush, one
        # selector decision — the coalescing the reference mode never
        # does, whatever the graph size.
        assert flownet_stats.solves == 1
        assert selection_summary()["decisions"] == 1

    def test_storm_burst_selects_full_fill(self):
        env, net, tx, rx = self._net(6)
        for i in range(6):
            net.transfer([tx[i], rx[(i + 1) % 6]], None, label=f"p{i}")
        flownet_stats.reset()
        reset_selection_log()
        with net.batch():
            for link in tx + rx:
                net.set_capacity(link, CAP / 2)
        assert selection_summary() == {"decisions": 1, "dropped": 0,
                                       "full": 1, "incremental": 0}
        assert flownet_stats.auto_full == 1
        # The degraded rates are live after the flush.
        assert net.flows[0].rate == pytest.approx(CAP / 2)

    def test_quiet_mutations_walk_components(self):
        env, net, tx, rx = self._net(6)
        flownet_stats.reset()
        reset_selection_log()
        flow = net.transfer([tx[0], rx[1]], 1e6, label="lone")
        # Reads flush the pending coalesced solve.
        assert flow.rate == pytest.approx(CAP)
        summary = selection_summary()
        assert summary["decisions"] == 1
        assert summary["incremental"] == 1
        assert flownet_stats.auto_incremental == 1
