"""Property-based tests of the fluid-resource invariants.

These are the physics of the reproduction: work conservation, capacity
limits, and max-min fairness must hold for arbitrary flow populations.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FluidResource, FlowNetwork
from repro.sim.fluid import maxmin_allocate
from repro.sim.flownet import progressive_fill


class TestMaxminProperties:
    @given(st.floats(min_value=0.1, max_value=1e6),
           st.lists(st.one_of(st.floats(min_value=0.01, max_value=1e6),
                              st.just(math.inf)),
                    min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_feasibility_and_caps(self, capacity, caps):
        rates = maxmin_allocate(capacity, caps)
        assert sum(rates) <= capacity * (1 + 1e-9)
        for r, c in zip(rates, caps):
            assert r <= c * (1 + 1e-9)
            assert r >= 0

    @given(st.floats(min_value=1.0, max_value=1e4),
           st.lists(st.floats(min_value=0.01, max_value=1e5),
                    min_size=2, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_work_conserving_or_all_capped(self, capacity, caps):
        rates = maxmin_allocate(capacity, caps)
        used = sum(rates)
        all_capped = all(abs(r - c) < 1e-9 for r, c in zip(rates, caps))
        assert used == pytest.approx(capacity, rel=1e-6) or all_capped

    @given(st.floats(min_value=1.0, max_value=1e4),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_uncapped_flows_get_equal_shares(self, capacity, n):
        rates = maxmin_allocate(capacity, [math.inf] * n)
        assert all(r == pytest.approx(capacity / n) for r in rates)


class TestFluidResourceProperties:
    @given(st.lists(st.tuples(st.floats(min_value=1.0, max_value=1e4),
                              st.floats(min_value=0.1, max_value=100.0)),
                    min_size=1, max_size=12),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_all_work_completes_and_is_conserved(self, jobs, capacity):
        env = Environment()
        res = FluidResource(env, capacity)
        flows = [res.submit(work=w, cap=c) for w, c in jobs]
        env.run(until=env.all_of([f.done for f in flows]))
        assert all(f.remaining == 0 for f in flows)
        total = sum(w for w, _ in jobs)
        assert res.busy_time() == pytest.approx(total / capacity, rel=1e-6)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e3),
                    min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_work_over_capacity(self, works):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        flows = [res.submit(work=w) for w in works]
        env.run(until=env.all_of([f.done for f in flows]))
        assert env.now >= sum(works) / 10.0 * (1 - 1e-9)


class TestFlowNetworkProperties:
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4),
                              st.floats(min_value=1.0, max_value=1e4)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_no_link_over_capacity_ever(self, transfers):
        env = Environment()
        net = FlowNetwork(env)
        links = {}
        for i in range(5):
            links[f"tx{i}"] = net.add_link(f"tx{i}", 50.0)
            links[f"rx{i}"] = net.add_link(f"rx{i}", 50.0)
        flows = []
        for src, dst, size in transfers:
            if src == dst:
                dst = (dst + 1) % 5
            flows.append(net.transfer([links[f"tx{src}"],
                                       links[f"rx{dst}"]], size))
        for link in net.links:
            assert link.used_rate <= link.capacity * (1 + 1e-6)
        env.run(until=env.all_of([f.done for f in flows]))
        assert all(f.remaining == 0 for f in flows)
        # Conservation: bytes through tx links == bytes submitted.
        sent = sum(net.busy_time(links[f"tx{i}"]) * 50.0 for i in range(5))
        total = sum(min(s, 1e18) for *_x, s in
                    [(t[0], t[1], t[2]) for t in transfers])
        assert sent == pytest.approx(total, rel=1e-6)

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_progressive_fill_symmetric_incast(self, n):
        env = Environment()
        net = FlowNetwork(env)
        rx = net.add_link("rx", 100.0)
        txs = [net.add_link(f"tx{i}", 100.0) for i in range(n)]
        flows = [net.transfer([t, rx], 1e6) for t in txs]
        for f in flows:
            assert f.rate == pytest.approx(100.0 / n)
