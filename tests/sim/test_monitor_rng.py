"""Unit tests for the monitor and RNG registry."""

import numpy as np
import pytest

from repro.sim import Environment, FluidResource, Monitor, RngRegistry
from repro.sim.monitor import TimeSeries


class TestTimeSeries:
    def test_empty_series_summaries(self):
        ts = TimeSeries("x")
        assert ts.mean() == 0.0
        assert ts.max() == 0.0

    def test_mean_window(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.append(float(t), float(t))
        assert ts.mean() == pytest.approx(4.5)
        assert ts.mean(t_start=5) == pytest.approx(7.0)
        assert ts.mean(t_start=2, t_end=4) == pytest.approx(3.0)
        assert ts.mean(t_start=100) == 0.0

    def test_percentile_and_max(self):
        ts = TimeSeries("x")
        for t, v in enumerate([1, 9, 5, 3]):
            ts.append(float(t), float(v))
        assert ts.max() == 9.0
        assert ts.percentile(50) == pytest.approx(4.0)


class TestMonitor:
    def test_samples_at_interval(self):
        env = Environment()
        res = FluidResource(env, capacity=10.0)
        res.submit(work=50.0, cap=5.0)  # 0.5 util for 10 s
        mon = Monitor(env, interval=1.0)
        mon.add_probe("util", lambda: res.utilization)
        mon.start()

        def stopper():
            yield env.timeout(10)
            mon.stop()

        env.process(stopper())
        env.run()
        ts = mon.series["util"]
        # The stopper (scheduled first) wins the t=10 tie: samples at t=0..9.
        assert len(ts) == 10
        assert ts.mean() == pytest.approx(0.5)

    def test_duplicate_probe_rejected(self):
        env = Environment()
        mon = Monitor(env)
        mon.add_probe("a", lambda: 0.0)
        with pytest.raises(ValueError):
            mon.add_probe("a", lambda: 1.0)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            Monitor(Environment(), interval=0)

    def test_double_start_rejected(self):
        env = Environment()
        mon = Monitor(env)
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_deterministic_across_registries(self):
        a = RngRegistry(7).stream("x").random(5)
        b = RngRegistry(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5)
        b = RngRegistry(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_component_isolation(self):
        """Drawing from one stream must not perturb another."""
        reg1 = RngRegistry(3)
        reg1.stream("noise").random(100)
        a = reg1.stream("x").random(5)
        reg2 = RngRegistry(3)
        b = reg2.stream("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_changes_streams(self):
        reg = RngRegistry(3)
        a = reg.stream("x").random(5)
        b = reg.fork(1).stream("x").random(5)
        assert not np.array_equal(a, b)
