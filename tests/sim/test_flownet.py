"""Unit tests for the max-min fair flow network."""

import math

import pytest

from repro.sim import Environment, FlowNetwork, SimulationError
from repro.sim.flownet import progressive_fill


def make_net(env, nodes=2, cap=100.0):
    net = FlowNetwork(env)
    links = {}
    for i in range(nodes):
        links[f"tx{i}"] = net.add_link(f"tx{i}", cap)
        links[f"rx{i}"] = net.add_link(f"rx{i}", cap)
    return net, links


class TestProgressiveFill:
    def test_single_flow_single_link(self):
        env = Environment()
        net, L = make_net(env)
        f = net.transfer([L["tx0"], L["rx1"]], nbytes=1000.0)
        assert f.rate == pytest.approx(100.0)

    def test_shared_egress_split(self):
        env = Environment()
        net, L = make_net(env, nodes=3)
        f1 = net.transfer([L["tx0"], L["rx1"]], 1e6)
        f2 = net.transfer([L["tx0"], L["rx2"]], 1e6)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)

    def test_incast_shares_ingress(self):
        env = Environment()
        net, L = make_net(env, nodes=5)
        flows = [net.transfer([L[f"tx{i}"], L["rx0"]], 1e6) for i in range(1, 5)]
        for f in flows:
            assert f.rate == pytest.approx(25.0)

    def test_bottleneck_frees_capacity_elsewhere(self):
        # f1 and f2 share tx0 (each 50); f3 alone on tx1->rx2 shares rx2
        # with f2.  Max-min: f2 fixed at 50 by tx0, f3 gets 100-50=50?  No:
        # progressive filling raises all to 50 (tx0 saturates), then f3 can
        # continue to 100-50 = 50 left on rx2 -> f3 = 50.
        env = Environment()
        net, L = make_net(env, nodes=3)
        f1 = net.transfer([L["tx0"], L["rx1"]], 1e6)
        f2 = net.transfer([L["tx0"], L["rx2"]], 1e6)
        f3 = net.transfer([L["tx1"], L["rx2"]], 1e6)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)
        assert f3.rate == pytest.approx(50.0)

    def test_flow_cap_leaves_room(self):
        env = Environment()
        net, L = make_net(env, nodes=3)
        f1 = net.transfer([L["tx0"], L["rx1"]], 1e6, cap=10.0)
        f2 = net.transfer([L["tx0"], L["rx2"]], 1e6)
        assert f1.rate == pytest.approx(10.0)
        assert f2.rate == pytest.approx(90.0)

    def test_no_link_capacity_exceeded(self):
        env = Environment()
        net, L = make_net(env, nodes=4, cap=70.0)
        import itertools
        for i, j in itertools.permutations(range(4), 2):
            net.transfer([L[f"tx{i}"], L[f"rx{j}"]], 1e9)
        for link in net.links:
            assert link.used_rate <= link.capacity + 1e-6


class TestFlowNetworkDynamics:
    def test_completion_time_single(self):
        env = Environment()
        net, L = make_net(env)
        f = net.transfer([L["tx0"], L["rx1"]], nbytes=500.0)
        env.run(until=f.done)
        assert env.now == pytest.approx(5.0)

    def test_sequential_speedup_after_completion(self):
        env = Environment()
        net, L = make_net(env, nodes=3)
        a = net.transfer([L["tx0"], L["rx1"]], 100.0)  # rate 50 until a done
        b = net.transfer([L["tx0"], L["rx2"]], 300.0)
        env.run(until=a.done)
        assert env.now == pytest.approx(2.0)
        env.run(until=b.done)
        # b: 100 by t=2, then 200 at rate 100 -> t=4
        assert env.now == pytest.approx(4.0)

    def test_remove_flow_returns_remaining(self):
        env = Environment()
        net, L = make_net(env)
        f = net.transfer([L["tx0"], L["rx1"]], 1000.0)
        got = {}

        def waiter():
            try:
                yield f.done
            except SimulationError:
                got["cancelled"] = env.now

        def killer():
            yield env.timeout(3)
            got["left"] = net.remove(f)

        env.process(waiter())
        env.process(killer())
        env.run()
        assert got["left"] == pytest.approx(700.0)
        assert got["cancelled"] == pytest.approx(3.0)

    def test_persistent_flow(self):
        env = Environment()
        net, L = make_net(env, nodes=3)
        bg = net.transfer([L["tx0"], L["rx1"]], nbytes=None)  # persistent
        f = net.transfer([L["tx0"], L["rx2"]], 200.0)         # rate 50
        env.run(until=f.done)
        assert env.now == pytest.approx(4.0)
        assert bg in net.flows
        net.remove(bg)
        assert bg not in net.flows

    def test_busy_time_accounting(self):
        env = Environment()
        net, L = make_net(env)
        f = net.transfer([L["tx0"], L["rx1"]], 500.0, cap=50.0)
        env.run(until=f.done)
        # link busy integral normalized: 50/100 util for 10 s = 5 s
        assert net.busy_time(L["tx0"]) == pytest.approx(5.0)

    def test_consume_helper_withdraws_on_interrupt(self):
        from repro.sim import Interrupt
        env = Environment()
        net, L = make_net(env)

        def proc():
            try:
                yield from net.consume([L["tx0"], L["rx1"]], 1e9)
            except Interrupt:
                pass

        p = env.process(proc())

        def killer():
            yield env.timeout(1)
            p.interrupt()

        env.process(killer())
        env.run()
        assert len(net.flows) == 0

    def test_duplicate_link_rejected(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("x", 1.0)
        with pytest.raises(SimulationError):
            net.add_link("x", 1.0)

    def test_foreign_link_rejected(self):
        env = Environment()
        net1 = FlowNetwork(env)
        net2 = FlowNetwork(env)
        lk = net2.add_link("a", 1.0)
        with pytest.raises(SimulationError):
            net1.transfer([lk], 10.0)

    def test_zero_byte_transfer_completes_immediately(self):
        env = Environment()
        net, L = make_net(env)
        f = net.transfer([L["tx0"], L["rx1"]], 0.0)
        assert f.done.triggered

    def test_work_conservation_many_flows(self):
        env = Environment()
        net, L = make_net(env, nodes=6, cap=37.0)
        rng_sizes = [100.0 * (1 + (i * 7) % 13) for i in range(30)]
        flows = []
        for i, size in enumerate(rng_sizes):
            src, dst = i % 6, (i * 3 + 1) % 6
            if src == dst:
                dst = (dst + 1) % 6
            flows.append(net.transfer([L[f"tx{src}"], L[f"rx{dst}"]], size))
        env.run(until=env.all_of([f.done for f in flows]))
        assert all(f.remaining == 0 for f in flows)
        # Total bytes through all tx links equals total submitted bytes.
        tx_busy = sum(net.busy_time(L[f"tx{i}"]) * 37.0 for i in range(6))
        assert tx_busy == pytest.approx(sum(rng_sizes), rel=1e-6)
