"""Kernel edge cases the same-instant batching refactor must preserve.

The event calendar routes zero-delay schedules through a FIFO deque
(`Environment._nowq`) instead of the heap; these tests pin the behaviors
that refactor is *not* allowed to change: interrupt delivery against
in-flight fluid work, combinators over already-triggered events,
``call_later`` at the exact current timestamp, and — via hypothesis —
the global (time, insertion) ordering invariant under random schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (Environment, FluidResource, Interrupt,
                       SimulationError)


class TestInterruptDuringSettle:
    def test_interrupt_mid_flow_settles_accrued_progress(self):
        # Interrupting a consumer forces a settle at the interrupt time:
        # the removed flow must have exactly rate*elapsed work drained.
        env = Environment()
        res = FluidResource(env, capacity=10.0, name="cpu")
        seen = {}

        def worker():
            flow = res.submit(100.0)  # 10 s at full rate
            try:
                yield flow.done
            except Interrupt as intr:
                seen["cause"] = intr.cause
                seen["at"] = env.now
                seen["remaining"] = res.remove(flow)

        p = env.process(worker())
        env.schedule_callback(4.0, lambda: p.interrupt("revoked"))
        env.run()
        assert seen["cause"] == "revoked"
        assert seen["at"] == 4.0
        assert seen["remaining"] == pytest.approx(60.0)
        # The resource is idle again and its busy integral covers [0, 4].
        assert res.used_rate == 0.0
        assert res.busy_time() == pytest.approx(4.0)

    def test_interrupted_consume_withdraws_its_flow(self):
        env = Environment()
        res = FluidResource(env, capacity=8.0)
        caught = {}

        def worker():
            try:
                yield from res.consume(64.0)
            except Interrupt:
                caught["at"] = env.now

        def bystander():
            flow = yield from res.consume(32.0)
            caught["bystander_done"] = env.now
            return flow

        p = env.process(worker())
        env.process(bystander())
        env.schedule_callback(2.0, lambda: p.interrupt())
        env.run()
        assert caught["at"] == 2.0
        # 0-2 s shared at 4 each (8 drained), then full rate for the
        # remaining 24 units: done at 2 + 24/8 = 5 s.
        assert caught["bystander_done"] == pytest.approx(5.0)
        assert res.used_rate == 0.0


class TestConditionsOverTriggeredEvents:
    def test_any_of_with_already_processed_event_fires_immediately(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()  # process it: callbacks are gone, value is final
        assert done.processed
        pending = env.event()
        got = {}

        def waiter():
            result = yield env.any_of([done, pending])
            got["value"] = result
            got["at"] = env.now

        env.process(waiter())
        env.run()
        assert got["at"] == 0.0
        assert got["value"] == {done: "early"}

    def test_all_of_with_mixed_triggered_and_pending(self):
        env = Environment()
        first = env.event()
        first.succeed(1)
        env.run()
        second = env.timeout(3.0, value=2)
        got = {}

        def waiter():
            result = yield env.all_of([first, second])
            got["value"] = result
            got["at"] = env.now

        env.process(waiter())
        env.run()
        assert got["at"] == 3.0
        assert got["value"] == {first: 1, second: 2}

    def test_all_of_already_failed_event_fails_the_condition(self):
        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("boom"))
        env.run()
        cond = env.all_of([bad, env.event()])

        def waiter():
            with pytest.raises(RuntimeError, match="boom"):
                yield cond
            return "survived"

        p = env.process(waiter())
        assert env.run(until=p) == "survived"


class TestCallLaterAtNow:
    def test_zero_delay_fires_at_current_time_in_fifo_order(self):
        env = Environment()
        fired = []
        env.run(until=5.0)
        env.call_later(0.0, lambda: fired.append(("a", env.now)))
        env.call_later(0.0, lambda: fired.append(("b", env.now)))
        env.run()
        assert fired == [("a", 5.0), ("b", 5.0)]
        assert env.now == 5.0

    def test_zero_delay_rescheduled_from_callback_stays_at_now(self):
        # A callback that re-arms itself with delay 0 keeps running at
        # the same instant (and must not starve a later timeout forever
        # because it terminates).
        env = Environment()
        ticks = []

        def again():
            ticks.append(env.now)
            if len(ticks) < 3:
                env.call_later(0.0, again)

        env.call_later(0.0, again)
        env.schedule_callback(1.0, lambda: ticks.append("late"))
        env.run()
        assert ticks == [0.0, 0.0, 0.0, "late"]

    def test_zero_delay_runs_before_strictly_future_events(self):
        env = Environment()
        order = []
        env.schedule_callback(0.5, lambda: order.append("future"))
        env.call_later(0.0, lambda: order.append("now"))
        env.run()
        assert order == ["now", "future"]


class TestHeapInvariantProperties:
    @given(st.lists(st.one_of(st.just(0.0),
                              st.floats(min_value=0.0, max_value=100.0,
                                        allow_nan=False)),
                    min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_fire_order_is_time_then_insertion(self, delays):
        env = Environment()
        fired = []
        for i, d in enumerate(delays):
            env.call_later(d, lambda i=i, d=d: fired.append((env.now, i, d)))
        env.run()
        assert len(fired) == len(delays)
        for now, i, d in fired:
            assert now == d  # fires exactly at its scheduled time
        # Global order: time strictly non-decreasing, ties in insertion
        # order (the counter shared by heap and now-queue).
        keys = [(now, i) for now, i, _d in fired]
        assert keys == sorted(keys)

    @given(st.lists(st.tuples(
        st.one_of(st.just(0.0),
                  st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False)),
        st.one_of(st.just(0.0),
                  st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False))),
        min_size=1, max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_nested_schedules_never_move_time_backwards(self, pairs):
        # Each item schedules a second callback from inside the first —
        # including zero delays at the current instant — exercising the
        # now-queue/heap interleaving that step() arbitrates.
        env = Environment()
        times = []

        def outer(d2):
            times.append(env.now)
            env.call_later(d2, lambda: times.append(env.now))

        for d1, d2 in pairs:
            env.call_later(d1, lambda d2=d2: outer(d2))
        env.run()
        assert len(times) == 2 * len(pairs)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_step_on_empty_calendar_raises(self):
        env = Environment()
        with pytest.raises(SimulationError, match="empty event calendar"):
            env.step()

    def test_peek_sees_now_queue_before_heap(self):
        env = Environment()
        env.schedule_callback(2.0, lambda: None)
        assert env.peek() == 2.0
        env.call_later(0.0, lambda: None)
        assert env.peek() == 0.0
        env.run()
        assert env.peek() == float("inf")
