"""ResultCache: hits, misses, salt invalidation, corruption handling."""

from repro.exec import ResultCache, ScenarioSpec, exec_stats

SPEC = ScenarioSpec.make("fig2", alpha=0.25, n_tasks=8)
PAYLOAD = {"runtime_s": 1.25, "series": {"a": [[0.0], [1.0]]}}


class TestCache:
    def test_miss_then_hit(self, cache_dir):
        cache = ResultCache(salt="v1")
        assert cache.root == cache_dir
        assert cache.get(SPEC) is None
        cache.put(SPEC, PAYLOAD)
        assert cache.get(SPEC) == PAYLOAD
        assert exec_stats.cache_misses == 1
        assert exec_stats.cache_hits == 1
        assert exec_stats.cache_stores == 1

    def test_spec_change_is_a_plain_miss(self, cache_dir):
        cache = ResultCache(salt="v1")
        cache.put(SPEC, PAYLOAD)
        other = ScenarioSpec.make("fig2", alpha=0.5, n_tasks=8)
        assert cache.get(other) is None
        assert exec_stats.cache_invalidations == 0
        # the original entry survives
        assert cache.get(SPEC) == PAYLOAD

    def test_salt_change_invalidates_stale_entry(self, cache_dir):
        old = ResultCache(salt="v1")
        old.put(SPEC, PAYLOAD)
        new = ResultCache(salt="v2")
        assert new.get(SPEC) is None
        assert exec_stats.cache_invalidations == 1
        # the stale blob is gone even for the old salt
        assert old.get(SPEC) is None
        assert exec_stats.cache_invalidations == 1

    def test_corrupt_blob_is_a_miss_and_recovers(self, cache_dir):
        cache = ResultCache(salt="v1")
        path = cache.put(SPEC, PAYLOAD)
        path.write_text("{not json")
        assert cache.get(SPEC) is None
        cache.put(SPEC, PAYLOAD)
        assert cache.get(SPEC) == PAYLOAD

    def test_payload_round_trips_exactly(self, cache_dir):
        cache = ResultCache(salt="v1")
        payload = {"x": 0.1 + 0.2, "y": [1e-300, 3, None, "s"],
                   "nested": {"z": False}}
        cache.put(SPEC, payload)
        assert cache.get(SPEC) == payload

    def test_clear(self, cache_dir):
        cache = ResultCache(salt="v1")
        cache.put(SPEC, PAYLOAD)
        assert cache.clear() == 1
        assert cache.get(SPEC) is None

    def test_explicit_root_beats_env(self, tmp_path, cache_dir):
        explicit = tmp_path / "elsewhere"
        cache = ResultCache(root=explicit, salt="v1")
        cache.put(SPEC, PAYLOAD)
        assert list(explicit.glob("s*-v*.json"))
        assert not cache_dir.exists()
