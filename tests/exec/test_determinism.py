"""The determinism contract: process == serial, byte for byte.

Byte-identity is asserted on the canonical JSON of the payloads — the
exact representation the on-disk cache stores — for the Fig. 2 sweep and
an HPCC slowdown suite (baseline + a scavenging workload), both at
reduced scale.
"""

import json

import pytest

from repro.core import DeploymentConfig
from repro.core.experiment import baseline_sweep
from repro.exec import (SweepRunner, fig2_sweep_specs, slowdown_suite_spec)
from repro.units import MB

TINY_CFG = DeploymentConfig(n_own=2, n_victim=6, alpha=0.25)


def _canon(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


class TestFig2Determinism:
    def test_process_equals_serial(self):
        specs = fig2_sweep_specs(n_tasks=8, file_size=16 * MB,
                                 keep_series=True)
        serial = SweepRunner("serial").run(specs)
        parallel = SweepRunner("process", jobs=2).run(specs)
        assert _canon(serial) == _canon(parallel)

    def test_sweep_matches_direct_runs(self):
        # The executor path must not perturb the simulation itself.
        from repro.core.experiment import baseline_run
        specs = fig2_sweep_specs(n_tasks=8, file_size=16 * MB)
        results = SweepRunner("serial").run(specs)
        for res in results:
            direct = baseline_run(res.payload["alpha"], n_tasks=8,
                                  file_size=16 * MB)
            assert res.payload["runtime_s"] == direct.runtime_s
            assert res.payload["victim_rx"] == direct.victim_rx


class TestSlowdownDeterminism:
    @pytest.mark.parametrize("workload", [None, "dd"])
    def test_process_equals_serial(self, workload):
        kwargs = {"n_tasks": 4, "file_size": 16 * MB}
        specs = [slowdown_suite_spec(
            TINY_CFG, "hpcc", suite_scale=0.05, workload=workload,
            workload_kwargs=kwargs if workload else None, warmup=3.0)]
        # Two independent scenario copies so the process pool has fan-out.
        specs = specs + [slowdown_suite_spec(
            TINY_CFG, "hpcc", suite_scale=0.1, workload=workload,
            workload_kwargs=kwargs if workload else None, warmup=3.0)]
        serial = SweepRunner("serial").run(specs)
        parallel = SweepRunner("process", jobs=2).run(specs)
        assert _canon(serial) == _canon(parallel)
        for res in serial:
            times = res.payload["runtimes_s"]
            assert times and all(t > 0 for t in times.values())


class TestBaselineSweepForwarding:
    def test_monitor_interval_and_keep_series_reach_the_run(self):
        metrics = baseline_sweep(n_tasks=4, file_size=8 * MB,
                                 alphas=(0.5,), monitor_interval=0.25,
                                 keep_series=True)
        series = metrics[0].series
        assert "victim.rx" in series
        times, values = series["victim.rx"]
        assert len(times) == len(values) > 0
        # 0.25 s sampling: consecutive stamps advance by the interval.
        if len(times) > 1:
            assert times[1] - times[0] == pytest.approx(0.25)

    def test_series_dropped_by_default(self):
        metrics = baseline_sweep(n_tasks=4, file_size=8 * MB,
                                 alphas=(0.5,))
        assert metrics[0].series == {}
