"""SweepRunner: backends, ordering, cache integration, crash surfacing."""

import json

import pytest

from repro.exec import (ResultCache, ScenarioError, ScenarioSpec,
                        SweepRunner, exec_stats, fig2_spec)
from repro.units import MB

TINY = dict(n_tasks=4, file_size=4 * MB)


def _payloads(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


class TestSerialBackend:
    def test_runs_in_spec_order(self):
        specs = [fig2_spec(a, **TINY) for a in (0.5, 0.0, 1.0)]
        results = SweepRunner("serial").run(specs)
        assert [r.spec for r in results] == specs
        assert [r.payload["alpha"] for r in results] == [0.5, 0.0, 1.0]
        assert all(not r.cached and r.wall_s > 0 for r in results)
        assert exec_stats.scenarios_run == 3
        assert exec_stats.sweeps_serial == 1

    def test_unknown_kind_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="unknown scenario kind"):
            SweepRunner("serial").run([ScenarioSpec.make("nonesuch")])
        assert exec_stats.worker_crashes == 1

    def test_executor_raise_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="debug-crash"):
            SweepRunner("serial").run([ScenarioSpec.make("debug-crash")])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner("threads")
        with pytest.raises(ValueError):
            SweepRunner("process", jobs=0)


class TestProcessBackend:
    def test_matches_serial_byte_for_byte(self):
        specs = [fig2_spec(a, **TINY, keep_series=True)
                 for a in (0.0, 0.5, 1.0)]
        serial = SweepRunner("serial").run(specs)
        parallel = SweepRunner("process", jobs=2,
                               auto_fallback=False).run(specs)
        assert _payloads(serial) == _payloads(parallel)
        assert [r.spec for r in parallel] == specs

    def test_soft_crash_surfaces_typed(self):
        specs = [fig2_spec(0.5, **TINY),
                 ScenarioSpec.make("debug-crash")]
        with pytest.raises(ScenarioError, match="debug-crash"):
            SweepRunner("process", jobs=2, auto_fallback=False).run(specs)
        assert exec_stats.worker_crashes == 1

    def test_pickle_hostile_exception_keeps_its_cause(self):
        # An executor exception that cannot cross the result channel
        # raw (args/__init__ mismatch) must still surface with its real
        # message, not dissolve into "pool broken".
        specs = [ScenarioSpec.make("debug-crash", pickle_hostile=True),
                 ScenarioSpec.make("debug-crash", pickle_hostile=True,
                                   tag=1)]
        with pytest.raises(ScenarioError,
                           match="13: debug-crash scenario failed") as err:
            SweepRunner("process", jobs=2, auto_fallback=False).run(specs)
        assert "pool broken" not in str(err.value)

    def test_scenario_error_pickles(self):
        import pickle

        err = pickle.loads(pickle.dumps(
            ScenarioError(fig2_spec(0.5, **TINY), "boom")))
        assert err.message == "boom"
        assert err.spec.param("alpha") == 0.5
        assert "failed: boom" in str(err)

    def test_worker_death_surfaces_typed(self):
        # hard=True makes the worker os._exit(3): the pool breaks and the
        # runner must surface it as ScenarioError, not hang.
        specs = [ScenarioSpec.make("debug-crash", hard=True),
                 ScenarioSpec.make("debug-crash", hard=True, tag=1)]
        with pytest.raises(ScenarioError, match="worker process died"):
            SweepRunner("process", jobs=2, auto_fallback=False).run(specs)
        assert exec_stats.worker_crashes == 1

    def test_single_pending_scenario_stays_in_process(self):
        # Degenerate fan-out of one: not worth a worker process.
        results = SweepRunner("process", jobs=4,
                              auto_fallback=False).run(
                                  [fig2_spec(0.5, **TINY)])
        assert results[0].payload["alpha"] == 0.5
        assert exec_stats.scenarios_run == 1


class TestAutoFallback:
    def test_single_cpu_falls_back_to_serial(self, monkeypatch, caplog):
        monkeypatch.setattr("repro.exec.runner.os.cpu_count", lambda: 1)
        specs = [fig2_spec(a, **TINY) for a in (0.0, 1.0)]
        with caplog.at_level("INFO", logger="repro.exec.runner"):
            results = SweepRunner("process", jobs=2).run(specs)
        assert [r.payload["alpha"] for r in results] == [0.0, 1.0]
        assert exec_stats.serial_fallbacks == 1
        assert exec_stats.sweeps_serial == 1
        assert exec_stats.sweeps_process == 0
        notes = [r for r in caplog.records if "serial backend" in r.message]
        assert len(notes) == 1

    def test_fallback_matches_process_byte_for_byte(self, monkeypatch):
        specs = [fig2_spec(a, **TINY, keep_series=True) for a in (0.0, 1.0)]
        process = SweepRunner("process", jobs=2,
                              auto_fallback=False).run(specs)
        monkeypatch.setattr("repro.exec.runner.os.cpu_count", lambda: 1)
        fallback = SweepRunner("process", jobs=2).run(specs)
        assert _payloads(process) == _payloads(fallback)

    def test_multi_cpu_keeps_the_process_backend(self, monkeypatch):
        monkeypatch.setattr("repro.exec.runner.os.cpu_count", lambda: 4)
        specs = [fig2_spec(a, **TINY) for a in (0.0, 1.0)]
        results = SweepRunner("process", jobs=2).run(specs)
        assert [r.payload["alpha"] for r in results] == [0.0, 1.0]
        assert exec_stats.serial_fallbacks == 0
        assert exec_stats.sweeps_process == 1

    def test_oversubscribed_jobs_clamped_to_cpu_count(self, monkeypatch):
        import repro.exec.runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 2)
        seen = {}
        real_pool = runner_mod.ProcessPoolExecutor

        def spy_pool(max_workers, mp_context):
            seen["max_workers"] = max_workers
            return real_pool(max_workers=max_workers, mp_context=mp_context)

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", spy_pool)
        specs = [fig2_spec(a, **TINY) for a in (0.0, 0.5, 1.0)]
        SweepRunner("process", jobs=8).run(specs)
        assert seen["max_workers"] == 2

    def test_opt_out_keeps_real_workers(self, monkeypatch):
        monkeypatch.setattr("repro.exec.runner.os.cpu_count", lambda: 1)
        runner = SweepRunner("process", jobs=2, auto_fallback=False)
        assert runner._effective_backend() == "process"
        assert exec_stats.serial_fallbacks == 0


class TestCacheIntegration:
    def test_warm_run_executes_nothing(self, cache_dir):
        specs = [fig2_spec(a, **TINY) for a in (0.0, 0.5, 1.0)]
        cache = ResultCache(salt="v1")
        cold = SweepRunner("serial", cache=cache).run(specs)
        assert exec_stats.scenarios_run == 3
        assert exec_stats.cache_stores == 3
        warm = SweepRunner("serial", cache=cache).run(specs)
        assert exec_stats.scenarios_run == 3  # unchanged: zero new sims
        assert exec_stats.cache_hits == 3
        assert all(r.cached for r in warm)
        assert _payloads(cold) == _payloads(warm)

    def test_cache_true_uses_default_location(self, cache_dir):
        specs = [fig2_spec(0.5, **TINY)]
        SweepRunner("serial", cache=True).run(specs)
        assert list(cache_dir.glob("s*-v*.json"))

    def test_process_backend_reads_and_feeds_the_cache(self, cache_dir):
        specs = [fig2_spec(a, **TINY) for a in (0.0, 0.5, 1.0)]
        cache = ResultCache(salt="v1")
        cold = SweepRunner("process", jobs=2, cache=cache,
                           auto_fallback=False).run(specs)
        warm = SweepRunner("serial", cache=cache).run(specs)
        assert all(r.cached for r in warm)
        assert _payloads(cold) == _payloads(warm)

    def test_partial_warmth_runs_only_the_new_specs(self, cache_dir):
        cache = ResultCache(salt="v1")
        SweepRunner("serial", cache=cache).run([fig2_spec(0.0, **TINY)])
        exec_stats.reset()
        specs = [fig2_spec(0.0, **TINY), fig2_spec(1.0, **TINY)]
        results = SweepRunner("serial", cache=cache).run(specs)
        assert [r.cached for r in results] == [True, False]
        assert exec_stats.scenarios_run == 1
