"""Shared fixtures: isolate the executor counters and the cache dir."""

import pytest

from repro.exec import exec_stats


@pytest.fixture(autouse=True)
def _fresh_exec_stats():
    exec_stats.reset()
    yield
    exec_stats.reset()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    root = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root
