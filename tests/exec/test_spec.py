"""ScenarioSpec: normalization, identity, fingerprints, picklability."""

import json
import pickle

import pytest

from repro.core import DeploymentConfig
from repro.exec import ScenarioSpec, fig2_spec


class TestNormalization:
    def test_param_order_is_irrelevant(self):
        a = ScenarioSpec.make("fig2", alpha=0.5, n_tasks=8)
        b = ScenarioSpec.make("fig2", n_tasks=8, alpha=0.5)
        assert a == b
        assert a.fingerprint("s") == b.fingerprint("s")

    def test_nested_containers_freeze(self):
        a = ScenarioSpec.make("k", opts={"b": [1, 2], "a": "x"})
        b = ScenarioSpec.make("k", opts={"a": "x", "b": (1, 2)})
        assert a == b
        assert a.param("opts") == {"a": "x", "b": [1, 2]}

    def test_unsupported_param_type_rejected(self):
        with pytest.raises(TypeError):
            ScenarioSpec.make("k", fn=lambda: None)

    def test_hashable_and_picklable(self):
        spec = fig2_spec(0.25, n_tasks=8, config=DeploymentConfig())
        assert spec in {spec}
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.fingerprint("s") == spec.fingerprint("s")

    def test_as_dict_is_json_safe(self):
        spec = fig2_spec(0.25, n_tasks=8, config=DeploymentConfig())
        blob = json.dumps(spec.as_dict(), sort_keys=True)
        assert json.loads(blob)["kind"] == "fig2"


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        cfg = DeploymentConfig(alpha=0.5)
        a = fig2_spec(0.5, n_tasks=16, config=cfg)
        b = fig2_spec(0.5, n_tasks=16, config=DeploymentConfig(alpha=0.5))
        assert a.fingerprint("v1") == b.fingerprint("v1")
        assert a.spec_key() == b.spec_key()

    @pytest.mark.parametrize("other", [
        fig2_spec(0.75, n_tasks=16),
        fig2_spec(0.5, n_tasks=17),
        fig2_spec(0.5, n_tasks=16, config=DeploymentConfig(n_victim=4)),
        fig2_spec(0.5, n_tasks=16, seed=7),
    ])
    def test_any_field_changes_it(self, other):
        base = fig2_spec(0.5, n_tasks=16)
        assert base.fingerprint("v1") != other.fingerprint("v1")
        assert base.spec_key() != other.spec_key()

    def test_salt_changes_fingerprint_not_spec_key(self):
        spec = fig2_spec(0.5, n_tasks=16)
        assert spec.fingerprint("v1") != spec.fingerprint("v2")
        assert spec.spec_key() == spec.spec_key()

    def test_seed_override_lands_in_config(self):
        spec = fig2_spec(0.5, config=DeploymentConfig(seed=3), seed=11)
        assert spec.deployment_config().seed == 11
        assert fig2_spec(0.5).deployment_config().seed == 0
