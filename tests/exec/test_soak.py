"""Chaos soak: randomized faults + capacity pressure never escape the
degradation taxonomy."""

import json

import pytest

from repro.core.degraded import DegradedReason
from repro.exec import run_scenario
from repro.exec.soak import (build_soak_schedule, run_soak, run_soak_suite,
                             soak_spec)

#: The acceptance bar: this many seeds, zero uncaught exceptions.
N_SEEDS = 20


class TestSchedule:
    def test_same_seed_same_schedule(self):
        assert build_soak_schedule(5).events == build_soak_schedule(5).events

    def test_different_seeds_differ(self):
        assert build_soak_schedule(0).events != build_soak_schedule(1).events

    def test_event_count_and_bounds(self):
        sched = build_soak_schedule(3, horizon=12.0, n_events=6)
        assert len(sched) == 6
        assert all(0.0 <= ev.at <= 12.0 for ev in sched)


class TestSoakRun:
    def test_registered_as_scenario(self):
        payload = run_scenario(soak_spec(0, n_tasks=4, n_events=2))
        assert payload["seed"] == 0
        assert "pressure" in payload and "faults" in payload

    def test_run_is_deterministic_and_json_safe(self):
        a = run_soak(soak_spec(3))
        b = run_soak(soak_spec(3))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_soak_20_seeds_zero_uncaught_exceptions(self):
        # Any exception outside DEGRADABLE_ERRORS propagates out of
        # run_soak_suite and fails this test — that IS the assertion.
        report = run_soak_suite(range(N_SEEDS))
        assert len(report["runs"]) == N_SEEDS
        assert report["completed"] + report["degraded"] == N_SEEDS
        valid = {r.value for r in DegradedReason}
        for run in report["runs"]:
            if run["completed"]:
                assert run["makespan_s"] > 0.0
                assert run["degraded"] is None
            else:
                assert run["degraded"]["reason"] in valid
        # The soak must actually exercise pressure: faults were injected
        # and the spill/degradation counters surface in the report.
        assert any(run["injected"] for run in report["runs"])
        totals = report["pressure_totals"]
        assert totals["writes_checked"] > 0
        assert totals["spilled_writes"] > 0
        json.dumps(report, sort_keys=True)   # artifact-safe

    def test_main_writes_artifact(self, tmp_path, capsys):
        from repro.exec.soak import main
        out = tmp_path / "pressure-metrics.json"
        assert main(["--seeds", "2", "--tasks", "6", "--out",
                     str(out)]) == 0
        report = json.loads(out.read_text())
        assert len(report["seeds"]) == 2
        assert "pressure_totals" in report
        assert "soak:" in capsys.readouterr().out
