"""Tests for nodes, memory accounting, and the fabric."""

import pytest

from repro.cluster import DAS5, Fabric, Node, OutOfMemory, build_das5
from repro.sim import Environment
from repro.units import GB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def node(env):
    return Node(env, "n0", DAS5)


class TestMachineSpec:
    def test_das5_constants(self):
        assert DAS5.cores == 32
        assert DAS5.memory == 64 * GB
        assert DAS5.nic_bandwidth == 6 * GB   # native verbs
        assert DAS5.ipoib_bandwidth == 3 * GB  # TCP-over-IB ceiling

    def test_validation(self):
        from dataclasses import replace
        with pytest.raises(ValueError):
            replace(DAS5, cores=0)
        with pytest.raises(ValueError):
            replace(DAS5, os_reserved=DAS5.memory)


class TestNodeMemory:
    def test_initial_free_excludes_os(self, node):
        assert node.memory_free == 60 * GB
        assert node.memory_allocated == 4 * GB

    def test_allocate_and_free(self, node):
        node.allocate_memory("tenant", 10 * GB)
        assert node.memory_owned_by("tenant") == 10 * GB
        assert node.memory_free == 50 * GB
        freed = node.free_memory("tenant", 4 * GB)
        assert freed == 4 * GB
        assert node.memory_owned_by("tenant") == 6 * GB

    def test_free_everything(self, node):
        node.allocate_memory("x", 5 * GB)
        assert node.free_memory("x") == 5 * GB
        assert node.memory_owned_by("x") == 0

    def test_free_more_than_held_clamps(self, node):
        node.allocate_memory("x", 2 * GB)
        assert node.free_memory("x", 100 * GB) == 2 * GB

    def test_overallocation_raises(self, node):
        with pytest.raises(OutOfMemory):
            node.allocate_memory("greedy", 61 * GB)

    def test_cumulative_allocations(self, node):
        node.allocate_memory("a", 10 * GB)
        node.allocate_memory("a", 10 * GB)
        assert node.memory_owned_by("a") == 20 * GB

    def test_page_cache_is_free_memory(self, node):
        assert node.page_cache_bytes == node.memory_free
        node.allocate_memory("tenant", 48 * GB)
        assert node.page_cache_bytes == 12 * GB

    def test_negative_amounts_rejected(self, node):
        with pytest.raises(ValueError):
            node.allocate_memory("a", -1)
        node.allocate_memory("a", 1 * GB)
        with pytest.raises(ValueError):
            node.free_memory("a", -1)

    def test_memory_utilization(self, node):
        node.allocate_memory("t", 28 * GB)
        assert node.memory_utilization == pytest.approx(0.5)


class TestFabric:
    def test_transfer_runs_at_nic_speed(self, env):
        cluster = build_das5(env, n_nodes=2)
        a, b = cluster.nodes
        f = cluster.fabric.transfer(a, b, 6 * GB)
        env.run(until=f.done)
        assert env.now == pytest.approx(1.0)

    def test_incast_shares_receiver_nic(self, env):
        cluster = build_das5(env, n_nodes=5)
        dst = cluster.nodes[0]
        flows = [cluster.fabric.transfer(src, dst, 6 * GB)
                 for src in cluster.nodes[1:]]
        env.run(until=env.all_of([f.done for f in flows]))
        assert env.now == pytest.approx(4.0)

    def test_local_transfer_uses_loopback_not_nic(self, env):
        cluster = build_das5(env, n_nodes=2)
        a = cluster.nodes[0]
        f = cluster.fabric.transfer(a, a, 48 * GB)
        assert a.nic_tx_utilization == 0.0
        env.run(until=f.done)
        assert env.now == pytest.approx(1.0)  # memory-bandwidth speed

    def test_latency_zero_local_positive_remote(self, env):
        cluster = build_das5(env, n_nodes=2)
        a, b = cluster.nodes
        assert cluster.fabric.latency(a, a) == 0.0
        assert cluster.fabric.latency(a, b) == pytest.approx(2e-6)

    def test_duplicate_attach_rejected(self, env):
        fabric = Fabric(env)
        n = Node(env, "x", DAS5)
        fabric.attach(n)
        with pytest.raises(ValueError):
            fabric.attach(n)

    def test_unattached_node_rejected(self, env):
        cluster = build_das5(env, n_nodes=1)
        stray = Node(env, "stray", DAS5)
        with pytest.raises(ValueError):
            cluster.fabric.transfer(cluster.nodes[0], stray, 1.0)

    def test_utilization_probes(self, env):
        cluster = build_das5(env, n_nodes=2)
        a, b = cluster.nodes
        cluster.fabric.transfer(a, b, None)  # persistent, saturates NIC
        assert a.nic_tx_utilization == pytest.approx(1.0)
        assert b.nic_rx_utilization == pytest.approx(1.0)
        assert b.nic_tx_utilization == 0.0


class TestBuildDas5:
    def test_node_count_and_names(self):
        cluster = build_das5(n_nodes=3)
        assert [n.name for n in cluster.nodes] == ["node000", "node001",
                                                   "node002"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_das5(n_nodes=0)

    def test_monitor_has_probes_for_all_nodes(self):
        cluster = build_das5(n_nodes=2)
        mon = cluster.monitor()
        assert "node000.cpu" in mon.series
        assert "node001.rx" in mon.series
