"""Tests for reservations, the scavenging queue, containers, and monitord."""

import pytest

from repro.cluster import (CapExceeded, Container, InsufficientNodes,
                           MemoryPressureMonitor, ResourceCaps, build_das5)
from repro.sim import Environment
from repro.units import GB


@pytest.fixture
def cluster():
    return build_das5(Environment(), n_nodes=6)


class TestReservation:
    def test_reserve_and_release(self, cluster):
        res = cluster.reservations.reserve("alice", 4)
        assert len(res.nodes) == 4
        assert len(cluster.reservations.free_nodes) == 2
        cluster.reservations.release(res)
        assert len(cluster.reservations.free_nodes) == 6
        assert not res.active

    def test_insufficient_raises(self, cluster):
        with pytest.raises(InsufficientNodes):
            cluster.reservations.reserve("bob", 7)

    def test_invalid_count(self, cluster):
        with pytest.raises(ValueError):
            cluster.reservations.reserve("bob", 0)

    def test_double_release_raises(self, cluster):
        res = cluster.reservations.reserve("alice", 1)
        cluster.reservations.release(res)
        with pytest.raises(KeyError):
            cluster.reservations.release(res)

    def test_node_hours_accounting(self, cluster):
        env = cluster.env
        res = cluster.reservations.reserve("alice", 2)

        def run():
            yield env.timeout(7200)
            cluster.reservations.release(res)

        env.process(run())
        env.run()
        assert res.node_hours == pytest.approx(4.0)  # 2 nodes x 2 h

    def test_node_hours_while_active(self, cluster):
        env = cluster.env
        res = cluster.reservations.reserve("alice", 3)

        def probe():
            yield env.timeout(3600)
            assert res.node_hours == pytest.approx(3.0)

        env.process(probe())
        env.run()


class TestScavengeQueue:
    def test_voluntary_registration(self, cluster):
        res = cluster.reservations.reserve("tenant", 2)
        offer = cluster.reservations.register_offer(
            res.nodes[0], 10 * GB, owner="tenant")
        assert offer.voluntary
        assert cluster.reservations.offers() == (offer,)

    def test_admin_enforced_covers_current_and_future(self, cluster):
        res1 = cluster.reservations.reserve("t1", 2)
        cluster.reservations.enforce_scavenging(10 * GB)
        assert len(cluster.reservations.offers()) == 2
        res2 = cluster.reservations.reserve("t2", 3)
        assert len(cluster.reservations.offers()) == 5
        assert all(not o.voluntary for o in cluster.reservations.offers())

    def test_enforce_invalid_cap(self, cluster):
        with pytest.raises(ValueError):
            cluster.reservations.enforce_scavenging(0)

    def test_lease_and_revoke(self, cluster):
        res = cluster.reservations.reserve("t", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB, owner="t")
        lease = cluster.reservations.lease(node, 8 * GB, holder="memfss")
        assert lease.active
        assert cluster.reservations.active_leases() == (lease,)
        n = cluster.reservations.revoke_leases(node, cause="pressure")
        assert n == 1
        assert not lease.active
        assert lease.revoked.value == "pressure"

    def test_lease_over_offer_rejected(self, cluster):
        res = cluster.reservations.reserve("t", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB)
        with pytest.raises(ValueError):
            cluster.reservations.lease(node, 11 * GB, holder="memfss")

    def test_lease_unregistered_node_rejected(self, cluster):
        res = cluster.reservations.reserve("t", 1)
        with pytest.raises(KeyError):
            cluster.reservations.lease(res.nodes[0], 1 * GB, holder="m")

    def test_release_withdraws_offers_and_leases(self, cluster):
        res = cluster.reservations.reserve("t", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB)
        lease = cluster.reservations.lease(node, 5 * GB, holder="m")
        cluster.reservations.release(res)
        assert not lease.active
        assert cluster.reservations.offers() == ()

    def test_noticed_revoke_pruned_after_deadline(self, cluster):
        # The with-notice path revokes through a deferred call_later;
        # the dead lease must still leave _leases, not pile up forever.
        res = cluster.reservations.reserve("t", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB, notice=3.0)
        lease = cluster.reservations.lease(node, 8 * GB, holder="memfss")
        n = cluster.reservations.revoke_leases(node, honor_notice=True)
        assert n == 1
        assert cluster.reservations.active_leases() == (lease,)  # draining
        cluster.env.run(until=3.1)
        assert lease.revoked.triggered
        assert cluster.reservations.active_leases() == ()
        assert cluster.reservations._leases == []

    def test_expired_termed_lease_pruned(self, cluster):
        res = cluster.reservations.reserve("t", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB, duration=5.0,
                                            notice=1.0)
        lease = cluster.reservations.lease(node, 8 * GB, holder="memfss")
        cluster.env.run(until=6.0)
        assert lease.revoked.triggered
        assert cluster.reservations.active_leases() == ()
        assert cluster.reservations._leases == []


class TestContainer:
    def test_memory_cap_enforced(self, cluster):
        node = cluster.nodes[0]
        c = Container(node, "scv", ResourceCaps(memory=10 * GB))
        c.allocate(8 * GB)
        assert c.memory_used == 8 * GB
        with pytest.raises(CapExceeded):
            c.allocate(3 * GB)

    def test_allocation_hits_node_accounting(self, cluster):
        node = cluster.nodes[0]
        c = Container(node, "scv", ResourceCaps(memory=10 * GB))
        c.allocate(6 * GB)
        assert node.memory_free == 54 * GB

    def test_release_returns_everything(self, cluster):
        node = cluster.nodes[0]
        c = Container(node, "scv", ResourceCaps(memory=10 * GB))
        c.allocate(6 * GB)
        assert c.release() == 6 * GB
        assert node.memory_free == 60 * GB

    def test_memory_available_is_min_of_cap_and_node(self, cluster):
        node = cluster.nodes[0]
        node.allocate_memory("tenant", 52 * GB)  # 8 GB left free
        c = Container(node, "scv", ResourceCaps(memory=10 * GB))
        assert c.memory_available == pytest.approx(8 * GB)

    def test_caps_validation(self):
        with pytest.raises(ValueError):
            ResourceCaps(memory=0)


class TestMemoryPressureMonitor:
    def test_revokes_lease_under_pressure(self, cluster):
        env = cluster.env
        res = cluster.reservations.reserve("tenant", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB)
        lease = cluster.reservations.lease(node, 10 * GB, holder="memfss")
        mon = MemoryPressureMonitor(env, node, cluster.reservations,
                                    threshold=8 * GB, interval=1.0)

        def tenant_burst():
            yield env.timeout(5)
            node.allocate_memory("tenant", 55 * GB)  # free drops to 5 GB
            yield env.timeout(3)
            mon.stop()

        env.process(tenant_burst())
        env.run(until=lease.revoked)
        # The burst lands before the monitor's t=5 tick, which sees it.
        assert env.now == pytest.approx(5.0)
        assert lease.revoked.value == "pressure"
        env.run()
        assert mon.revocations == 1

    def test_no_revocation_without_pressure(self, cluster):
        env = cluster.env
        res = cluster.reservations.reserve("tenant", 1)
        node = res.nodes[0]
        cluster.reservations.register_offer(node, 10 * GB)
        lease = cluster.reservations.lease(node, 10 * GB, holder="memfss")
        mon = MemoryPressureMonitor(env, node, cluster.reservations,
                                    threshold=1 * GB)

        def stopper():
            yield env.timeout(10)
            mon.stop()

        env.process(stopper())
        env.run()
        assert lease.active

    def test_validation(self, cluster):
        env = cluster.env
        with pytest.raises(ValueError):
            MemoryPressureMonitor(env, cluster.nodes[0],
                                  cluster.reservations, threshold=0)
        with pytest.raises(ValueError):
            MemoryPressureMonitor(env, cluster.nodes[0],
                                  cluster.reservations, threshold=1,
                                  interval=0)
