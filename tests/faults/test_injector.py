"""Tests for the deterministic fault injector and its schedule DSL."""

import pytest

from repro.cluster import build_das5
from repro.faults import (FaultEvent, FaultInjector, FaultSchedule,
                          fault_stats, revocation_storm)
from repro.fs import ClassSpec, MemFSS, PlacementMap, ScavengingManager
from repro.hashing import own_victim_weights
from repro.sim.rng import RngRegistry
from repro.store import StoreServer
from repro.units import GB


@pytest.fixture(autouse=True)
def _reset_stats():
    fault_stats.reset()
    yield
    fault_stats.reset()


def build_rig(n_own=2, n_victim=4, alpha=0.25, replication=1):
    cluster = build_das5(n_nodes=n_own + n_victim)
    env = cluster.env
    res = cluster.reservations
    own = list(res.reserve("memfss-user", n_own).nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric, capacity=10 * GB)
               for n in own}
    weights = own_victim_weights(alpha)
    policy = PlacementMap(
        {"own": ClassSpec(weights["own"], tuple(n.name for n in own))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy, stripe_size=64,
                replication=replication)
    tenant = res.reserve("tenant", n_victim)
    for node in tenant.nodes:
        res.register_offer(node, 2 * GB, owner="tenant")
    mgr = ScavengingManager(env, fs, res)
    mgr.scavenge(tenant.nodes, 2 * GB, weights["victim"])
    return cluster, fs, mgr, own, list(tenant.nodes)


def run(cluster, gen):
    proc = cluster.env.process(gen)
    return cluster.env.run(until=proc)


class TestScheduleDsl:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="meteor")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, kind="crash")
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="revoke_storm", fraction=1.5)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="degrade", duration=-1.0)

    def test_schedule_sorts_by_time(self):
        sched = FaultSchedule((FaultEvent(at=2.0, kind="crash"),
                               FaultEvent(at=1.0, kind="revoke")))
        assert [e.at for e in sched] == [1.0, 2.0]
        assert len(sched) == 2

    def test_extended(self):
        sched = revocation_storm(at=1.0, fraction=0.5)
        bigger = sched.extended(FaultEvent(at=0.5, kind="crash"))
        assert len(bigger) == 2 and bigger.events[0].kind == "crash"

    def test_revocation_storm_helper(self):
        sched = revocation_storm(at=3.0, fraction=0.25)
        (ev,) = sched.events
        assert ev.kind == "revoke_storm" and ev.fraction == 0.25


class TestRevocationStorm:
    def test_storm_revokes_fraction_and_data_survives(self):
        cluster, fs, mgr, own, victims = build_rig()
        blobs = {}
        for i in range(10):
            blob = bytes((7 * i + j) % 256 for j in range(640))
            run(cluster, fs.write_file(own[0], f"/f{i}", payload=blob))
            blobs[f"/f{i}"] = blob
        inj = FaultInjector(cluster.env, revocation_storm(at=0.01,
                                                          fraction=0.5),
                            manager=mgr,
                            reservations=cluster.reservations,
                            rng=RngRegistry(7))
        inj.start()
        cluster.env.run()
        assert fault_stats.revocations == 2     # half of 4 victims
        assert mgr.evictions == 2
        assert len(fs.servers) == len(own) + 2
        assert len(inj.log) == 1
        _t, kind, names = inj.log[0]
        assert kind == "revoke_storm" and len(names) == 2
        for path, blob in blobs.items():
            _n, back = run(cluster, fs.read_file(own[0], path))
            assert back == blob, path

    def test_storm_is_bit_reproducible(self):
        logs = []
        for _ in range(2):
            fault_stats.reset()
            cluster, fs, mgr, own, victims = build_rig()
            for i in range(6):
                run(cluster, fs.write_file(own[0], f"/f{i}",
                                           payload=bytes(640)))
            inj = FaultInjector(cluster.env,
                                revocation_storm(at=0.01, fraction=0.5),
                                manager=mgr,
                                reservations=cluster.reservations,
                                rng=RngRegistry(1234))
            inj.start()
            cluster.env.run()
            logs.append((tuple(inj.log), tuple(sorted(fs.servers))))
        assert logs[0] == logs[1]

    def test_different_seeds_may_pick_other_victims(self):
        picks = set()
        for seed in range(8):
            cluster, fs, mgr, own, victims = build_rig()
            inj = FaultInjector(
                cluster.env,
                FaultSchedule((FaultEvent(at=0.0, kind="revoke",
                                          cause="test"),)),
                manager=mgr, reservations=cluster.reservations,
                rng=RngRegistry(seed))
            inj.start()
            cluster.env.run()
            picks.add(inj.log[0][2])
        assert len(picks) > 1


class TestCrashFaults:
    def test_crash_downs_server_and_updates_policy(self):
        cluster, fs, mgr, own, victims = build_rig(replication=2)
        for i in range(6):
            run(cluster, fs.write_file(own[0], f"/f{i}", payload=bytes(640)))
        target = victims[0]
        sched = FaultSchedule((FaultEvent(at=0.01, kind="crash",
                                          target=target.name),))
        inj = FaultInjector(cluster.env, sched,
                            servers=lambda: fs.servers, manager=mgr)
        inj.start()
        cluster.env.run()
        assert fault_stats.crashes == 1
        assert target.name not in fs.servers
        assert target.name not in fs.policy.all_nodes
        assert fault_stats.open_faults == (target.name,)


class TestFabricFaults:
    def test_degrade_and_auto_restore(self):
        cluster, fs, mgr, own, victims = build_rig()
        fabric = cluster.fabric
        target = victims[0]
        nominal = [l.capacity for l in fabric.links_of(target.name)]
        sched = FaultSchedule((FaultEvent(at=0.0, kind="degrade",
                                          target=target.name, factor=0.1,
                                          duration=1.0),))
        inj = FaultInjector(cluster.env, sched, fabric=fabric)
        inj.start()

        def probe():
            yield cluster.env.timeout(0.5)
            mid = [l.capacity for l in fabric.links_of(target.name)]
            yield cluster.env.timeout(1.0)
            after = [l.capacity for l in fabric.links_of(target.name)]
            return mid, after

        mid, after = run(cluster, probe())
        assert mid == [c * 0.1 for c in nominal]
        assert after == nominal
        assert fault_stats.link_degradations == 1

    def test_partition_throttles_to_epsilon(self):
        cluster, fs, mgr, own, victims = build_rig()
        fabric = cluster.fabric
        target = victims[0]
        nominal = [l.capacity for l in fabric.links_of(target.name)]
        sched = FaultSchedule((FaultEvent(at=0.0, kind="partition",
                                          target=target.name,
                                          duration=0.5),))
        inj = FaultInjector(cluster.env, sched, fabric=fabric)
        inj.start()

        def probe():
            yield cluster.env.timeout(0.1)
            return [l.capacity for l in fabric.links_of(target.name)]

        cut = run(cluster, probe())
        assert all(c <= n * 1e-6 for c, n in zip(cut, nominal))
        cluster.env.run()
        assert [l.capacity
                for l in fabric.links_of(target.name)] == nominal
        assert fault_stats.partitions == 1


class TestPressureWaves:
    def test_wave_claims_and_releases_memory(self):
        cluster, fs, mgr, own, victims = build_rig()
        target = victims[0]
        free_before = target.memory_free
        sched = FaultSchedule((FaultEvent(at=0.0, kind="pressure_wave",
                                          target=target.name, factor=0.25,
                                          duration=1.0),))
        inj = FaultInjector(cluster.env, sched,
                            nodes=victims)
        inj.start()

        def probe():
            yield cluster.env.timeout(0.5)
            during = target.memory_free
            yield cluster.env.timeout(1.0)
            return during, target.memory_free

        during, after = run(cluster, probe())
        assert during < free_before
        assert after == free_before
        assert fault_stats.pressure_waves == 1


class TestLifecycle:
    def test_double_start_rejected(self):
        cluster, *_ = build_rig(n_victim=1)
        inj = FaultInjector(cluster.env, FaultSchedule())
        inj.start()
        with pytest.raises(RuntimeError):
            inj.start()
