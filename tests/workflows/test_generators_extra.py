"""Additional generator tests: scaling knobs and calibration properties."""

import pytest

from repro.units import GB
from repro.workflows import (MONTAGE_PAPER_WIDTH, blast, montage,
                             stage_statistics)


class TestMontageScaling:
    def test_parallel_task_scale_preserves_parallel_work(self):
        full = montage(width=64)
        scaled = montage(width=16, parallel_task_scale=4.0)

        def parallel_work(wf):
            return sum(t.compute_seconds for t in wf.tasks.values()
                       if t.stage in ("mProjectPP", "mDiffFit",
                                      "mBackground"))

        assert parallel_work(scaled) == pytest.approx(parallel_work(full))

    def test_parallel_task_scale_leaves_tail_alone(self):
        a = montage(width=16, parallel_task_scale=4.0)
        b = montage(width=16)
        assert a.tasks["mBgModel"].compute_seconds == \
            b.tasks["mBgModel"].compute_seconds

    def test_compute_scale_shrinks_everything(self):
        a = montage(width=8, compute_scale=0.1)
        b = montage(width=8)
        assert a.tasks["mBgModel"].compute_seconds == pytest.approx(
            b.tasks["mBgModel"].compute_seconds * 0.1)
        assert a.tasks["mProject-00000"].compute_seconds == pytest.approx(
            b.tasks["mProject-00000"].compute_seconds * 0.1)

    def test_data_scales_with_width(self):
        small = montage(width=32)
        big = montage(width=64)
        assert big.total_output_bytes > small.total_output_bytes * 1.8

    def test_sequential_tail_calibration(self):
        """The Table II fit: the tail is ~3950 core-seconds."""
        wf = montage(width=4)
        tail = sum(t.compute_seconds for t in wf.tasks.values()
                   if t.stage in ("mConcatFit", "mBgModel", "mImgtbl",
                                  "mShrink", "mJPEG"))
        tail += wf.tasks["mAdd-0"].compute_seconds  # runs n_adds-wide
        assert tail == pytest.approx(3950.0, rel=0.01)

    def test_parallel_work_calibration(self):
        """Parallel stages total ~110 core-seconds per width unit."""
        wf = montage(width=128)
        par = sum(t.compute_seconds for t in wf.tasks.values()
                  if t.stage in ("mProjectPP", "mDiffFit", "mBackground"))
        assert par / 128 == pytest.approx(110.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            montage(width=8, parallel_task_scale=0)


class TestBlastKnobs:
    def test_split_seconds_configurable(self):
        wf = blast(n_searches=4, split_seconds=5.0)
        assert wf.tasks["split"].compute_seconds == 5.0

    def test_request_granularity_scales_requests(self):
        coarse = blast(n_searches=4, request_granularity=1 * GB)
        fine = blast(n_searches=4, request_granularity=1024)
        assert fine.tasks["search-0000"].inputs[0].n_files > \
            coarse.tasks["search-0000"].inputs[0].n_files

    def test_searches_stream_their_io(self):
        wf = blast(n_searches=2)
        assert wf.tasks["search-0000"].io_slices > 1
        assert wf.tasks["split"].io_slices == 1
