"""Tests for the workflow DAG model and generators."""

import pytest

from repro.units import GB, MB
from repro.workflows import (CycleError, FileSpec, Task, Workflow,
                             achieved_parallelism, blast, dd_bag,
                             ideal_parallelism_profile, montage,
                             stage_statistics)


def diamond():
    return Workflow("diamond", [
        Task(id="a", stage="s1", compute_seconds=1,
             outputs=(FileSpec("/x", 10),)),
        Task(id="b", stage="s2", compute_seconds=2,
             inputs=(FileSpec("/x", 10),), outputs=(FileSpec("/y", 10),)),
        Task(id="c", stage="s2", compute_seconds=3,
             inputs=(FileSpec("/x", 10),), outputs=(FileSpec("/z", 10),)),
        Task(id="d", stage="s3", compute_seconds=1,
             inputs=(FileSpec("/y", 10), FileSpec("/z", 10))),
    ])


class TestWorkflow:
    def test_file_dependencies_resolved(self):
        wf = diamond()
        assert wf.dependencies("a") == frozenset()
        assert wf.dependencies("b") == {"a"}
        assert wf.dependencies("d") == {"b", "c"}

    def test_topological_order_valid(self):
        wf = diamond()
        order = wf.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for tid in wf.tasks:
            for dep in wf.dependencies(tid):
                assert pos[dep] < pos[tid]

    def test_cycle_detected(self):
        with pytest.raises(CycleError):
            Workflow("loop", [
                Task(id="a", stage="s", inputs=(FileSpec("/b", 1),),
                     outputs=(FileSpec("/a", 1),)),
                Task(id="b", stage="s", inputs=(FileSpec("/a", 1),),
                     outputs=(FileSpec("/b", 1),)),
            ])

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError):
            Workflow("dup", [Task(id="a", stage="s"),
                             Task(id="a", stage="s")])

    def test_duplicate_producer_rejected(self):
        with pytest.raises(ValueError):
            Workflow("dup", [
                Task(id="a", stage="s", outputs=(FileSpec("/x", 1),)),
                Task(id="b", stage="s", outputs=(FileSpec("/x", 1),)),
            ])

    def test_unknown_extra_dep_rejected(self):
        with pytest.raises(ValueError):
            Workflow("bad", [Task(id="a", stage="s", extra_deps=("ghost",))])

    def test_external_inputs(self):
        wf = diamond()
        assert wf.external_inputs() == []
        wf2 = Workflow("ext", [
            Task(id="a", stage="s", inputs=(FileSpec("/staged", 5),))])
        assert wf2.external_inputs() == ["/staged"]

    def test_consumers_and_producer(self):
        wf = diamond()
        assert wf.producer_of("/x") == "a"
        assert sorted(wf.consumers_of("/x")) == ["b", "c"]
        assert wf.producer_of("/missing") is None

    def test_critical_path(self):
        wf = diamond()
        assert wf.critical_path_seconds() == pytest.approx(5.0)  # a,c,d

    def test_stages_in_order(self):
        assert diamond().stages() == ["s1", "s2", "s3"]

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task(id="t", stage="s", compute_seconds=-1)
        with pytest.raises(ValueError):
            Task(id="t", stage="s", cores=0)
        with pytest.raises(ValueError):
            FileSpec("/x", nbytes=-1)
        with pytest.raises(ValueError):
            FileSpec("/x", nbytes=1, n_files=0)


class TestGenerators:
    def test_dd_bag_shape(self):
        wf = dd_bag(n_tasks=16, file_size=128 * MB)
        assert len(wf) == 16
        assert wf.total_output_bytes == 16 * 128 * MB
        assert all(not wf.dependencies(t) for t in wf.tasks)

    def test_dd_bag_paper_default_totals_256gb(self):
        wf = dd_bag()
        assert len(wf) == 2048
        assert wf.total_output_bytes == pytest.approx(256 * GB)

    def test_montage_structure(self):
        wf = montage(width=8)
        stages = wf.stages()
        assert stages == ["mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
                          "mBackground", "mImgtbl", "mAdd", "mShrink",
                          "mJPEG"]
        # The tail is sequential: single-task stages.
        for s in ("mConcatFit", "mBgModel", "mImgtbl", "mShrink", "mJPEG"):
            assert len(wf.stage_tasks(s)) == 1
        # mBgModel must wait for every diff (through mConcatFit).
        order = wf.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        assert pos["mBgModel"] > pos["mConcatFit"]
        assert all(pos["mConcatFit"] > pos[f"mDiffFit-{i:05d}"]
                   for i in range(8))

    def test_montage_paper_instance_writes_about_1tb(self):
        wf = montage()  # paper defaults
        assert wf.total_output_bytes == pytest.approx(1.1 * 1024 * GB,
                                                      rel=0.15)

    def test_montage_limited_parallelism(self):
        wf = montage(width=64)
        # Sequential tail dominates the critical path.
        ap = achieved_parallelism(wf)
        assert ap < 64 * 0.2

    def test_blast_structure(self):
        wf = blast(n_searches=8)
        assert wf.stages() == ["split", "search", "merge"]
        assert len(wf.stage_tasks("search")) == 8
        assert wf.dependencies("merge") == {
            f"search-{i:04d}" for i in range(8)}

    def test_blast_many_small_requests(self):
        wf = blast(n_searches=4)
        search = wf.tasks["search-0000"]
        # 256 MB chunks at 64 KB granularity -> thousands of requests.
        assert search.inputs[0].n_files >= 1000

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            dd_bag(n_tasks=0)
        with pytest.raises(ValueError):
            montage(width=0)
        with pytest.raises(ValueError):
            blast(n_searches=0)


class TestAnalysis:
    def test_stage_statistics(self):
        wf = diamond()
        stats = {s.stage: s for s in stage_statistics(wf)}
        assert stats["s2"].n_tasks == 2
        assert stats["s2"].total_compute == 5.0

    def test_ideal_profile_diamond(self):
        wf = diamond()
        times, widths = ideal_parallelism_profile(wf)
        # Peak width 2 while b and c overlap.
        assert widths.max() == 2
        assert widths[-1] == 0

    def test_achieved_parallelism_bag_is_task_count_scale(self):
        wf = dd_bag(n_tasks=10, compute_seconds=1.0)
        assert achieved_parallelism(wf) == pytest.approx(10.0)
