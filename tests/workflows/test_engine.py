"""Tests for the workflow execution engine over MemFSS."""

import pytest

from repro.cluster import build_das5
from repro.fs import ClassSpec, MemFSS, PlacementMap
from repro.store import StoreServer
from repro.units import GB, MB
from repro.workflows import (FileSpec, Task, Workflow, WorkflowEngine,
                             dd_bag)


def make_fs(n_own=2, capacity=20 * GB, stripe_size=4 * MB):
    cluster = build_das5(n_nodes=n_own)
    env = cluster.env
    own = list(cluster.nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric, capacity=capacity)
               for n in own}
    policy = PlacementMap(
        {"own": ClassSpec(0.0, tuple(n.name for n in own))})
    fs = MemFSS(env, cluster.fabric, own, servers, policy,
                stripe_size=stripe_size)
    return cluster, fs


class TestEngineBasics:
    def test_single_task_runs(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs)
        wf = Workflow("one", [Task(id="t", stage="s", compute_seconds=5.0,
                                   outputs=(FileSpec("/o", 1 * MB),))])
        res = eng.execute(wf)
        assert res.makespan >= 5.0
        assert res.tasks["t"].written_bytes == 1 * MB

    def test_dependencies_respected(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs)
        wf = Workflow("chain", [
            Task(id="a", stage="s", compute_seconds=2,
                 outputs=(FileSpec("/x", 1 * MB),)),
            Task(id="b", stage="s", compute_seconds=2,
                 inputs=(FileSpec("/x", 1 * MB),),
                 outputs=(FileSpec("/y", 1 * MB),)),
        ])
        res = eng.execute(wf)
        assert res.tasks["b"].start >= res.tasks["a"].end

    def test_parallel_tasks_overlap(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs)
        wf = dd_bag(n_tasks=8, file_size=1 * MB, compute_seconds=10.0)
        res = eng.execute(wf)
        # 8 independent 10 s tasks on 64 slots: makespan ~10 s, not 80 s.
        assert res.makespan < 15.0

    def test_slots_limit_concurrency(self):
        cluster, fs = make_fs(n_own=1)
        eng = WorkflowEngine(cluster.env, fs, slots_per_node=2)
        wf = dd_bag(n_tasks=6, file_size=0.0, compute_seconds=10.0)
        res = eng.execute(wf)
        # 6 tasks, 2 at a time, cpu shared by <=2... each task needs 10
        # core-s at cap 1 core: 3 waves of 10 s.
        assert res.makespan == pytest.approx(30.0, rel=0.05)

    def test_external_inputs_staged(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs)
        wf = Workflow("ext", [
            Task(id="t", stage="s", compute_seconds=1,
                 inputs=(FileSpec("/staged/in", 8 * MB),),
                 outputs=(FileSpec("/out", 1 * MB),)),
        ])
        res = eng.execute(wf)
        assert res.tasks["t"].read_bytes == 8 * MB

    def test_gc_unlinks_consumed_intermediates(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs, gc_intermediates=True)
        wf = Workflow("gc", [
            Task(id="a", stage="s", compute_seconds=1,
                 outputs=(FileSpec("/mid", 4 * MB),)),
            Task(id="b", stage="s", compute_seconds=1,
                 inputs=(FileSpec("/mid", 4 * MB),),
                 outputs=(FileSpec("/end", 1 * MB),)),
        ])
        eng.execute(wf)

        def check():
            return (yield from fs.exists(fs.own_nodes[0], "/mid"))

        proc = cluster.env.process(check())
        assert cluster.env.run(until=proc) is False

    def test_no_gc_keeps_everything(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs, gc_intermediates=False)
        wf = Workflow("keep", [
            Task(id="a", stage="s", compute_seconds=1,
                 outputs=(FileSpec("/mid", 4 * MB),)),
            Task(id="b", stage="s", compute_seconds=1,
                 inputs=(FileSpec("/mid", 4 * MB),)),
        ])
        eng.execute(wf)

        def check():
            return (yield from fs.exists(fs.own_nodes[0], "/mid"))

        proc = cluster.env.process(check())
        assert cluster.env.run(until=proc) is True

    def test_peak_bytes_tracked(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs, gc_intermediates=False)
        wf = dd_bag(n_tasks=4, file_size=8 * MB)
        res = eng.execute(wf)
        assert res.peak_bytes >= 4 * 8 * MB

    def test_stage_span(self):
        cluster, fs = make_fs()
        eng = WorkflowEngine(cluster.env, fs)
        wf = Workflow("two", [
            Task(id="a", stage="first", compute_seconds=2,
                 outputs=(FileSpec("/x", 1 * MB),)),
            Task(id="b", stage="second", compute_seconds=2,
                 inputs=(FileSpec("/x", 1 * MB),)),
        ])
        res = eng.execute(wf)
        f0, f1 = res.stage_span("first")
        s0, s1 = res.stage_span("second")
        assert f1 <= s0 + 1e-9
        with pytest.raises(KeyError):
            res.stage_span("nope")

    def test_io_bound_bag_bound_by_nic(self):
        """A dd bag writing far more than the NICs can move: makespan is
        close to bytes / aggregate NIC bandwidth."""
        cluster, fs = make_fs(n_own=2, capacity=40 * GB)
        eng = WorkflowEngine(cluster.env, fs)
        wf = dd_bag(n_tasks=64, file_size=256 * MB, compute_seconds=0.01)
        res = eng.execute(wf)
        total = 64 * 256 * MB
        # 2 own nodes, writes go to both (local ones are loopback-fast).
        # Full-speed bound: total/2 NICs; allow generous slack.
        lower = total / 2 / (3 * GB) * 0.4
        assert res.makespan > lower

    def test_validation(self):
        cluster, fs = make_fs()
        with pytest.raises(ValueError):
            WorkflowEngine(cluster.env, fs, workers=[])
        with pytest.raises(ValueError):
            WorkflowEngine(cluster.env, fs, slots_per_node=0)

    def test_deterministic_makespan(self):
        def go():
            cluster, fs = make_fs()
            eng = WorkflowEngine(cluster.env, fs)
            return eng.execute(dd_bag(n_tasks=12, file_size=4 * MB)).makespan

        assert go() == go()
