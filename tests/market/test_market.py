"""Tests for the lease marketplace: risk pricing, notice semantics, the
epoch controller, and the plan-diff rebalance."""

import pytest

from repro.core import (ClassTarget, DeploymentConfig, MemFSSDeployment,
                        PlacementPolicy)
from repro.fs import pressure_stats
from repro.market import (MarketBook, MarketController, lease_discount,
                          market_spec, market_stats, run_market)
from repro.store import StoreError, StoreErrorCode
from repro.units import MB


def small_deployment(seed=0, n_victim=4):
    return MemFSSDeployment(DeploymentConfig(
        n_own=2, n_victim=n_victim, victim_memory=64 * MB,
        own_store_capacity=256 * MB, stripe_size=4 * MB,
        seed=seed).with_alpha(0.25))


def make_controller(dep, **kwargs):
    return MarketController(dep.env, dep.fs, dep.manager,
                            dep.cluster.reservations,
                            dep.placement_policy, **kwargs)


class TestRiskPricing:
    def test_legacy_open_ended_full_value(self):
        dep = small_deployment()
        lease = dep.manager.leases[dep.victims[0].name]
        assert lease.expires_at is None and lease.notice == 0.0
        assert lease_discount(lease, dep.env.now) == 1.0

    def test_noticed_lease_worth_nothing(self):
        dep = small_deployment()
        lease = dep.manager.leases[dep.victims[0].name]
        lease.revoke_with_notice("pressure", notice=5.0)
        assert lease_discount(lease, dep.env.now) == 0.0

    def test_termed_lease_decays_with_remaining(self):
        dep = small_deployment()
        res = dep.cluster.reservations
        node = dep.victims[0]
        lease = dep.manager.leases[node.name]
        lease.revoke("make room")
        dep.manager.leases.pop(node.name)
        res.register_offer(node, 32 * MB, duration=15.0, notice=4.0)
        termed = res.lease(node, 32 * MB, holder="test")
        # remaining=15 < horizon=30 → remaining/horizon; notice 4 >= 2
        # caps the notice factor at 1.
        assert lease_discount(termed, dep.env.now, horizon=30.0,
                              short_notice=2.0) \
            == pytest.approx(15.0 / 30.0)

    def test_short_notice_scales_down(self):
        dep = small_deployment()
        res = dep.cluster.reservations
        node = dep.victims[1]
        dep.manager.leases[node.name].revoke("make room")
        dep.manager.leases.pop(node.name)
        res.register_offer(node, 32 * MB, duration=60.0, notice=1.0)
        termed = res.lease(node, 32 * MB, holder="test")
        assert lease_discount(termed, dep.env.now, horizon=30.0,
                              short_notice=2.0) == pytest.approx(0.5)

    def test_open_ended_notice_never_priced_below_legacy(self):
        # Monotonicity: some notice is strictly safer than none, so an
        # open-ended lease with a short notice term must keep the legacy
        # full-value pricing, not drop below the zero-notice kind.
        dep = small_deployment()
        res = dep.cluster.reservations
        node = dep.victims[2]
        dep.manager.leases[node.name].revoke("make room")
        dep.manager.leases.pop(node.name)
        res.register_offer(node, 32 * MB, notice=1.0)   # open-ended
        noticed = res.lease(node, 32 * MB, holder="test")
        assert lease_discount(noticed, dep.env.now,
                              short_notice=2.0) == 1.0


class TestNoticeSemantics:
    def test_notice_fires_then_revokes_after_period(self):
        dep = small_deployment()
        env = dep.env
        lease = dep.manager.leases[dep.victims[0].name]
        lease.revoke_with_notice("pressure", notice=3.0)
        assert lease.notified.triggered
        assert not lease.revoked.triggered
        env.run(until=2.9)
        assert not lease.revoked.triggered
        env.run(until=3.1)
        assert lease.revoked.triggered

    def test_repeat_notice_keeps_earliest_deadline(self):
        dep = small_deployment()
        env = dep.env
        lease = dep.manager.leases[dep.victims[0].name]
        lease.revoke_with_notice("first", notice=2.0)
        lease.revoke_with_notice("second", notice=10.0)
        env.run(until=2.5)
        assert lease.revoked.triggered

    def test_termed_lease_auto_expires_with_notice(self):
        dep = small_deployment()
        env = dep.env
        res = dep.cluster.reservations
        node = dep.victims[0]
        dep.manager.leases[node.name].revoke("make room")
        dep.manager.leases.pop(node.name)
        res.register_offer(node, 32 * MB, duration=10.0, notice=3.0)
        lease = res.lease(node, 32 * MB, holder="test")
        env.run(until=6.9)          # notice due at duration - notice = 7
        assert not lease.notified.triggered
        env.run(until=7.1)
        assert lease.notified.triggered
        assert not lease.revoked.triggered
        env.run(until=10.1)         # revocation lands at the full term
        assert lease.revoked.triggered


class TestMarketBook:
    def test_publish_replaces_and_orders(self):
        book = MarketBook()

        class N:
            def __init__(self, name):
                self.name = name

        book.publish(N("b"), 10.0)
        book.publish(N("a"), 10.0)
        book.publish(N("b"), 20.0)      # repost replaces
        pending = book.pending_offers()
        assert [o.node.name for o in pending] == ["a", "b"]
        assert pending[1].memory == 20.0

    def test_validation(self):
        book = MarketBook()
        with pytest.raises(ValueError):
            book.submit("t", 0)


class TestController:
    def test_idle_market_is_byte_identical(self):
        """A controller with an empty book must not perturb placement,
        stored bytes, or file contents — the static path exactly."""
        def drive(dep, with_controller):
            env = dep.env
            ctl = None
            if with_controller:
                ctl = make_controller(dep, epoch=1.0)
                ctl.start()
            agent = dep.own[0]

            def writer():
                for i in range(6):
                    payload = bytes([i + 1]) * (3 * MB)
                    yield from dep.fs.write_file(agent, f"/f{i}",
                                                 payload=payload)
                    yield env.timeout(1.5)
            env.process(writer())
            env.run(until=12.0)
            if ctl is not None:
                ctl.stop()
            state = {name: s.kv.used_bytes
                     for name, s in dep.fs.servers.items()}
            payloads = {}

            def reader():
                for i in range(6):
                    _, data = yield from dep.fs.read_file(agent, f"/f{i}")
                    payloads[i] = data
            env.process(reader())
            env.run()
            return dep.fs.policy.snapshot(), state, payloads, ctl

        base_snap, base_state, base_payloads, _ = \
            drive(small_deployment(seed=3), False)
        market_stats.reset()
        ctl_snap, ctl_state, ctl_payloads, ctl = \
            drive(small_deployment(seed=3), True)
        assert ctl_snap == base_snap
        assert ctl_state == base_state
        assert ctl_payloads == base_payloads
        assert market_stats.idle_epochs == market_stats.epochs > 0
        assert market_stats.bytes_migrated == 0

    def test_target_alpha_law(self):
        dep = small_deployment()
        ctl = make_controller(dep, supply_target=1.0)
        ctl.submit_demand("t", 512 * MB)     # supply 256 MB, demand 512
        assert ctl.target_alpha() == pytest.approx(0.5)
        ctl2 = make_controller(dep, supply_target=0.85)
        ctl2.submit_demand("t", 512 * MB)
        assert ctl2.target_alpha() == pytest.approx(
            round(1.0 - 0.85 * 256 / 512, 3))

    def test_alpha_clamped_to_floor_and_ceiling(self):
        dep = small_deployment()
        ctl = make_controller(dep, alpha_floor=0.25, alpha_ceil=0.9)
        ctl.submit_demand("t", 1 * MB)       # plentiful supply → floor
        assert ctl.target_alpha() == 0.25

    def test_grant_creates_termed_lease_and_grows_class(self):
        dep = small_deployment(n_victim=3)
        env = dep.env
        # Tear one victim out of the initial deployment, then re-admit
        # it through the market with terms.
        node = dep.victims[0]
        lease = dep.manager.leases[node.name]
        lease.revoke("make room")
        env.run(until=1.0)                  # let the drain finish
        assert node.name not in dep.fs.servers
        ctl = make_controller(dep, epoch=1.0)
        ctl.start()
        ctl.publish(node, 32 * MB, duration=30.0, notice=3.0)
        env.run(until=2.5)                  # next epoch grants
        ctl.stop()
        granted = dep.manager.leases[node.name]
        assert granted.active
        assert granted.notice == 3.0
        assert granted.expires_at is not None
        assert node.name in dep.fs.policy.classes["victim"].nodes
        assert market_stats.leases_granted >= 1

    def test_retune_requires_fraction_policy_with_own(self):
        # with_fraction("own", α) on the retune path would crash on the
        # first non-idle epoch for weight-targeted policies (or fraction
        # policies without an "own" class) — rejected at construction.
        dep = small_deployment()
        weighted = PlacementPolicy.make(
            {"own": ClassTarget(weight=0.0),
             "victim": ClassTarget(weight=5.0)})
        with pytest.raises(ValueError, match="retune"):
            MarketController(dep.env, dep.fs, dep.manager,
                             dep.cluster.reservations, weighted)
        no_own = PlacementPolicy.make({"hot": 0.5, "cold": 0.5})
        with pytest.raises(ValueError, match="retune"):
            MarketController(dep.env, dep.fs, dep.manager,
                             dep.cluster.reservations, no_own)
        # retune=False runs any policy (α pinned to the floor).
        ctl = MarketController(dep.env, dep.fs, dep.manager,
                               dep.cluster.reservations, weighted,
                               retune=False)
        assert ctl.alpha == ctl.alpha_floor
        assert ctl.target_alpha() == ctl.alpha

    def test_offer_for_draining_node_stays_pending(self):
        dep = small_deployment(n_victim=3)
        env = dep.env
        node = dep.victims[0]
        dep.manager.leases[node.name].revoke_with_notice(
            "pressure", notice=5.0)
        ctl = make_controller(dep, epoch=1.0)
        ctl.start()
        ctl.publish(node, 32 * MB, duration=30.0, notice=2.0)
        env.run(until=1.5)                  # node still draining
        assert ctl.book.pending_offers()    # not dropped
        env.run(until=8.0)                  # drained, then re-granted
        ctl.stop()
        assert not ctl.book.pending_offers()
        assert dep.manager.leases[node.name].active


class TestRebalance:
    def write_files(self, dep, n=6, size=12 * MB):
        agent = dep.own[0]
        payloads = {}

        def writer():
            for i in range(n):
                payload = bytes([(i % 250) + 1]) * int(size)
                payloads[f"/f{i}"] = payload
                yield from dep.fs.write_file(agent, f"/f{i}",
                                             payload=payload)
        dep.env.process(writer())
        dep.env.run()
        return payloads

    def test_plan_diff_exactness_and_byte_identity(self):
        dep = small_deployment(seed=11)
        env = dep.env
        payloads = self.write_files(dep)
        agent = dep.own[0]

        # Predict the diff with the same plans the rebalance will use.
        old_map = dep.fs.policy
        new_map = old_map.reweighted(
            dep.placement_policy.with_fraction("own", 0.75).weights())
        want = max(dep.fs.replication, 1)
        expected_moves = 0
        metas = {}

        def stat_all():
            for path in sorted(payloads):
                metas[path] = yield from dep.fs.stat(agent, path)
        env.process(stat_all())
        env.run()
        for path, meta in metas.items():
            old_plan = old_map.plan_file(meta.inode, meta.n_stripes)
            new_plan = new_map.plan_file(meta.inode, meta.n_stripes)
            for idx in range(len(old_plan.keys)):
                oc, nc = (old_plan.chain(idx, k=want),
                          new_plan.chain(idx, k=want))
                expected_moves += len([t for t in nc if t not in oc])

        summaries = []

        def retune():
            s = yield from dep.manager.rebalance(new_map)
            summaries.append(s)
        env.process(retune())
        env.run()
        summary = summaries[0]
        assert summary["moved_stripes"] == expected_moves
        assert summary["moved_bytes"] == expected_moves * 4 * MB
        assert summary["freed_bytes"] == summary["moved_bytes"]
        assert summary["deferred_files"] == 0

        # Byte identity: every file reads back exactly as written.
        got = {}

        def reader():
            for path in sorted(payloads):
                _, data = yield from dep.fs.read_file(agent, path)
                got[path] = data
        env.process(reader())
        env.run()
        assert got == payloads

    def test_rebalance_respects_budget(self):
        dep = small_deployment(seed=12)
        env = dep.env
        self.write_files(dep)
        new_map = dep.fs.policy.reweighted(
            dep.placement_policy.with_fraction("own", 0.75).weights())
        summaries = []

        def retune():
            s = yield from dep.manager.rebalance(new_map,
                                                 budget_bytes=8 * MB)
            summaries.append(s)
        env.process(retune())
        env.run()
        assert summaries[0]["deferred_files"] > 0
        # The budget is checked per file, so the worst overshoot is one
        # whole file (12 MB) past the 8 MB allowance.
        assert summaries[0]["moved_bytes"] <= 20 * MB

    def test_dropped_copies_never_orphan_the_last_replica(self):
        """A retune whose copies cannot land anywhere (cluster at
        capacity) must keep the old-chain holders — deleting them after
        a failed copy loses the only replica (REVIEW high finding)."""
        dep = MemFSSDeployment(DeploymentConfig(
            n_own=2, n_victim=4, victim_memory=64 * MB,
            own_store_capacity=40 * MB, stripe_size=4 * MB,
            seed=21).with_alpha(0.25))
        env = dep.env
        agent = dep.own[0]
        payloads = {}

        def writer():
            # Fill until a stripe no longer fits anywhere: every store
            # is then below the admission threshold for one stripe.
            for i in range(200):
                payload = bytes([(i % 250) + 1]) * (4 * MB)
                try:
                    yield from dep.fs.write_file(agent, f"/f{i}",
                                                 payload=payload)
                except StoreError as exc:
                    assert exc.code is StoreErrorCode.FULL
                    break
                payloads[f"/f{i}"] = payload
        env.process(writer())
        env.run()
        assert payloads

        pressure_stats.reset()
        new_map = dep.fs.policy.reweighted(
            dep.placement_policy.with_fraction("own", 0.99).weights())
        summaries = []

        def retune():
            summaries.append((yield from dep.manager.rebalance(new_map)))
        env.process(retune())
        env.run()
        assert pressure_stats.evac_drops > 0     # the failure path ran

        # Every fully written file still reads back byte-identical
        # through the flipped metadata (full rank-chain walk).
        got = {}

        def reader():
            for path in sorted(payloads):
                _, data = yield from dep.fs.read_file(agent, path)
                got[path] = data
        env.process(reader())
        env.run()
        assert got == payloads

    def test_noop_rebalance_moves_nothing(self):
        dep = small_deployment(seed=13)
        env = dep.env
        self.write_files(dep, n=3)
        summaries = []

        def retune():
            s = yield from dep.manager.rebalance(dep.fs.policy)
            summaries.append(s)
        env.process(retune())
        env.run()
        assert summaries[0]["moved_stripes"] == 0
        assert summaries[0]["freed_bytes"] == 0


class TestScenario:
    def test_deterministic_payload(self):
        spec = market_spec(5, "controller", n_tasks=24, file_size=8 * MB,
                           compute_seconds=0.5, horizon=6.0, n_events=3)
        a = run_market(spec)
        b = run_market(spec)
        assert a == b

    def test_no_data_loss_and_trace(self):
        # epoch shorter than the makespan so the controller actually
        # clears a few rounds inside this scaled-down run.
        out = run_market(market_spec(5, "controller", n_tasks=24,
                                     file_size=8 * MB,
                                     compute_seconds=0.5, horizon=6.0,
                                     n_events=3, epoch=0.25))
        assert out["lost_files"] == []
        assert out["market"]["epochs"] > 0

    def test_calm_mode_has_no_market_activity(self):
        out = run_market(market_spec(5, "calm", n_tasks=12,
                                     file_size=8 * MB,
                                     compute_seconds=0.5))
        assert out["alpha_trace"] == []
        assert out["market"]["offers_published"] == 0
        assert out["lost_files"] == []


class TestMetricsRegistry:
    def test_groups_reset_independently(self):
        from repro.exec.stats import exec_stats
        from repro.metrics import metrics_registry
        market_stats.epochs = 7
        exec_stats.scenarios_run = 3
        metrics_registry.reset()            # scenario group only
        assert market_stats.epochs == 0
        assert exec_stats.scenarios_run == 3
        metrics_registry.reset(group="executor")
        assert exec_stats.scenarios_run == 0

    def test_snapshot_covers_market(self):
        from repro.metrics import metrics_registry
        snap = metrics_registry.snapshot()
        assert "market" in snap
        assert "pressure" in snap
        assert "exec" in snap

    def test_scenario_reset_clears_weight_fit_cache(self):
        # Determinism contract: identical counters whether a scenario
        # runs first in a process or fiftieth — so the scenario reset
        # must drop the fit memo, not just zero the hit/miss counters.
        from repro.hashing import calibrate_weights, weight_fit_stats
        from repro.metrics import metrics_registry
        fracs = {"own": 0.5, "victim": 0.3, "cold": 0.2}
        calibrate_weights(fracs)             # warm the memo
        metrics_registry.reset()
        calibrate_weights(fracs)
        assert weight_fit_stats.fit_misses == 1   # cold again
        assert weight_fit_stats.fit_hits == 0
        calibrate_weights(fracs)
        assert weight_fit_stats.fit_hits == 1     # memo works in-scenario
        metrics_registry.reset()

    def test_register_replaces(self):
        from repro.metrics.registry import MetricsRegistry

        class Fake:
            def __init__(self):
                self.n = 1

            def reset(self):
                self.n = 0

            def snapshot(self):
                return {"n": self.n}

        reg = MetricsRegistry()
        a, b = Fake(), Fake()
        reg.register("x", a)
        reg.register("x", b, group="executor")
        assert reg.names("scenario") == []
        reg.reset(group="executor")
        assert (a.n, b.n) == (1, 0)
