"""StoreFull / StoreError structured capacity details.

The capacity-aware write path routes on *which* store is full and *how
much* space it has left, so the exceptions carry structured fields — and
keep the legacy message format so old log-parsing assertions still hold.
"""

import pickle

import pytest

from repro.cluster import build_das5
from repro.store import (KVStore, StoreClient, StoreError, StoreErrorCode,
                         StoreFull, StoreServer)


class TestStoreFullFields:
    def test_structured_fields(self):
        exc = StoreFull(store="own@node00", requested=2048.0, free=512.0)
        assert exc.store == "own@node00"
        assert exc.requested == 2048.0
        assert exc.free == 512.0

    def test_legacy_message_synthesized(self):
        exc = StoreFull(requested=2048.0, free=512.0)
        # The pre-fields format, byte for byte.
        assert str(exc) == \
            "put of 2.05e+03 B would exceed capacity (512 B free)"

    def test_explicit_message_wins(self):
        exc = StoreFull("sadd: over capacity", store="s", requested=1.0)
        assert str(exc) == "sadd: over capacity"

    def test_message_only_compat(self):
        # Old call sites passed just a message; fields default to None.
        exc = StoreFull("custom")
        assert (exc.store, exc.requested, exc.free) == (None, None, None)

    def test_pickle_round_trip(self):
        exc = StoreFull(store="s1", requested=100.0, free=7.0)
        back = pickle.loads(pickle.dumps(exc))
        assert str(back) == str(exc)
        assert (back.store, back.requested, back.free) == ("s1", 100.0, 7.0)

    def test_details_payload(self):
        exc = StoreFull(store="s1", requested=100.0, free=7.0)
        assert exc.details() == {"store": "s1", "requested_bytes": 100.0,
                                 "free_bytes": 7.0}
        assert StoreFull("bare").details() == {}

    def test_kvstore_put_populates_fields(self):
        kv = KVStore(capacity=1000, key_overhead=0, name="tiny")
        kv.put("a", nbytes=900)
        with pytest.raises(StoreFull) as ei:
            kv.put("b", nbytes=200)
        assert ei.value.store == "tiny"
        assert ei.value.requested == 200
        assert ei.value.free == 100


class TestServerFullDetails:
    def _rig(self, capacity=4096.0):
        cluster = build_das5(n_nodes=2)
        env = cluster.env
        server = StoreServer(env, cluster.nodes[0], cluster.fabric,
                             capacity=capacity, name="own@n0")
        client = StoreClient(env, cluster.fabric, cluster.nodes[1])
        return cluster, server, client

    def _run(self, cluster, gen):
        proc = cluster.env.process(gen)
        return cluster.env.run(until=proc)

    def test_full_response_carries_details(self):
        cluster, server, client = self._rig(capacity=4096.0)

        def overfill():
            yield from client.put(server, "k", nbytes=8192.0)

        with pytest.raises(StoreError) as ei:
            self._run(cluster, overfill())
        assert ei.value.code is StoreErrorCode.FULL
        details = ei.value.details
        assert details["store"] == "own@n0"
        assert details["requested_bytes"] == 8192.0
        assert details["free_bytes"] == pytest.approx(4096.0)

    def test_store_error_pickles_with_details(self):
        err = StoreError(StoreErrorCode.FULL, "full",
                         details={"store": "s", "requested_bytes": 1.0})
        back = pickle.loads(pickle.dumps(err))
        assert back.code is StoreErrorCode.FULL
        assert back.details == {"store": "s", "requested_bytes": 1.0}

    def test_free_space_peek(self):
        cluster, server, client = self._rig(capacity=4096.0)
        assert client.free_space(server) == pytest.approx(4096.0)

        def fill():
            yield from client.put(server, "k", nbytes=1000.0)

        self._run(cluster, fill())
        assert client.free_space(server) == pytest.approx(4096.0 - 1128.0)
        server.crash()
        assert client.free_space(server) == 0.0
