"""Tests for the store server/client over the simulated fabric."""

import pytest

from repro.cluster import Container, ResourceCaps, build_das5
from repro.sim import Environment
from repro.store import (AuthPolicy, StoreClient, StoreCostModel, StoreError,
                         StoreServer)
from repro.units import GB, MB


@pytest.fixture
def rig():
    env = Environment()
    cluster = build_das5(env, n_nodes=3)
    own, victim, other = cluster.nodes
    server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB)
    client = StoreClient(env, cluster.fabric, own)
    return env, cluster, own, victim, server, client


def drive(env, gen):
    """Run a client generator to completion, return its value."""
    proc = env.process(gen)
    return env.run(until=proc)


class TestBasicOps:
    def test_put_get_roundtrip_payload(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "k", payload=b"data!")
            return (yield from client.get(server, "k"))

        nbytes, payload = drive(env, flow())
        assert nbytes == 5
        assert payload == b"data!"

    def test_put_size_only(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "k", nbytes=64 * MB)
            return (yield from client.get(server, "k"))

        nbytes, payload = drive(env, flow())
        assert nbytes == 64 * MB
        assert payload is None

    def test_get_missing_raises_store_error(self, rig):
        env, _c, _o, _v, server, client = rig
        with pytest.raises(StoreError) as err:
            drive(env, client.get(server, "nope"))
        assert err.value.code == "missing"

    def test_delete_and_exists(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "k", nbytes=100)
            assert (yield from client.exists(server, "k"))
            released = yield from client.delete(server, "k")
            assert released == 100
            return (yield from client.exists(server, "k"))

        assert drive(env, flow()) is False

    def test_flush_and_info(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "a", nbytes=10)
            yield from client.put(server, "b", nbytes=20)
            info = yield from client.info(server)
            assert info["keys"] == 2
            released = yield from client.flush(server)
            assert released == 30
            info = yield from client.info(server)
            return info["keys"]

        assert drive(env, flow()) == 0


class TestCostModel:
    def test_transfer_time_cpu_bound_single_stream(self, rig):
        env, _c, _o, _v, server, client = rig
        # 3 GB single PUT: the NIC could do it in 1 s, but the
        # single-threaded store ingests at ~1.5 GB/s/core -> ~2 s.
        drive(env, client.put(server, "big", nbytes=3 * GB))
        assert env.now == pytest.approx(2.0, rel=0.1)
        assert env.now >= 2.0

    def test_cpu_bound_when_nic_is_fast(self):
        # One core at 3 GB/s of CPU work is the bottleneck when we give the
        # server a tiny cost model NIC-side advantage.
        env = Environment()
        cluster = build_das5(env, n_nodes=2)
        own, victim = cluster.nodes
        costs = StoreCostModel(cpu_per_byte=1.0 / (1 * GB))  # 1 GB/s/core
        server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB,
                             costs=costs)
        client = StoreClient(env, cluster.fabric, own)
        proc = env.process(client.put(server, "k", nbytes=2 * GB))
        env.run(until=proc)
        assert env.now == pytest.approx(2.0, rel=0.05)

    def test_memory_accounted_on_node(self, rig):
        env, _c, _o, victim, server, client = rig
        free_before = victim.memory_free
        drive(env, client.put(server, "k", nbytes=1 * GB))
        assert free_before - victim.memory_free == pytest.approx(
            1 * GB + server.costs.key_overhead)

    def test_request_rate_tracked(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            for i in range(20):
                yield from client.put(server, f"k{i}", nbytes=1)
            return server.request_rate_now()

        rate = drive(env, flow())
        assert rate > 0


class TestAuthIntegration:
    def test_wrong_password_rejected(self, rig):
        env, cluster, own, victim, _s, _c = rig
        auth = AuthPolicy("s3cret", allowed_nodes=[own.name])
        server = StoreServer(env, victim, cluster.fabric, capacity=1 * GB,
                             auth=auth)
        bad_client = StoreClient(env, cluster.fabric, own, password="wrong")
        with pytest.raises(StoreError) as err:
            drive(env, bad_client.put(server, "k", nbytes=1))
        assert err.value.code == "auth"

    def test_unlisted_node_rejected(self, rig):
        env, cluster, own, victim, _s, _c = rig
        other = cluster.nodes[2]
        auth = AuthPolicy("s3cret", allowed_nodes=[own.name])
        server = StoreServer(env, victim, cluster.fabric, capacity=1 * GB,
                             auth=auth)
        intruder = StoreClient(env, cluster.fabric, other, password="s3cret")
        with pytest.raises(StoreError) as err:
            drive(env, intruder.get(server, "k"))
        assert err.value.code == "auth"

    def test_allowed_client_passes(self, rig):
        env, cluster, own, victim, _s, _c = rig
        auth = AuthPolicy("s3cret", allowed_nodes=[own.name])
        server = StoreServer(env, victim, cluster.fabric, capacity=1 * GB,
                             auth=auth)
        good = StoreClient(env, cluster.fabric, own, password="s3cret")
        drive(env, good.put(server, "k", nbytes=10))


class TestContainerizedServer:
    def test_memory_cap_rejects_put(self, rig):
        env, cluster, own, victim, _s, _c = rig
        cont = Container(victim, "scv", ResourceCaps(memory=1 * GB))
        server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB,
                             container=cont)
        client = StoreClient(env, cluster.fabric, own)
        with pytest.raises(StoreError) as err:
            drive(env, client.put(server, "k", nbytes=2 * GB))
        assert err.value.code == "full"

    def test_net_cap_throttles_transfer(self, rig):
        env, cluster, own, victim, _s, _c = rig
        cont = Container(victim, "scv",
                         ResourceCaps(memory=10 * GB, net_bandwidth=1 * GB))
        server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB,
                             container=cont)
        client = StoreClient(env, cluster.fabric, own)
        drive(env, client.put(server, "k", nbytes=3 * GB))
        assert env.now == pytest.approx(3.0, rel=0.05)

    def test_shutdown_releases_container_memory(self, rig):
        env, cluster, own, victim, _s, _c = rig
        cont = Container(victim, "scv", ResourceCaps(memory=10 * GB))
        server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB,
                             container=cont)
        client = StoreClient(env, cluster.fabric, own)
        drive(env, client.put(server, "k", nbytes=1 * GB))
        used_before = victim.memory_free
        server.shutdown()
        assert victim.memory_free > used_before
        assert server.kv.used_bytes == 0


class TestConcurrency:
    def test_two_clients_share_server_nic(self, rig):
        env, cluster, own, victim, server, _c = rig
        other = cluster.nodes[2]
        c1 = StoreClient(env, cluster.fabric, own)
        c2 = StoreClient(env, cluster.fabric, other)
        p1 = env.process(c1.put(server, "a", nbytes=3 * GB))
        p2 = env.process(c2.put(server, "b", nbytes=3 * GB))
        env.run(until=env.all_of([p1, p2]))
        # 6 GB through one single-threaded store at 1.5 GB/s: 4 s (the
        # 3 GB/s ingress NIC is not the bottleneck).
        assert env.now == pytest.approx(4.0, rel=0.1)
        assert env.now >= 4.0

    def test_victim_cpu_stays_low_under_ingest(self, rig):
        """The paper's Fig. 2 bound: store CPU load well under 5% of a
        32-core node even at full NIC ingest."""
        env, cluster, own, victim, server, client = rig

        def flow():
            for i in range(8):
                yield from client.put(server, f"k{i}", nbytes=1 * GB)

        proc = env.process(flow())
        env.run(until=proc)
        # Total CPU used: 8 GB / 3GBps-per-core ~ 2.7 core-s over ~2.7 s
        # => ~1 core of 32 ~ 3%.
        cpu_busy_fraction = victim.cpu.busy_time() * 32 / env.now / 32
        assert cpu_busy_fraction < 0.05
