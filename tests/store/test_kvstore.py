"""Tests for the pure KV store, auth policy, and rate tracker."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import AuthError, AuthPolicy, KeyMissing, KVStore, StoreFull
from repro.store.protocol import RateTracker


class TestKVStore:
    def test_put_get_size_only(self):
        kv = KVStore(capacity=1000)
        kv.put("a", nbytes=100)
        assert kv.get("a") == (100, None)
        assert kv.size_of("a") == 100

    def test_put_get_payload(self):
        kv = KVStore(capacity=1000)
        kv.put("a", payload=b"hello")
        nbytes, payload = kv.get("a")
        assert nbytes == 5
        assert payload == b"hello"

    def test_payload_size_mismatch_rejected(self):
        kv = KVStore(capacity=1000)
        with pytest.raises(ValueError):
            kv.put("a", nbytes=3, payload=b"hello")

    def test_put_requires_size_or_payload(self):
        kv = KVStore(capacity=1000)
        with pytest.raises(ValueError):
            kv.put("a")

    def test_capacity_includes_key_overhead(self):
        kv = KVStore(capacity=1000, key_overhead=100)
        kv.put("a", nbytes=900)
        assert kv.used_bytes == 1000
        with pytest.raises(StoreFull):
            kv.put("b", nbytes=1)

    def test_overwrite_releases_old_footprint(self):
        kv = KVStore(capacity=1000, key_overhead=0)
        kv.put("a", nbytes=800)
        kv.put("a", nbytes=900)  # would not fit without release
        assert kv.used_bytes == 900

    def test_get_missing_raises(self):
        kv = KVStore(capacity=10)
        with pytest.raises(KeyMissing):
            kv.get("nope")
        with pytest.raises(KeyMissing):
            kv.size_of("nope")

    def test_delete_releases(self):
        kv = KVStore(capacity=1000, key_overhead=10)
        kv.put("a", nbytes=100)
        assert kv.delete("a") == 100
        assert kv.used_bytes == 0
        with pytest.raises(KeyMissing):
            kv.delete("a")

    def test_flush(self):
        kv = KVStore(capacity=1000, key_overhead=0)
        kv.put("a", nbytes=100)
        kv.put("b", nbytes=200)
        assert kv.flush() == 300
        assert len(kv) == 0
        assert kv.used_bytes == 0

    def test_contains_and_keys(self):
        kv = KVStore(capacity=1000)
        kv.put("a", nbytes=1)
        assert "a" in kv
        assert "b" not in kv
        assert list(kv.keys()) == ["a"]

    def test_counters(self):
        kv = KVStore(capacity=1000, key_overhead=0)
        kv.put("a", nbytes=100)
        kv.get("a")
        kv.get("a")
        kv.delete("a")
        info = kv.info()
        assert info["puts"] == 1
        assert info["gets"] == 2
        assert info["deletes"] == 1
        assert info["bytes_in"] == 100
        assert info["bytes_out"] == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            KVStore(capacity=0)
        with pytest.raises(ValueError):
            KVStore(capacity=10, key_overhead=-1)
        kv = KVStore(capacity=10)
        with pytest.raises(ValueError):
            kv.put("a", nbytes=-5)

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=6),
                              st.integers(0, 100)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_accounting_invariant(self, ops):
        """used_bytes always equals the sum of live entries' costs."""
        kv = KVStore(capacity=1e9, key_overhead=7)
        live = {}
        for key, size in ops:
            kv.put(key, nbytes=size)
            live[key] = size
        expected = sum(v + 7 for v in live.values())
        assert kv.used_bytes == expected
        for key in list(live):
            kv.delete(key)
        assert kv.used_bytes == 0


class TestAuthPolicy:
    def test_password_checked(self):
        auth = AuthPolicy("secret")
        auth.check("secret", "node0")
        with pytest.raises(AuthError):
            auth.check("wrong", "node0")

    def test_allow_list(self):
        auth = AuthPolicy("s", allowed_nodes=["own0", "own1"])
        auth.check("s", "own0")
        with pytest.raises(AuthError):
            auth.check("s", "victim0")

    def test_allow_node_added_later(self):
        auth = AuthPolicy("s", allowed_nodes=["a"])
        auth.allow_node("b")
        auth.check("s", "b")

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            AuthPolicy("")


class TestRateTracker:
    def test_rate_rises_with_events(self):
        rt = RateTracker(tau=1.0)
        for i in range(10):
            rt.record(now=0.0)
        assert rt.rate(0.0) == pytest.approx(10.0)

    def test_rate_decays(self):
        rt = RateTracker(tau=1.0)
        rt.record(now=0.0, count=10)
        assert rt.rate(1.0) == pytest.approx(10.0 * math.exp(-1), rel=1e-6)
        assert rt.rate(10.0) < 0.01

    def test_steady_state_matches_arrival_rate(self):
        rt = RateTracker(tau=2.0)
        # 100 events/s for 20 s: rate should converge to ~100.
        t = 0.0
        for _ in range(2000):
            t += 0.01
            rt.record(now=t)
        assert rt.rate(t) == pytest.approx(100.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateTracker(tau=0)
