"""Edge-case tests for the store server: interrupts, sets, batching."""

import pytest

from repro.cluster import build_das5
from repro.sim import Environment, Interrupt
from repro.store import (Op, Request, StoreClient, StoreError, StoreServer)
from repro.units import GB, MB


@pytest.fixture
def rig():
    env = Environment()
    cluster = build_das5(env, n_nodes=2)
    own, victim = cluster.nodes
    server = StoreServer(env, victim, cluster.fabric, capacity=10 * GB)
    client = StoreClient(env, cluster.fabric, own)
    return env, cluster, own, victim, server, client


def drive(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


class TestInterruptCleanup:
    def test_interrupted_put_withdraws_all_flows(self, rig):
        env, cluster, own, victim, server, client = rig

        def doomed():
            try:
                yield from client.put(server, "big", nbytes=3 * GB)
            except Interrupt:
                pass

        p = env.process(doomed())

        def killer():
            yield env.timeout(0.1)
            p.interrupt()

        env.process(killer())
        env.run()
        # No leaked flows anywhere.
        assert len(cluster.fabric.net.flows) == 0
        assert len(victim.cpu.flows) == 0
        assert len(victim.membw.flows) == 0
        assert len(server.loop.flows) == 0

    def test_server_usable_after_interrupt(self, rig):
        env, cluster, own, victim, server, client = rig

        def doomed():
            try:
                yield from client.put(server, "big", nbytes=3 * GB)
            except Interrupt:
                pass

        p = env.process(doomed())
        env.schedule_callback(0.1, lambda: p.interrupt())
        env.run()
        drive(env, client.put(server, "ok", nbytes=1 * MB))
        assert ("ok" in server.kv) is True


class TestSetOperations:
    def test_sadd_smembers_srem_roundtrip(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            assert (yield from client.sadd(server, "dir", "a")) is True
            assert (yield from client.sadd(server, "dir", "a")) is False
            yield from client.sadd(server, "dir", "b")
            members = yield from client.smembers(server, "dir")
            assert members == frozenset({"a", "b"})
            assert (yield from client.srem(server, "dir", "a")) is True
            assert (yield from client.srem(server, "dir", "zz")) is False
            return (yield from client.smembers(server, "dir"))

        assert drive(env, flow()) == frozenset({"b"})

    def test_smembers_absent_key_empty(self, rig):
        env, _c, _o, _v, server, client = rig
        assert drive(env, client.smembers(server, "nope")) == frozenset()

    def test_type_confusion_rejected(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "k", nbytes=10)
            yield from client.sadd(server, "k", "member")

        with pytest.raises(StoreError) as err:
            drive(env, flow())
        assert err.value.code == "bad-request"

    def test_set_memory_accounted(self, rig):
        env, _c, _o, victim, server, client = rig

        def flow():
            yield from client.sadd(server, "dir", "some-entry")

        free_before = victim.memory_free
        drive(env, flow())
        assert victim.memory_free < free_before


class TestBatching:
    def test_batch_counts_in_request_rate(self, rig):
        env, _c, _o, _v, server, client = rig
        drive(env, client.put(server, "k", nbytes=1 * MB, batch=500))
        assert server.requests_served == 500
        assert server.request_rate_now() > 100

    def test_batch_increases_cpu_cost(self, rig):
        env, _c, _o, _v, server, client = rig
        drive(env, client.put(server, "a", nbytes=0, batch=1))
        t1 = env.now
        drive(env, client.put(server, "b", nbytes=0, batch=100_000))
        t2 = env.now - t1
        # 100k requests x 30 us = 3 core-seconds on a single core.
        assert t2 > 2.5


class TestMisc:
    def test_unknown_op_rejected(self, rig):
        env, _c, own, _v, server, client = rig

        class FakeOp:
            pass

        def flow():
            req = Request(Op.PUT, key="x", nbytes=1)
            object.__setattr__(req, "op", FakeOp())
            return (yield from client.request(server, req))

        resp = drive(env, flow())
        assert not resp.ok
        assert "bad-request" in resp.error

    def test_info_via_client(self, rig):
        env, _c, _o, _v, server, client = rig

        def flow():
            yield from client.put(server, "k", nbytes=5)
            return (yield from client.info(server))

        info = drive(env, flow())
        assert info["keys"] == 1

    def test_delete_missing(self, rig):
        env, _c, _o, _v, server, client = rig
        with pytest.raises(StoreError) as err:
            drive(env, client.delete(server, "ghost"))
        assert err.value.code == "missing"
