"""Tests for the typed error taxonomy and the resilient client path:
deadlines, bounded retries with backoff, and hedged chain reads."""

import pytest

from repro.cluster import build_das5
from repro.faults import fault_stats
from repro.sim import Environment
from repro.store import (NO_RETRY, Response, RetryPolicy, StoreClient,
                         StoreError, StoreErrorCode, StoreServer)
from repro.units import GB, MB


@pytest.fixture(autouse=True)
def _reset_stats():
    fault_stats.reset()
    yield
    fault_stats.reset()


@pytest.fixture
def rig():
    env = Environment()
    cluster = build_das5(env, n_nodes=4)
    own = cluster.nodes[0]
    backends = cluster.nodes[1:]
    servers = [StoreServer(env, n, cluster.fabric, capacity=10 * GB,
                           name=f"srv@{n.name}")
               for n in backends]
    client = StoreClient(env, cluster.fabric, own)
    return env, cluster, own, servers, client


def drive(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


class TestErrorTaxonomy:
    def test_codes_compare_as_strings(self):
        assert StoreErrorCode.MISSING == "missing"
        assert StoreError("missing").code is StoreErrorCode.MISSING

    def test_retryable_partition(self):
        assert StoreErrorCode.TIMEOUT.retryable
        assert StoreErrorCode.UNAVAILABLE.retryable
        assert not StoreErrorCode.MISSING.retryable
        assert not StoreErrorCode.AUTH.retryable
        assert not StoreErrorCode.FULL.retryable

    def test_fallthrough_partition(self):
        fall = {c for c in StoreErrorCode if c.fallthrough}
        assert fall == {StoreErrorCode.MISSING, StoreErrorCode.UNAVAILABLE,
                        StoreErrorCode.TIMEOUT}

    def test_legacy_error_kwarg_and_property(self):
        resp = Response(ok=False, error="full: store is at capacity")
        assert resp.code is StoreErrorCode.FULL
        assert resp.message == "store is at capacity"
        # The deprecated prefix-encoded shape survives for old consumers.
        assert resp.error.split(":", 1)[0] == "full"

    def test_unknown_prefix_becomes_bad_request(self):
        resp = Response(ok=False, error="whatever happened")
        assert resp.code is StoreErrorCode.BAD_REQUEST

    def test_store_error_pickles(self):
        # args hold the formatted string, so the default exception
        # reduce would rebuild with the wrong __init__ arguments — a
        # worker raising StoreError used to break the sweep pool.
        import pickle

        err = pickle.loads(pickle.dumps(
            StoreError(StoreErrorCode.FULL, "put would exceed capacity")))
        assert err.code is StoreErrorCode.FULL
        assert err.message == "put would exceed capacity"
        assert str(err) == "full: put would exceed capacity"

    def test_raise_for_status(self):
        with pytest.raises(StoreError) as err:
            Response(ok=False, code=StoreErrorCode.AUTH,
                     message="nope").raise_for_status()
        assert err.value.code is StoreErrorCode.AUTH
        assert not err.value.retryable
        Response(ok=True, value=1).raise_for_status()


class TestRetryPolicy:
    def test_backoff_is_capped_and_jittered_deterministically(self):
        pol = RetryPolicy(attempts=5, base_delay=0.01, multiplier=2.0,
                          max_delay=0.03, jitter=0.0)
        assert pol.backoff(1) == 0.01
        assert pol.backoff(2) == 0.02
        assert pol.backoff(3) == 0.03    # capped
        assert pol.backoff(4) == 0.03

    def test_should_retry_respects_attempts_and_codes(self):
        pol = RetryPolicy(attempts=2)
        assert pol.should_retry(StoreErrorCode.UNAVAILABLE, 1)
        assert not pol.should_retry(StoreErrorCode.UNAVAILABLE, 2)
        assert not pol.should_retry(StoreErrorCode.MISSING, 1)

    def test_no_retry_sentinel(self):
        assert not NO_RETRY.should_retry(StoreErrorCode.UNAVAILABLE, 1)


class TestCrashAndRetry:
    def test_crashed_server_raises_unavailable(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        drive(env, client.put(server, "k", payload=b"v"))
        server.crash()
        with pytest.raises(StoreError) as err:
            drive(env, client.get(server, "k", retry=NO_RETRY))
        assert err.value.code is StoreErrorCode.UNAVAILABLE
        assert err.value.retryable

    def test_crash_wipes_data(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        drive(env, client.put(server, "k", payload=b"v"))
        server.crash()
        server.restart()
        with pytest.raises(StoreError) as err:
            drive(env, client.get(server, "k", retry=NO_RETRY))
        assert err.value.code is StoreErrorCode.MISSING

    def test_retry_succeeds_after_restart(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        drive(env, client.put(server, "k", payload=b"v"))
        server.crash()
        server.kv.put("k", payload=b"v")  # data survives on disk this time
        server._sync_memory()
        env.schedule_callback(0.002, server.restart)
        policy = RetryPolicy(attempts=8, base_delay=0.001, jitter=0.0)
        _n, payload = drive(env, client.get(server, "k", retry=policy))
        assert payload == b"v"
        assert fault_stats.retries > 0
        assert fault_stats.unavailable_errors > 0

    def test_retries_are_bounded(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        server.crash()
        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        with pytest.raises(StoreError):
            drive(env, client.get(server, "k", retry=policy))
        assert fault_stats.retries == 2  # attempts - 1


class TestDeadlines:
    def test_deadline_times_out_large_transfer(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        drive(env, client.put(server, "big", nbytes=256 * MB))
        with pytest.raises(StoreError) as err:
            drive(env, client.get(server, "big", deadline=1e-6,
                                  retry=NO_RETRY))
        assert err.value.code is StoreErrorCode.TIMEOUT
        assert fault_stats.timeouts == 1

    def test_generous_deadline_passes(self, rig):
        env, _c, _o, servers, client = rig
        server = servers[0]
        drive(env, client.put(server, "k", payload=b"v"))
        _n, payload = drive(env, client.get(server, "k", deadline=60.0))
        assert payload == b"v"
        assert fault_stats.timeouts == 0

    def test_constructor_default_deadline(self, rig):
        env, cluster, own, servers, _ = rig
        client = StoreClient(env, cluster.fabric, own, deadline=1e-6,
                             retry=NO_RETRY)
        server = servers[0]
        # The put itself is tiny control traffic but still raced: give it
        # an explicit generous deadline, then let the default bite.
        drive(env, client.put(server, "big", nbytes=256 * MB, deadline=60.0))
        with pytest.raises(StoreError) as err:
            drive(env, client.get(server, "big"))
        assert err.value.code is StoreErrorCode.TIMEOUT


class TestChainReads:
    def test_get_any_falls_through_missing(self, rig):
        env, _c, _o, servers, client = rig
        drive(env, client.put(servers[1], "k", payload=b"v"))
        _n, payload = drive(env, client.get_any(servers[:2], "k"))
        assert payload == b"v"
        assert fault_stats.degraded_reads == 1

    def test_get_any_falls_through_crashed(self, rig):
        env, _c, _o, servers, client = rig
        drive(env, client.put(servers[0], "k", payload=b"v"))
        drive(env, client.put(servers[1], "k", payload=b"v"))
        servers[0].crash()
        _n, payload = drive(env, client.get_any(servers[:2], "k",
                                                retry=NO_RETRY))
        assert payload == b"v"
        assert fault_stats.degraded_reads == 1

    def test_get_any_skips_dead_entries_and_raises_when_empty(self, rig):
        env, _c, _o, servers, client = rig
        with pytest.raises(StoreError) as err:
            drive(env, client.get_any([None, None], "k"))
        assert err.value.code is StoreErrorCode.UNAVAILABLE

    def test_get_any_raises_last_fallthrough_error(self, rig):
        env, _c, _o, servers, client = rig
        with pytest.raises(StoreError) as err:
            drive(env, client.get_any(servers, "nope", retry=NO_RETRY))
        assert err.value.code is StoreErrorCode.MISSING

    def test_hedged_read_prefers_fast_replica(self, rig):
        env, _c, _o, servers, client = rig
        # Primary holds a huge value (slow), rank-1 a small one (fast):
        # with a short hedge delay the fast replica answers first.
        drive(env, client.put(servers[0], "k", nbytes=512 * MB))
        drive(env, client.put(servers[1], "k", payload=b"quick"))
        nbytes, payload = drive(env, client.get_any(
            servers[:2], "k", hedge=1e-4, retry=NO_RETRY))
        assert payload == b"quick"
        assert fault_stats.hedged_reads >= 1
        assert fault_stats.degraded_reads == 1

    def test_hedged_read_single_success_no_hedge_needed(self, rig):
        env, _c, _o, servers, client = rig
        drive(env, client.put(servers[0], "k", payload=b"v"))
        _n, payload = drive(env, client.get_any(servers[:2], "k",
                                                hedge=10.0))
        assert payload == b"v"
        assert fault_stats.hedged_reads == 0

    def test_hedged_read_crashed_primary(self, rig):
        env, _c, _o, servers, client = rig
        drive(env, client.put(servers[1], "k", payload=b"v"))
        servers[0].crash()
        _n, payload = drive(env, client.get_any(
            servers[:2], "k", hedge=1e-3, retry=NO_RETRY))
        assert payload == b"v"
