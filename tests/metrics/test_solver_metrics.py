"""Solver counters: snapshots and Monitor probes."""

import pytest

from repro.metrics import attach_solver_probes, solver_counters
from repro.sim import Environment, FlowNetwork, Monitor, flownet_stats


def _busy_net(env):
    net = FlowNetwork(env)
    tx = [net.add_link(f"tx{i}", 100.0) for i in range(3)]
    rx = [net.add_link(f"rx{i}", 100.0) for i in range(3)]
    for i in range(3):
        net.transfer([tx[i], rx[(i + 1) % 3]], 250.0, label=f"f{i}")
    return net


def test_counters_snapshot_accumulates():
    flownet_stats.reset()
    env = Environment()
    _busy_net(env)
    env.run()
    counters = solver_counters()
    assert counters["solves"] >= 1
    assert counters["rounds"] >= 1
    assert counters["flows_touched"] >= 3
    assert counters["batch_coalesced"] >= 2  # same-instant transfers
    assert counters["stalemates"] == 0
    assert set(counters) == {"solves", "full_solves", "rounds",
                             "flows_touched", "links_touched",
                             "batch_coalesced", "auto_full",
                             "auto_incremental", "stalemates"}


def test_monitor_probes_sample_counters():
    flownet_stats.reset()
    env = Environment()
    mon = Monitor(env, interval=1.0)
    series = attach_solver_probes(mon)
    assert set(series) == {f"solver.{f}" for f in
                           ("solves", "full_solves", "rounds",
                            "flows_touched", "links_touched",
                            "batch_coalesced", "auto_full",
                            "auto_incremental", "stalemates")}
    mon.start()
    _busy_net(env)
    env.run(until=3.0)
    mon.stop()
    times, values = mon.series["solver.solves"].as_arrays()
    assert len(times) >= 2
    assert values[-1] >= 1.0
    assert values[-1] == float(flownet_stats.solves)


def test_reset_clears_counters():
    env = Environment()
    _busy_net(env)
    env.run()
    assert solver_counters()["solves"] >= 1
    flownet_stats.reset()
    assert all(v == 0 for v in solver_counters().values())
