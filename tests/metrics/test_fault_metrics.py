"""Tests for the fault/recovery observability surface."""

import pytest

from repro.faults import fault_stats
from repro.metrics import (attach_fault_probes, fault_counters,
                           render_fault_report)
from repro.sim import Environment
from repro.sim.monitor import Monitor


@pytest.fixture(autouse=True)
def _reset_stats():
    fault_stats.reset()
    yield
    fault_stats.reset()


def test_counters_snapshot_includes_mttr_and_open_faults():
    fault_stats.record_fault("node3", 1.0)
    fault_stats.record_recovery("node3", 3.5)
    snap = fault_counters()
    assert snap["faults_injected"] == 1
    assert snap["recoveries"] == 1
    assert snap["mttr_s"] == pytest.approx(2.5)
    assert snap["open_faults"] == 0


def test_open_fault_pairing_uses_earliest_injection():
    fault_stats.record_fault("n", 1.0)
    fault_stats.record_fault("n", 2.0)   # same site, still one outage
    assert fault_stats.faults_injected == 2
    fault_stats.record_recovery("n", 4.0)
    assert fault_stats.repair_times == [3.0]
    # Recovering an unknown site is a no-op.
    fault_stats.record_recovery("ghost", 5.0)
    assert fault_stats.recoveries == 1


def test_resolve_open_closes_everything():
    fault_stats.record_fault("a", 0.0)
    fault_stats.record_fault("b", 1.0)
    assert set(fault_stats.open_faults) == {"a", "b"}
    assert fault_stats.resolve_open(2.0) == 2
    assert fault_stats.open_faults == ()
    assert sorted(fault_stats.repair_times) == [1.0, 2.0]


def test_monitor_probes_sample_counters():
    env = Environment()
    mon = Monitor(env, interval=0.1)
    series = attach_fault_probes(mon)
    mon.start()

    def driver():
        yield env.timeout(0.15)
        fault_stats.retries += 3
        fault_stats.record_fault("x", env.now)
        yield env.timeout(0.2)
        mon.stop()

    proc = env.process(driver())
    env.run(until=proc)
    env.run()
    assert series["faults.retries"].last() == 3.0
    assert series["faults.open_faults"].last() == 1.0
    assert series["faults.retries"].values[0] == 0.0


def test_render_fault_report_lists_nonzero_counters():
    fault_stats.hedged_reads = 4
    text = render_fault_report()
    assert "hedged_reads" in text and "4" in text
    fault_stats.reset()
    assert "no faults recorded" in render_fault_report()
