"""Tests for metrics rendering/utilization and the Table I survey data."""

import pytest

from repro.cluster import build_das5
from repro.data import TABLE_I, SurveyRecord, check_simulated_utilization
from repro.metrics import (class_utilization, fmt_pct, node_utilization,
                           render_bars, render_table)
from repro.units import GB, fmt_bytes, fmt_rate


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [["1", "22"], ["333", "4"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out

    def test_columns_aligned(self):
        out = render_table(["col", "val"], [["aaaa", "1"], ["b", "22"]])
        lines = out.splitlines()
        # Header and data rows share the column boundary position.
        assert lines[0].index("|") == lines[2].index("|") \
            == lines[3].index("|")


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        out = render_bars({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert render_bars({}, title="t") == "t"

    def test_fmt_pct(self):
        assert fmt_pct(12.345) == "12.3%"


class TestUnits:
    def test_fmt_bytes(self):
        assert fmt_bytes(1536) == "1.50 KB"
        assert fmt_bytes(3 * GB) == "3.00 GB"
        assert fmt_bytes(10) == "10 B"

    def test_fmt_rate(self):
        assert fmt_rate(2 * GB) == "2.00 GB/s"


class TestUtilization:
    def test_node_utilization(self):
        cluster = build_das5(n_nodes=2)
        env = cluster.env
        a, b = cluster.nodes
        a.cpu.submit(None, cap=16.0, label="x")     # 50% CPU
        cluster.fabric.transfer(a, b, None, cap=3 * GB)  # 50% of 6 GB/s
        env.run(until=10)
        u = node_utilization(a, cluster.fabric.net, 10.0)
        assert u.cpu == pytest.approx(0.5)
        assert u.nic_tx == pytest.approx(0.5)
        assert u.network == pytest.approx(0.5)

    def test_class_utilization_averages(self):
        cluster = build_das5(n_nodes=2)
        env = cluster.env
        a, b = cluster.nodes
        a.cpu.submit(None, cap=32.0, label="x")  # 100% on one of two
        env.run(until=5)
        u = class_utilization([a, b], cluster.fabric.net, 5.0)
        assert u.cpu == pytest.approx(0.5)

    def test_validation(self):
        cluster = build_das5(n_nodes=1)
        with pytest.raises(ValueError):
            node_utilization(cluster.nodes[0], cluster.fabric.net, 0)
        with pytest.raises(ValueError):
            class_utilization([], cluster.fabric.net, 1.0)


class TestSurvey:
    def test_table_has_six_rows(self):
        assert len(TABLE_I) == 6
        studies = [r.study for r in TABLE_I]
        assert "Google Traces" in studies
        assert "Mesos" in studies

    def test_covers_logic(self):
        rec = SurveyRecord("x", cpu=(0.0, 0.6), memory=(0.2, 0.4),
                           network=(None, None))
        out = rec.covers(cpu=0.5, memory=0.5, network=0.1)
        assert out["cpu"] is True
        assert out["memory"] is False
        assert out["network"] is None

    def test_check_simulated(self):
        results = check_simulated_utilization(cpu=0.55, memory=0.35,
                                              network=0.05)
        as_dict = dict(results)
        assert as_dict["Google Traces"]["cpu"] is True
        assert as_dict["Taobao"]["memory"] is True
