"""Executor counters exported through repro.metrics."""

from repro.exec import ResultCache, SweepRunner, exec_stats, fig2_spec
from repro.metrics import attach_exec_probes, exec_counters
from repro.sim import Environment, Monitor
from repro.units import MB


class TestExecCounters:
    def test_snapshot_tracks_a_sweep(self, tmp_path):
        exec_stats.reset()
        cache = ResultCache(root=tmp_path, salt="v1")
        specs = [fig2_spec(a, n_tasks=4, file_size=4 * MB)
                 for a in (0.0, 1.0)]
        SweepRunner("serial", cache=cache).run(specs)
        SweepRunner("serial", cache=cache).run(specs)
        counters = exec_counters()
        assert counters["scenarios_run"] == 2
        assert counters["cache_misses"] == 2
        assert counters["cache_hits"] == 2
        assert counters["sweeps_serial"] == 2

    def test_probes_sample_every_counter(self):
        exec_stats.reset()
        env = Environment()
        mon = Monitor(env, interval=1.0)
        series = attach_exec_probes(mon)
        assert set(series) == {f"exec.{f}" for f in exec_stats._COUNTERS}
        exec_stats.cache_hits += 3

        def driver():
            yield env.timeout(1.0)

        mon.start()
        proc = env.process(driver())
        env.run(until=proc)
        mon.stop()
        env.run()
        assert mon.series["exec.cache_hits"].last() == 3.0
