"""Tests for the capacity-pressure observability surface."""

import pytest

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.fs import pressure_stats
from repro.metrics import (attach_fill_probes, attach_pressure_probes,
                           class_fill_ratios, pressure_counters,
                           render_pressure_report)
from repro.sim import Environment
from repro.sim.monitor import Monitor
from repro.units import GB, MB


@pytest.fixture(autouse=True)
def _reset_stats():
    pressure_stats.reset()
    yield
    pressure_stats.reset()


def test_counters_snapshot():
    pressure_stats.spilled_writes += 2
    pressure_stats.spill_distance += 5
    snap = pressure_counters()
    assert snap["spilled_writes"] == 2
    assert snap["spill_distance"] == 5
    assert snap["writes_checked"] == 0


def test_monitor_probes_sample_counters():
    env = Environment()
    mon = Monitor(env, interval=0.1)
    series = attach_pressure_probes(mon)
    mon.start()

    def driver():
        yield env.timeout(0.15)
        pressure_stats.spilled_writes += 4
        pressure_stats.spill_distance += 6
        yield env.timeout(0.2)
        mon.stop()

    proc = env.process(driver())
    env.run(until=proc)
    env.run()
    assert series["pressure.spilled_writes"].last() == 4.0
    assert series["pressure.spilled_writes"].values[0] == 0.0
    assert series["pressure.mean_spill_distance"].last() == \
        pytest.approx(1.5)


def test_fill_probes_track_per_class_fill():
    dep = MemFSSDeployment(DeploymentConfig(
        n_own=2, n_victim=3, victim_memory=1 * GB,
        own_store_capacity=2 * GB, stripe_size=8 * MB))
    ratios = class_fill_ratios(dep.fs)
    assert set(ratios) == {"own", "victim"}
    assert all(r == 0.0 for r in ratios.values())

    def writer():
        yield from dep.fs.write_file(dep.own[0], "/blob",
                                     nbytes=64 * MB)

    proc = dep.env.process(writer())
    dep.env.run(until=proc)
    after = class_fill_ratios(dep.fs)
    assert any(r > 0.0 for r in after.values())
    assert all(0.0 <= r <= 1.0 for r in after.values())

    mon = Monitor(dep.env, interval=0.1)
    series = attach_fill_probes(mon, dep.fs)
    assert set(series) == {"fill.own", "fill.victim"}


def test_fill_ratio_skips_dead_stores():
    dep = MemFSSDeployment(DeploymentConfig(
        n_own=2, n_victim=2, victim_memory=1 * GB,
        own_store_capacity=2 * GB))
    victim = dep.victims[0].name
    dep.manager.handle_crash(victim)
    ratios = class_fill_ratios(dep.fs)
    assert 0.0 <= ratios["victim"] <= 1.0


def test_render_pressure_report():
    pressure_stats.spilled_writes = 7
    text = render_pressure_report()
    assert "spilled_writes" in text and "7" in text
    pressure_stats.reset()
    assert "no pressure recorded" in render_pressure_report()
