"""Golden Fig. 2 trajectory: the solver rewrite must not move a bit.

``data/fig2_golden.json`` was produced by the pre-rewrite solver (global
synchronous progressive filling) on the 48-task / 32 MB smoke scenario.
Every figure-level output — runtime, class utilizations, the victim-NIC
series — must match bit for bit under both the incremental and the
retained reference solver mode.
"""

import json
from pathlib import Path

import pytest

from repro.core.deployment import DeploymentConfig
from repro.core.experiment import baseline_run

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "fig2_golden.json").read_text())


@pytest.mark.parametrize("solver", ["incremental", "reference"])
def test_fig2_smoke_bit_identical(solver):
    cfg = DeploymentConfig(solver=solver)
    m = baseline_run(alpha=GOLDEN["alpha"], n_tasks=GOLDEN["n_tasks"],
                     file_size=GOLDEN["file_size"], config=cfg,
                     keep_series=True)
    assert m.runtime_s == GOLDEN["runtime_s"]
    assert m.own_cpu == GOLDEN["own_cpu"]
    assert m.own_tx == GOLDEN["own_tx"]
    assert m.own_rx == GOLDEN["own_rx"]
    assert m.victim_cpu == GOLDEN["victim_cpu"]
    assert m.victim_rx == GOLDEN["victim_rx"]
    assert m.victim_rx_bytes_s == GOLDEN["victim_rx_bytes_s"]
    times, values = m.series["victim.rx"]
    g_times, g_values = GOLDEN["victim_rx_series"]
    assert list(times) == g_times
    assert list(values) == g_values
