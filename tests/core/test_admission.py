"""Placement-aware admission control and typed degraded results."""

import pickle

import pytest

from repro.cluster import build_das5
from repro.core import (DEGRADABLE_ERRORS, DegradedReason, DegradedResult,
                        classify_failure, predict_admission, predicted_files,
                        run_standalone)
from repro.fs import build_memfs, pressure_stats
from repro.fs.memfss import FileNotFound
from repro.store import (StoreError, StoreErrorCode, StoreFull, StoreServer)
from repro.units import GB, MB
from repro.workflows import FileSpec, Task, Workflow, dd_bag


@pytest.fixture(autouse=True)
def _reset_pressure():
    pressure_stats.reset()
    yield
    pressure_stats.reset()


def standalone_fs(n_nodes=2, capacity=4 * GB, stripe_size=8 * MB):
    cluster = build_das5(n_nodes=n_nodes)
    nodes = list(cluster.nodes)
    servers = {n.name: StoreServer(cluster.env, n, cluster.fabric,
                                   capacity=capacity, name=f"own@{n.name}")
               for n in nodes}
    return build_memfs(cluster.env, cluster.fabric, nodes, servers,
                       stripe_size=stripe_size)


class TestPredictedFiles:
    def test_staged_sorted_then_outputs_in_task_order(self):
        wf = Workflow("t", [
            Task(id="b", stage="s",
                 inputs=(FileSpec("/in/zz", 10.0), FileSpec("/in/aa", 20.0)),
                 outputs=(FileSpec("/out/b", 5.0),)),
            Task(id="a", stage="s", outputs=(FileSpec("/out/a", 7.0),)),
        ])
        paths = [p for p, _ in predicted_files(wf)]
        assert paths == ["/in/aa", "/in/zz", "/out/b", "/out/a"]

    def test_intermediates_not_double_counted(self):
        wf = Workflow("t", [
            Task(id="p", stage="s", outputs=(FileSpec("/mid", 10.0),)),
            Task(id="c", stage="s", inputs=(FileSpec("/mid", 10.0),)),
        ])
        assert predicted_files(wf) == [("/mid", 10.0)]


class TestPredictAdmission:
    def test_fitting_workload_admitted(self):
        fs = standalone_fs()
        report = predict_admission(dd_bag(n_tasks=16, file_size=64 * MB),
                                   fs)
        assert report.fits
        assert report.unplaced_stripes == 0
        assert report.n_files == 16
        assert 0.0 < report.worst_fill <= 1.0
        assert pressure_stats.admission_checks == 1
        assert pressure_stats.admission_rejections == 0

    def test_oversized_workload_rejected_with_detail(self):
        fs = standalone_fs(capacity=512 * MB)
        report = predict_admission(dd_bag(n_tasks=64, file_size=64 * MB),
                                   fs)
        assert not report.fits
        assert report.unplaced_stripes > 0
        assert "unplaceable" in report.detail
        assert pressure_stats.admission_rejections == 1

    def test_prediction_is_pure(self):
        fs = standalone_fs()
        wf = dd_bag(n_tasks=8, file_size=32 * MB)
        first = predict_admission(wf, fs)
        again = predict_admission(wf, fs)
        assert first == again
        assert fs.env.now == 0.0

    def test_headroom_validated(self):
        fs = standalone_fs()
        with pytest.raises(ValueError):
            predict_admission(dd_bag(n_tasks=1, file_size=MB), fs,
                              headroom=1.0)

    def test_per_store_packing_not_aggregate(self):
        # 3 files of 64 MB on two 100 MB stores: the aggregate (192 < 200)
        # looks fine, but no packing fits 3x64 into 2x100 under headroom —
        # the honest predictor must reject what the old check admitted.
        fs = standalone_fs(capacity=100 * MB, stripe_size=64 * MB)
        report = predict_admission(dd_bag(n_tasks=3, file_size=64 * MB),
                                   fs, headroom=0.0)
        assert not report.fits


class TestDegradedResults:
    def test_render(self):
        d = DegradedResult(DegradedReason.CAPACITY_EXHAUSTED, "boom")
        assert d.render() == "unable to run (capacity-exhausted)"

    def test_payload_round_trip(self):
        d = DegradedResult(DegradedReason.STORES_LOST, "gone")
        assert DegradedResult.from_payload(d.to_payload()) == d

    def test_pickle_round_trip(self):
        d = DegradedResult(DegradedReason.FAULT_SCHEDULE, "storm")
        assert pickle.loads(pickle.dumps(d)) == d

    def test_string_reason_coerced(self):
        d = DegradedResult("workflow-error")
        assert d.reason is DegradedReason.WORKFLOW_ERROR

    def test_classify_failure_taxonomy(self):
        full = StoreError(StoreErrorCode.FULL, "full")
        assert classify_failure(full).reason is \
            DegradedReason.CAPACITY_EXHAUSTED
        gone = StoreError(StoreErrorCode.UNAVAILABLE, "down")
        assert classify_failure(gone).reason is DegradedReason.STORES_LOST
        assert classify_failure(gone, faulted=True).reason is \
            DegradedReason.FAULT_SCHEDULE
        assert classify_failure(StoreFull("x")).reason is \
            DegradedReason.CAPACITY_EXHAUSTED
        assert classify_failure(FileNotFound("/f")).reason is \
            DegradedReason.STORES_LOST
        other = StoreError(StoreErrorCode.BAD_REQUEST, "bad")
        assert classify_failure(other).reason is \
            DegradedReason.WORKFLOW_ERROR
        assert "full" in classify_failure(full).detail

    def test_degradable_errors_exclude_bugs(self):
        assert not issubclass(TypeError, DEGRADABLE_ERRORS)
        assert not issubclass(ValueError, DEGRADABLE_ERRORS)


class TestRunStandaloneDegraded:
    def test_rejected_row_carries_reason(self):
        point = run_standalone(dd_bag(n_tasks=16, file_size=64 * MB),
                               n_nodes=1, store_capacity=512 * MB)
        assert not point.fits
        assert point.degraded is not None
        assert point.degraded.reason is DegradedReason.DATA_DOES_NOT_FIT
        assert point.degraded.render() == \
            "unable to run (data-does-not-fit)"
        assert pressure_stats.degraded_rows == 1

    def test_admitted_row_has_no_degradation(self):
        point = run_standalone(dd_bag(n_tasks=8, file_size=32 * MB,
                                      compute_seconds=0.5),
                               n_nodes=2, store_capacity=4 * GB)
        assert point.fits and point.degraded is None
