"""Tests for deployment wiring and the Fig. 2 baseline runner."""

import pytest

from repro.core import (DeploymentConfig, MemFSSDeployment, baseline_run)
from repro.units import GB, MB
from repro.workflows import dd_bag


def small_config(**kw):
    base = dict(n_own=2, n_victim=4, victim_memory=2 * GB,
                own_store_capacity=8 * GB, stripe_size=8 * MB)
    base.update(kw)
    alpha = base.pop("alpha", 0.25)
    return DeploymentConfig(**base).with_alpha(alpha)


class TestDeploymentConfig:
    def test_defaults_match_paper_setup(self):
        cfg = DeploymentConfig()
        assert cfg.n_own == 8
        assert cfg.n_victim == 32
        assert cfg.victim_memory == 10 * GB

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentConfig(n_own=0)
        with pytest.raises(ValueError):
            DeploymentConfig(alpha=1.5)
        with pytest.raises(ValueError):
            DeploymentConfig(n_victim=-1)


class TestMemFSSDeployment:
    def test_wiring(self):
        dep = MemFSSDeployment(small_config())
        assert len(dep.own) == 2
        assert len(dep.victims) == 4
        assert set(dep.fs.policy.class_names) == {"own", "victim"}
        assert len(dep.fs.servers) == 6

    def test_victims_offered_and_leased(self):
        dep = MemFSSDeployment(small_config())
        assert len(dep.cluster.reservations.active_leases()) == 4
        assert len(dep.manager.leases) == 4

    def test_victim_stores_containerized(self):
        dep = MemFSSDeployment(small_config())
        for v in dep.victims:
            server = dep.fs.servers[v.name]
            assert server.container is not None
            assert server.kv.capacity <= 2 * GB

    def test_auth_blocks_victim_clients(self):
        from repro.store import AuthError
        dep = MemFSSDeployment(small_config())
        victim = dep.victims[0]
        with pytest.raises(AuthError):
            dep.auth.check(dep.config.password, victim.name)

    def test_workflow_runs_end_to_end(self):
        dep = MemFSSDeployment(small_config())
        result = dep.engine.execute(dd_bag(n_tasks=8, file_size=16 * MB))
        assert result.makespan > 0
        assert len(result.tasks) == 8

    def test_no_victims_allowed(self):
        dep = MemFSSDeployment(small_config(n_victim=0, alpha=1.0))
        result = dep.engine.execute(dd_bag(n_tasks=4, file_size=8 * MB))
        assert len(result.tasks) == 4

    def test_deterministic(self):
        def go():
            dep = MemFSSDeployment(small_config())
            return dep.engine.execute(
                dd_bag(n_tasks=8, file_size=16 * MB)).makespan

        assert go() == go()


class TestBaselineRun:
    def test_metrics_shape(self):
        m = baseline_run(alpha=0.25, n_tasks=16, file_size=32 * MB,
                         config=small_config())
        assert m.alpha == 0.25
        assert m.runtime_s > 0
        assert 0 <= m.victim_cpu <= 1
        assert 0 <= m.victim_rx <= 1

    def test_alpha_one_sends_nothing_to_victims(self):
        m = baseline_run(alpha=1.0, n_tasks=16, file_size=32 * MB,
                         config=small_config())
        assert m.victim_rx == pytest.approx(0.0, abs=1e-6)

    def test_alpha_zero_loads_victims(self):
        m0 = baseline_run(alpha=0.0, n_tasks=16, file_size=32 * MB,
                          config=small_config())
        m1 = baseline_run(alpha=0.75, n_tasks=16, file_size=32 * MB,
                          config=small_config())
        assert m0.victim_rx > m1.victim_rx

    def test_victim_cpu_stays_small(self):
        m = baseline_run(alpha=0.0, n_tasks=32, file_size=64 * MB,
                         config=small_config())
        assert m.victim_cpu < 0.05  # the paper's < 5 % bound
