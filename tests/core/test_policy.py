"""Tests for the unified PlacementPolicy config object and its shims."""

import pickle

import pytest

from repro.core import ClassTarget, DeploymentConfig, PlacementPolicy
from repro.core.deployment import MemFSSDeployment
from repro.fs.placement import PlacementMap
from repro.hashing import (clear_weight_fit_cache, own_victim_weights,
                           weight_fit_stats)
from repro.units import MB


class TestPlacementPolicy:
    def test_own_victim_fractions(self):
        pol = PlacementPolicy.own_victim(0.25)
        assert pol.fractions() == {"own": 0.25, "victim": 0.75}
        assert pol.alpha == 0.25

    def test_two_class_weights_byte_identical_to_legacy(self):
        # The closed form must produce *exactly* the floats the old
        # own_victim_weights path did — this is what keeps policy-built
        # deployments byte-identical to the legacy-knob path.
        for alpha in (0.0, 0.25, 0.3, 0.5, 0.75, 1.0):
            pol = PlacementPolicy.own_victim(alpha)
            assert pol.weights() == own_victim_weights(alpha)

    def test_explicit_weights_verbatim(self):
        pol = PlacementPolicy.make(
            {"a": ClassTarget(weight=2.0), "b": ClassTarget(weight=1.0)})
        assert pol.weights() == {"a": 2.0, "b": 1.0}
        assert not pol.by_fraction

    def test_fraction_sum_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PlacementPolicy.make({"a": 0.5, "b": 0.4})

    def test_mixed_targets_rejected(self):
        with pytest.raises(ValueError, match="pick one scheme"):
            PlacementPolicy(classes=(
                ("a", ClassTarget(fraction=0.5)),
                ("b", ClassTarget(weight=1.0))))

    def test_class_target_exactly_one(self):
        with pytest.raises(ValueError):
            ClassTarget()
        with pytest.raises(ValueError):
            ClassTarget(fraction=0.5, weight=1.0)

    def test_three_class_calibration_memoized(self):
        clear_weight_fit_cache()
        weight_fit_stats.reset()
        pol = PlacementPolicy.make({"own": 0.5, "burst": 0.3,
                                    "victim": 0.2})
        w1 = pol.weights()
        assert weight_fit_stats.fit_misses == 1
        w2 = pol.weights()          # second call must hit the memo
        assert w1 == w2
        assert weight_fit_stats.fit_hits == 1
        assert set(w1) == {"own", "burst", "victim"}

    def test_with_fraction_rescales_proportionally(self):
        pol = PlacementPolicy.make({"own": 0.5, "b": 0.3, "c": 0.2})
        new = pol.with_fraction("own", 0.8)
        fr = new.fractions()
        assert fr["own"] == pytest.approx(0.8)
        assert fr["b"] == pytest.approx(0.3 * 0.2 / 0.5)
        assert fr["c"] == pytest.approx(0.2 * 0.2 / 0.5)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_retargeted_requires_full_cover(self):
        pol = PlacementPolicy.own_victim(0.25)
        with pytest.raises(ValueError, match="mismatch"):
            pol.retargeted({"own": 1.0})

    def test_materialize_binds_members(self):
        pol = PlacementPolicy.own_victim(0.25)
        pm = pol.materialize({"own": ("n0", "n1"), "victim": ("v0",)})
        assert isinstance(pm, PlacementMap)
        assert pm.classes["own"].nodes == ("n0", "n1")
        assert pm.classes["own"].weight == \
            own_victim_weights(0.25)["own"]

    def test_materialize_omits_absent_classes(self):
        pol = PlacementPolicy.own_victim(0.25)
        pm = pol.materialize({"own": ("n0",)})
        assert set(pm.classes) == {"own"}

    def test_policy_pickles(self):
        pol = PlacementPolicy.own_victim(0.3, replication=2)
        clone = pickle.loads(pickle.dumps(pol))
        assert clone == pol
        assert clone.weights() == pol.weights()

    def test_frozen(self):
        pol = PlacementPolicy.own_victim(0.25)
        with pytest.raises(AttributeError):
            pol.family = "other"


class TestDeploymentConfigPolicy:
    def test_legacy_knobs_warn_once_deprecated(self):
        config = DeploymentConfig(alpha=0.5)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            pol = config.placement()
        assert pol.alpha == 0.5

    def test_default_knobs_do_not_warn(self, recwarn):
        DeploymentConfig().placement()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_with_alpha_does_not_warn(self, recwarn):
        config = DeploymentConfig().with_alpha(0.5)
        pol = config.placement()
        assert pol.alpha == 0.5
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_policy_field_authoritative(self, recwarn):
        pol = PlacementPolicy.own_victim(0.75, replication=2)
        config = DeploymentConfig(policy=pol)
        assert config.placement() is pol
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_conflicting_legacy_knob_rejected(self):
        pol = PlacementPolicy.own_victim(0.75)
        with pytest.raises(ValueError, match="alpha"):
            DeploymentConfig(alpha=0.5, policy=pol)

    def test_agreeing_legacy_knob_ok(self):
        pol = PlacementPolicy.own_victim(0.5)
        config = DeploymentConfig(alpha=0.5, policy=pol)
        assert config.placement() is pol

    def test_config_with_policy_pickles(self):
        config = DeploymentConfig().with_alpha(0.3)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.placement() == config.placement()

    def test_policy_deployment_matches_legacy_weights(self):
        config = DeploymentConfig(
            n_own=2, n_victim=3, victim_memory=32 * MB,
            own_store_capacity=64 * MB, stripe_size=4 * MB).with_alpha(0.25)
        dep = MemFSSDeployment(config)
        legacy = own_victim_weights(0.25)
        assert dep.fs.policy.classes["own"].weight == legacy["own"]
        assert dep.fs.policy.classes["victim"].weight == legacy["victim"]


class TestPlacementMapRenameShim:
    def test_fs_package_alias_warns(self):
        import repro.fs
        with pytest.warns(DeprecationWarning, match="PlacementMap"):
            cls = repro.fs.PlacementPolicy
        assert cls is PlacementMap

    def test_fs_placement_module_alias_warns(self):
        import repro.fs.placement
        with pytest.warns(DeprecationWarning, match="PlacementMap"):
            cls = repro.fs.placement.PlacementPolicy
        assert cls is PlacementMap

    def test_unknown_attribute_still_raises(self):
        import repro.fs.placement
        with pytest.raises(AttributeError):
            repro.fs.placement.NoSuchThing
