"""Tests for the consumption (Table II) and slowdown (Figs. 3-6) harnesses."""

import pytest

from repro.core import (DeploymentConfig, average_slowdown, footprint_of,
                        normalized, run_scavenging, run_standalone)
from repro.core.slowdown import SlowdownResult, measure_slowdowns
from repro.tenants import ComputePhase, PhasedWorkload, SleepPhase
from repro.units import GB, MB
from repro.workflows import Workflow, dd_bag, montage


class TestFootprint:
    def test_dd_bag_footprint(self):
        wf = dd_bag(n_tasks=10, file_size=10 * MB)
        fp = footprint_of(wf, key_overhead=0.0)
        assert fp == pytest.approx(100 * MB)

    def test_includes_staged_inputs(self):
        wf = montage(width=4)
        fp = footprint_of(wf)
        assert fp > wf.total_output_bytes


class TestConsumption:
    def small_bag(self):
        return dd_bag(n_tasks=16, file_size=64 * MB, compute_seconds=1.0)

    def test_standalone_fits_and_runs(self):
        point = run_standalone(self.small_bag(), n_nodes=2,
                               store_capacity=4 * GB)
        assert point.fits
        assert point.runtime_s > 0
        assert point.node_hours == pytest.approx(
            2 * point.runtime_s / 3600.0)

    def test_standalone_too_small_reports_unable(self):
        point = run_standalone(self.small_bag(), n_nodes=1,
                               store_capacity=512 * MB)
        assert not point.fits

    def test_scavenging_runs_and_counts_only_own_nodes(self):
        point = run_scavenging(self.small_bag(), n_own=1, n_victim=3,
                               victim_memory=2 * GB,
                               own_store_capacity=4 * GB)
        assert point.fits
        assert point.n_nodes == 1
        assert point.node_hours == pytest.approx(point.runtime_s / 3600.0)

    def test_scavenging_capacity_check(self):
        point = run_scavenging(self.small_bag(), n_own=1, n_victim=1,
                               victim_memory=128 * MB,
                               own_store_capacity=512 * MB)
        assert not point.fits

    def test_normalized_rows(self):
        base = run_standalone(self.small_bag(), n_nodes=2,
                              store_capacity=4 * GB)
        scav = run_scavenging(self.small_bag(), n_own=1, n_victim=3,
                              victim_memory=2 * GB,
                              own_store_capacity=4 * GB)
        rows = normalized([base, scav], base)
        assert rows[0]["norm_runtime"] == pytest.approx(1.0)
        assert rows[0]["norm_node_hours"] == pytest.approx(1.0)
        # Fewer reserved nodes -> node-hour savings.
        assert rows[1]["norm_node_hours"] < 1.0

    def test_scavenging_saves_node_hours_like_table2(self):
        """The Table II shape at small scale: runtime grows some, but
        node-hours shrink a lot."""
        wf = self.small_bag()
        base = run_standalone(wf, n_nodes=4, store_capacity=4 * GB)
        scav = run_scavenging(self.small_bag(), n_own=2, n_victim=2,
                              victim_memory=2 * GB,
                              own_store_capacity=4 * GB)
        assert scav.node_hours < base.node_hours


class TestSlowdownHarness:
    def test_compute_only_suite_sees_tiny_slowdown(self):
        cfg = DeploymentConfig(n_own=2, n_victim=4, alpha=0.25,
                               victim_memory=2 * GB,
                               own_store_capacity=8 * GB,
                               stripe_size=8 * MB)
        suite = lambda n: [PhasedWorkload(
            "calc", [ComputePhase(core_seconds=32 * 5.0, cores=32)])]
        results = measure_slowdowns(
            cfg, suite, lambda i: dd_bag(n_tasks=16, file_size=32 * MB),
            warmup=5.0)
        assert len(results) == 1
        # Compute barely contends with the store's <= 1 core.
        assert abs(results[0].slowdown_pct) < 8.0

    def test_slowdown_result_math(self):
        r = SlowdownResult("x", baseline_s=10.0, loaded_s=11.5)
        assert r.slowdown_pct == pytest.approx(15.0)
        assert SlowdownResult("z", 0.0, 5.0).slowdown_pct == 0.0

    def test_average_slowdown(self):
        rs = [SlowdownResult("a", 10, 11), SlowdownResult("b", 10, 13)]
        assert average_slowdown(rs) == pytest.approx(20.0)
        assert average_slowdown([]) == 0.0
