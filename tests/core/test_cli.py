"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1_prints_survey(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Google Traces" in out
        assert "Mesos" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "100%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--workload", "nonesuch"])
