"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.exec import exec_stats


@pytest.fixture(autouse=True)
def _hermetic_cache(tmp_path, monkeypatch):
    """CLI caching defaults to on; keep test entries out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    exec_stats.reset()


class TestCli:
    def test_table1_prints_survey(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Google Traces" in out
        assert "Mesos" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "100%" in out

    def test_fig2_warm_rerun_hits_the_cache(self, capsys):
        assert main(["fig2", "--tasks", "8"]) == 0
        first = capsys.readouterr().out
        assert exec_stats.scenarios_run == 5
        assert main(["fig2", "--tasks", "8"]) == 0
        second = capsys.readouterr().out
        assert second == first
        assert exec_stats.scenarios_run == 5  # zero new simulations
        assert exec_stats.cache_hits == 5

    def test_fig2_no_cache_resimulates(self, capsys):
        assert main(["fig2", "--tasks", "8", "--no-cache"]) == 0
        assert main(["fig2", "--tasks", "8", "--no-cache"]) == 0
        assert exec_stats.scenarios_run == 10
        assert exec_stats.cache_hits == 0

    def test_fig2_parallel_matches_serial(self, capsys):
        assert main(["fig2", "--tasks", "8", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig2", "--tasks", "8", "--no-cache",
                     "-j", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--workload", "nonesuch"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(Exception):
            main(["fig2", "--tasks", "8", "-j", "0"])
