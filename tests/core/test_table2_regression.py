"""End-to-end Table II regression at seed scale (``--scale 8``).

Pins the ROADMAP ``scavenging-4`` fix: before the capacity-aware write
path, that row crashed with a raw StoreFull once HRW imbalance pushed a
single victim store over the edge — even though the aggregate headroom
check had admitted it.  Every row must now either produce numbers or
render a typed "unable to run (<reason>)" cell; the command never
raises.
"""

import re

import pytest

from repro import cli


@pytest.fixture(scope="module")
def table2_output():
    import io
    from contextlib import redirect_stdout
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = cli.main(["table2", "--no-cache"])
    return rc, buf.getvalue()


def test_exit_clean(table2_output):
    rc, _out = table2_output
    assert rc == 0


def test_all_rows_present(table2_output):
    _rc, out = table2_output
    for label in ("standalone-20", "standalone-19", "scavenging-4",
                  "scavenging-8", "scavenging-16"):
        assert label in out, label


def test_scavenging_4_produces_numbers(table2_output):
    _rc, out = table2_output
    row = next(line for line in out.splitlines()
               if line.startswith("scavenging-4"))
    assert "unable to run" not in row
    assert re.search(r"\d+ s", row)


def test_standalone_19_renders_typed_reason(table2_output):
    _rc, out = table2_output
    row = next(line for line in out.splitlines()
               if line.startswith("standalone-19"))
    assert "unable to run (data-does-not-fit)" in row


def test_normalized_footer_covers_runnable_rows(table2_output):
    _rc, out = table2_output
    assert "scavenging-4: runtime x" in out
