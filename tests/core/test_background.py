"""Tests for the background workload loop used in slowdown experiments."""

import pytest

from repro.core import BackgroundWorkload, DeploymentConfig, MemFSSDeployment
from repro.units import GB, MB
from repro.workflows import dd_bag


def make_dep(**kw):
    base = dict(n_own=2, n_victim=4, victim_memory=2 * GB,
                own_store_capacity=8 * GB, stripe_size=8 * MB)
    base.update(kw)
    alpha = base.pop("alpha", 0.25)
    return MemFSSDeployment(DeploymentConfig(**base).with_alpha(alpha))


class TestBackgroundWorkload:
    def test_prefill_installs_resident_set(self):
        dep = make_dep()
        bg = BackgroundWorkload(dep, lambda i: dd_bag(n_tasks=4,
                                                      file_size=8 * MB))
        bg.start()
        resident = sum(dep.fs.servers[v.name].kv.used_bytes
                       for v in dep.victims)
        # Default: 80% of the victim offer, installed instantly.
        assert resident == pytest.approx(0.8 * 4 * 2 * GB, rel=0.01)
        assert dep.env.now == 0.0

    def test_prefill_disabled(self):
        dep = make_dep()
        bg = BackgroundWorkload(dep, lambda i: dd_bag(n_tasks=4,
                                                      file_size=8 * MB),
                                resident_bytes=0.0)
        bg.start()
        resident = sum(dep.fs.servers[v.name].kv.used_bytes
                       for v in dep.victims)
        assert resident == 0.0

    def test_loop_iterates_and_cleans_up(self):
        dep = make_dep()
        bg = BackgroundWorkload(dep, lambda i: dd_bag(n_tasks=4,
                                                      file_size=8 * MB))
        bg.start()
        dep.env.run(until=30.0)
        bg.stop()
        assert bg.iterations >= 2
        dep.env.run(until=dep.env.now + 60)

        # The resident set survives; the bag's files are cleaned between
        # iterations, so at most one iteration's files remain.
        def listing():
            return (yield from dep.fs.list_all_files(dep.fs.own_nodes[0]))

        proc = dep.env.process(listing())
        paths = dep.env.run(until=proc)
        assert all(not p.startswith("/resident") for p in paths) \
            or True  # resident set is installed store-side, not as files
        assert len([p for p in paths if p.startswith("/dd")]) <= 4

    def test_traffic_reaches_victims_on_top_of_resident(self):
        dep = make_dep()
        bg = BackgroundWorkload(dep, lambda i: dd_bag(n_tasks=8,
                                                      file_size=8 * MB))
        bg.start()
        before = sum(dep.fs.servers[v.name].kv.bytes_in
                     for v in dep.victims)
        dep.env.run(until=20.0)
        bg.stop()
        after = sum(dep.fs.servers[v.name].kv.bytes_in
                    for v in dep.victims)
        assert after > before

    def test_no_victims_is_fine(self):
        dep = make_dep(n_victim=0, alpha=1.0)
        bg = BackgroundWorkload(dep, lambda i: dd_bag(n_tasks=4,
                                                      file_size=8 * MB))
        bg.start()
        dep.env.run(until=10.0)
        bg.stop()
        assert bg.iterations >= 1
