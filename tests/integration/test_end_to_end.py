"""End-to-end integration tests across all subsystems."""

import pytest

from repro.cluster import MemoryPressureMonitor
from repro.core import DeploymentConfig, MemFSSDeployment
from repro.store import StoreError
from repro.units import GB, MB
from repro.workflows import blast, dd_bag, montage


def small_config(**kw):
    base = dict(n_own=2, n_victim=4, alpha=0.25, victim_memory=2 * GB,
                own_store_capacity=8 * GB, stripe_size=8 * MB)
    base.update(kw)
    return DeploymentConfig(**base)


class TestWorkflowsOnDeployment:
    def test_montage_completes(self):
        dep = MemFSSDeployment(small_config())
        wf = montage(width=8, compute_scale=0.01)
        result = dep.engine.execute(wf)
        assert len(result.tasks) == len(wf)
        # The sequential tail dominates even at tiny scale.
        spans = {s: result.stage_span(s) for s in wf.stages()}
        assert spans["mBgModel"][1] > spans["mProjectPP"][1]

    def test_blast_completes_with_streaming_io(self):
        dep = MemFSSDeployment(small_config())
        wf = blast(n_searches=8, db_bytes=256 * MB, chunk_bytes=32 * MB,
                   search_seconds=5.0, split_seconds=2.0)
        result = dep.engine.execute(wf)
        assert len(result.tasks) == 10  # split + 8 searches + merge
        search = result.tasks["search-0000"]
        assert search.read_bytes == pytest.approx(32 * MB)

    def test_dd_bag_fills_victims_proportionally(self):
        dep = MemFSSDeployment(small_config(alpha=0.25))
        dep.engine.execute(dd_bag(n_tasks=32, file_size=16 * MB))
        own_bytes = sum(dep.fs.servers[n.name].kv.used_bytes
                        for n in dep.own)
        vic_bytes = sum(dep.fs.servers[n.name].kv.used_bytes
                        for n in dep.victims)
        frac = own_bytes / (own_bytes + vic_bytes)
        assert frac == pytest.approx(0.25, abs=0.12)

    def test_store_capacity_exhaustion_raises(self):
        dep = MemFSSDeployment(small_config(
            victim_memory=256 * MB, own_store_capacity=256 * MB))
        with pytest.raises(StoreError) as err:
            dep.engine.execute(dd_bag(n_tasks=64, file_size=64 * MB))
        assert err.value.code == "full"


class TestEvictionDuringWorkflow:
    def test_pressure_eviction_mid_run_preserves_results(self):
        dep = MemFSSDeployment(small_config())
        env = dep.env
        victim = dep.victims[0]
        monitor = MemoryPressureMonitor(env, victim,
                                        dep.cluster.reservations,
                                        threshold=8 * GB, interval=0.5)

        def burst():
            yield env.timeout(0.5)
            victim.allocate_memory("tenant", 52 * GB)

        env.process(burst())
        # Tasks compute for a while so the bag is still mid-flight when
        # the burst lands and the monitor reacts.
        result = dep.engine.execute(dd_bag(n_tasks=48, file_size=16 * MB,
                                           compute_seconds=2.0))
        # Keep the monitor sampling while the evacuation drains, then stop.
        env.run(until=env.now + 120)
        monitor.stop()
        assert len(result.tasks) == 48
        assert victim.name not in dep.fs.servers
        assert dep.manager.evictions == 1

        # Every written file is still readable after the eviction.
        def verify():
            ok = 0
            for i in range(48):
                size, _ = yield from dep.fs.read_file(
                    dep.own[0], f"/dd/out-{i:05d}")
                ok += size == 16 * MB
            return ok

        proc = env.process(verify())
        assert env.run(until=proc) == 48

    def test_two_evictions(self):
        dep = MemFSSDeployment(small_config(n_victim=5))
        env = dep.env
        dep.engine.execute(dd_bag(n_tasks=24, file_size=16 * MB))
        for victim in dep.victims[:2]:
            proc = env.process(dep.manager.withdraw(victim))
            env.run(until=proc)
        assert dep.manager.evictions == 2
        assert len(dep.fs.policy.nodes_of("victim")) == 3

        def verify():
            sizes = []
            for i in range(24):
                size, _ = yield from dep.fs.read_file(
                    dep.own[0], f"/dd/out-{i:05d}")
                sizes.append(size)
            return sizes

        proc = env.process(verify())
        assert all(s == 16 * MB for s in env.run(until=proc))


class TestDeterminism:
    def test_full_experiment_deterministic(self):
        def once():
            dep = MemFSSDeployment(small_config())
            res = dep.engine.execute(dd_bag(n_tasks=24, file_size=16 * MB))
            vic = dep.victim_class_utilization()
            return (res.makespan, vic["cpu"], vic["rx"])

        assert once() == once()
