#!/usr/bin/env python
"""How much does scavenging hurt the victims?  (The Fig. 3 question.)

Runs STREAM, the MPI latency benchmark, and TeraSort on the victim nodes,
first undisturbed, then while the own nodes loop the dd bag through
MemFSS at two data splits.  Prints the slowdown table.

Run:  python examples/tenant_interference.py
"""

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.core.slowdown import BackgroundWorkload, _run_suite
from repro.metrics import render_table
from repro.tenants import hibench_hadoop, hpcc_benchmark
from repro.units import MB
from repro.workflows import dd_bag


def suite(n_victims: int):
    return [hpcc_benchmark("STREAM", scale=0.5),
            hpcc_benchmark("latency", scale=0.5),
            hibench_hadoop("TeraSort", n_nodes=n_victims, scale=0.3)]


def measure(alpha: float):
    config = DeploymentConfig(alpha=alpha)
    base = MemFSSDeployment(config)
    baseline = _run_suite(base, suite(len(base.victims)))

    loaded_dep = MemFSSDeployment(config)
    background = BackgroundWorkload(
        loaded_dep, lambda i: dd_bag(n_tasks=128, file_size=128 * MB))
    background.start()
    loaded_dep.env.run(until=loaded_dep.env.now + 45.0)
    loaded = _run_suite(loaded_dep, suite(len(loaded_dep.victims)))
    background.stop()
    return baseline, loaded


def main() -> None:
    rows = []
    for alpha in (0.25, 0.50):
        baseline, loaded = measure(alpha)
        for bench in baseline:
            pct = (loaded[bench] / baseline[bench] - 1) * 100
            rows.append([f"{alpha * 100:.0f}%", bench,
                         f"{baseline[bench]:.1f} s",
                         f"{loaded[bench]:.1f} s", f"{pct:+.1f}%"])
    print(render_table(
        ["alpha", "victim benchmark", "alone", "scavenged", "slowdown"],
        rows, title="Tenant slowdown under the dd bag (Fig. 3/4 style)"))
    print("\nNote the paper's pattern: memory-bandwidth- and shuffle-bound")
    print("benchmarks feel the scavenger; and 50% (less victim traffic)")
    print("is milder than 25%.")


if __name__ == "__main__":
    main()
