#!/usr/bin/env python
"""Eviction under memory pressure: the monitord path (§III-A).

A tenant's memory demand spikes on one victim node while MemFSS holds
data there.  The per-node memory-pressure monitor revokes the scavenge
lease, the scavenging manager migrates the node's stripes to the next
nodes in their HRW rank chains, and every file remains readable — the
"free its memory and remove itself from that node" protocol, end to end.

Run:  python examples/elastic_eviction.py
"""

from repro.cluster import MemoryPressureMonitor
from repro.core import DeploymentConfig, MemFSSDeployment
from repro.units import GB, MB, fmt_bytes


def main() -> None:
    config = DeploymentConfig(n_own=2, n_victim=6, alpha=0.25,
                              victim_memory=4 * GB,
                              own_store_capacity=16 * GB,
                              stripe_size=8 * MB)
    dep = MemFSSDeployment(config)
    env, fs = dep.env, dep.fs

    # Watch one victim for memory pressure (sub-8 GB free triggers).
    victim = dep.victims[0]
    monitor = MemoryPressureMonitor(env, victim, dep.cluster.reservations,
                                    threshold=8 * GB, interval=1.0)

    def scenario():
        # Fill the file system with 48 files.
        for i in range(48):
            yield from fs.write_file(dep.own[0], f"/data/f{i}",
                                     nbytes=32 * MB)
        held = fs.servers[victim.name].kv.used_bytes
        print(f"t={env.now:6.1f}s  wrote 48 files; {victim.name} holds "
              f"{fmt_bytes(held)}")

        # The tenant's job on the victim suddenly needs its memory back.
        yield env.timeout(5)
        victim.allocate_memory("tenant-burst", 53 * GB)
        print(f"t={env.now:6.1f}s  tenant burst: {victim.name} free memory "
              f"drops to {fmt_bytes(victim.memory_free)}")

        # monitord notices within a second and revokes the lease; the
        # scavenger's watcher migrates the stripes.  Give it time.
        while victim.name in fs.servers:
            yield env.timeout(1)
        print(f"t={env.now:6.1f}s  {victim.name} evacuated "
              f"({fmt_bytes(dep.manager.migrated_bytes)} migrated, "
              f"{dep.manager.evictions} eviction)")

        # Every file is still there.
        ok = 0
        for i in range(48):
            size, _ = yield from fs.read_file(dep.own[0], f"/data/f{i}")
            ok += size == 32 * MB
        print(f"t={env.now:6.1f}s  re-read all files: {ok}/48 intact")
        monitor.stop()

    env.run(until=env.process(scenario()))
    print(f"\nplacement now: {fs.policy}")


if __name__ == "__main__":
    main()
