#!/usr/bin/env python
"""Montage with scavenging vs. standalone — the Table II scenario.

A Montage instance whose (no-GC) data footprint needs 20 dedicated nodes
is instead run on 8 own nodes, scavenging the remaining memory from 32
victim reservations.  The run prints runtime, node-hours, and the
per-stage profile that explains Montage's limited scalability (§II-A).

Run:  python examples/montage_scavenging.py
"""

from repro.core import run_scavenging, run_standalone
from repro.units import GB, MB, fmt_bytes
from repro.workflows import montage, stage_statistics

# One-sixteenth-scale data (keeps the full sequential tail; see the
# parallel_task_scale note in repro.workflows.generators.montage).
SCALE = 16
WIDTH = 2048 // SCALE


def build():
    return montage(width=WIDTH, parallel_task_scale=float(SCALE))


def main() -> None:
    wf = build()
    print(f"Montage instance: {len(wf)} tasks, "
          f"{fmt_bytes(wf.total_output_bytes)} written")
    print("\nstage profile (why the CPU utilization collapses):")
    for s in stage_statistics(wf):
        kind = "parallel" if s.n_tasks > 8 else "SEQUENTIAL"
        print(f"  {s.stage:12s} {s.n_tasks:5d} tasks x "
              f"{s.mean_task_seconds:7.1f} s   [{kind}]")

    own_cap = 60 * GB / SCALE
    # Fine stripes keep per-node packing imbalance small at ~90% fill.
    stripe = 4 * MB
    standalone = run_standalone(build(), n_nodes=20,
                                store_capacity=own_cap,
                                stripe_size=stripe)
    print(f"\nstandalone, 20 nodes: {standalone.runtime_s:.0f} s, "
          f"{standalone.node_hours:.2f} node-hours")

    scav = run_scavenging(build(), n_own=8, n_victim=32,
                          victim_memory=28 * GB / SCALE,
                          own_store_capacity=own_cap,
                          stripe_size=stripe)
    print(f"scavenging, 8 own + 32 victims: {scav.runtime_s:.0f} s, "
          f"{scav.node_hours:.2f} node-hours")

    slower = (scav.runtime_s / standalone.runtime_s - 1) * 100
    saved = (1 - scav.node_hours / standalone.node_hours) * 100
    print(f"\n=> {slower:+.1f}% runtime for {saved:.0f}% fewer node-hours "
          "(the paper's Table II trade)")


if __name__ == "__main__":
    main()
