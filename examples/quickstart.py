#!/usr/bin/env python
"""Quickstart: deploy MemFSS, write and read files, inspect utilization.

Builds the paper's setup (8 own + 32 victim DAS-5 nodes, 25 % of data on
own nodes), mounts the file system on an own node, does some POSIX-style
I/O, and runs a small dd bag through the workflow engine.

Run:  python examples/quickstart.py
"""

from repro.core import DeploymentConfig, MemFSSDeployment
from repro.fs import MountPoint
from repro.units import MB, fmt_bytes, fmt_rate
from repro.workflows import dd_bag


def main() -> None:
    # 1. Deploy: cluster + reservations + stores + weighted placement.
    config = DeploymentConfig(n_own=8, n_victim=32, alpha=0.25)
    dep = MemFSSDeployment(config)
    env = dep.env
    print(f"deployed: {len(dep.own)} own + {len(dep.victims)} victim nodes,"
          f" total FS capacity {fmt_bytes(dep.fs.total_capacity())}")

    # 2. POSIX-ish I/O through a FUSE-like mount (generators driven by
    #    the simulation environment).
    mount = MountPoint(dep.fs, dep.own[0])

    def session():
        yield from mount.mkdir("/demo")
        handle = yield from mount.open("/demo/hello.dat", "w")
        yield from handle.write(b"memory scavenging!" * 1024)
        meta = yield from handle.close()
        print(f"wrote /demo/hello.dat: {meta.size} bytes in "
              f"{meta.n_stripes} stripe(s)")

        size, payload = yield from mount.read_file("/demo/hello.dat")
        assert payload.startswith(b"memory scavenging!")
        listing = yield from mount.listdir("/demo")
        print(f"read back {size} bytes; /demo contains {listing}")

        # Where did the stripes go?  The placement is deterministic.
        meta = yield from mount.stat("/demo/hello.dat")
        print(f"placement snapshot classes: {list(meta.class_weights)}")

    env.run(until=env.process(session()))

    # 3. Run a bag of dd tasks on the own nodes (the Fig. 2 workload).
    result = dep.engine.execute(dd_bag(n_tasks=64, file_size=128 * MB))
    print(f"\ndd bag: 64 x 128 MB in {result.makespan:.2f} simulated "
          f"seconds")
    vic = dep.victim_class_utilization()
    own = dep.own_class_utilization()
    nic = dep.victims[0].spec.nic_bandwidth
    print(f"victim class: CPU {vic['cpu'] * 100:.2f}%, "
          f"ingest {fmt_rate(vic['rx'] * nic)}")
    print(f"own class:    CPU {own['cpu'] * 100:.2f}%, "
          f"egress {fmt_rate(own['tx'] * nic)}")


if __name__ == "__main__":
    main()
