"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` (and the
fallback inside ``pip install -e .`` on older pips) use the classic
``setup.py develop`` path.
"""

from setuptools import setup

# Older setuptools' develop mode does not materialize [project.scripts]
# from pyproject.toml, so the console script is repeated here.
setup(entry_points={
    "console_scripts": ["memfss = repro.cli:main"],
})
