"""Cluster substrate: machines, fabric, containers, reservations."""

from .machine import DAS5, MachineSpec
from .node import Node, OutOfMemory
from .network import Fabric
from .container import CapExceeded, Container, ResourceCaps
from .reservation import (InsufficientNodes, Reservation, ReservationSystem,
                          ScavengeLease, ScavengeOffer)
from .monitord import MemoryPressureMonitor
from .cluster import Cluster, build_das5

__all__ = [
    "DAS5", "MachineSpec", "Node", "OutOfMemory", "Fabric",
    "Container", "ResourceCaps", "CapExceeded",
    "ReservationSystem", "Reservation", "ScavengeOffer", "ScavengeLease",
    "InsufficientNodes", "MemoryPressureMonitor",
    "Cluster", "build_das5",
]
