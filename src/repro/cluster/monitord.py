"""Per-node memory-pressure monitor.

Paper §III-A (admin-enforced mechanism): *"whenever the tenant applications
would need more memory, a monitoring process would send a signal to MemFSS
to free its memory and remove itself from that node."*

:class:`MemoryPressureMonitor` samples a node's free memory at a fixed
interval; when it drops below a threshold it asks the reservation system to
revoke all scavenge leases on the node.  The MemFSS scavenger reacts to the
revocation event by re-hashing the node's class out of the placement and
migrating its stripes (see :mod:`repro.fs.scavenger`).
"""

from __future__ import annotations

from ..sim import Environment
from .node import Node
from .reservation import ReservationSystem

__all__ = ["MemoryPressureMonitor"]


class MemoryPressureMonitor:
    """Signals lease revocation when a node's free memory runs low."""

    def __init__(self, env: Environment, node: Node,
                 system: ReservationSystem, threshold: float,
                 interval: float = 1.0, honor_notice: bool = False):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.node = node
        self.system = system
        self.threshold = float(threshold)
        self.interval = float(interval)
        # Market mode: leases carrying a notice term get the announced
        # drain window on pressure instead of the legacy surprise reclaim.
        self.honor_notice = honor_notice
        self.revocations = 0
        self._stopped = False
        self._process = env.process(self._run(), name=f"monitord@{node.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped:
            if self.node.memory_free < self.threshold:
                hit = self.system.revoke_leases(
                    self.node, cause="pressure",
                    honor_notice=self.honor_notice)
                self.revocations += hit
            yield self.env.timeout(self.interval)
