"""Convenience assembly of a whole simulated cluster."""

from __future__ import annotations

from ..sim import Environment, Monitor, RngRegistry
from .machine import DAS5, MachineSpec
from .network import Fabric
from .node import Node
from .reservation import ReservationSystem

__all__ = ["Cluster", "build_das5"]


class Cluster:
    """Environment + nodes + fabric + reservation system, wired together."""

    def __init__(self, env: Environment, nodes: list[Node], fabric: Fabric,
                 rng: RngRegistry | None = None):
        self.env = env
        self.nodes = nodes
        self.fabric = fabric
        self.reservations = ReservationSystem(env, nodes)
        self.rng = rng or RngRegistry(0)

    def node(self, name: str) -> Node:
        return self.fabric.node(name)

    def monitor(self, interval: float = 1.0,
                nodes: list[Node] | None = None) -> Monitor:
        """A monitor with CPU/tx/rx probes for the given nodes (default all)."""
        mon = Monitor(self.env, interval)
        for n in (nodes if nodes is not None else self.nodes):
            mon.add_probe(f"{n.name}.cpu", lambda n=n: n.cpu_utilization)
            mon.add_probe(f"{n.name}.tx", lambda n=n: n.nic_tx_utilization)
            mon.add_probe(f"{n.name}.rx", lambda n=n: n.nic_rx_utilization)
            mon.add_probe(f"{n.name}.mem", lambda n=n: n.memory_utilization)
        return mon


def build_das5(env: Environment | None = None, n_nodes: int = 40,
               spec: MachineSpec = DAS5, seed: int = 0,
               solver: str | None = None, scale: int = 1) -> Cluster:
    """A DAS-5-like cluster of *n_nodes* identical machines (paper §IV-A).

    *solver* selects the fabric's flow-solver mode (see
    :class:`~repro.sim.flownet.FlowNetwork`).  *scale* multiplies
    *n_nodes* — the ×16 Fig. 2 runs build ``build_das5(scale=16)``-sized
    fabrics (1088 nodes for the 68-node paper setup).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    n_nodes *= scale
    env = env or Environment()
    nodes = [Node(env, f"node{i:03d}", spec) for i in range(n_nodes)]
    fabric = Fabric(env, solver=solver)
    fabric.attach_all(nodes)
    return Cluster(env, nodes, fabric, RngRegistry(seed))
