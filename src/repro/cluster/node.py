"""A simulated cluster node.

Each node owns three fluid resources (CPU core-seconds, memory bandwidth,
disk bandwidth), a capacity-accounted memory pool, and — once attached to a
:class:`~repro.cluster.network.Fabric` — one egress and one ingress NIC
link.  Memory is tracked by named owners; whatever is unclaimed acts as the
Linux **page cache**, which is exactly the resource DFSIO-read competes
with MemFSS for in Fig. 4.
"""

from __future__ import annotations

from ..sim import Environment, FluidResource
from ..sim.flownet import Link
from .machine import MachineSpec

__all__ = ["Node", "MemoryError_", "OutOfMemory"]


class OutOfMemory(RuntimeError):
    """An allocation exceeded the node's physical memory."""


# Back-compat alias used by early tests.
MemoryError_ = OutOfMemory


class Node:
    """Runtime state of one machine in the simulated cluster."""

    def __init__(self, env: Environment, name: str, spec: MachineSpec):
        self.env = env
        self.name = name
        self.spec = spec
        # CPU is a fluid resource measured in core-seconds per second: a
        # task needing 10 core-seconds with cap 2 runs 2-wide for >= 5 s.
        self.cpu = FluidResource(env, capacity=float(spec.cores),
                                 name=f"{name}.cpu")
        self.membw = FluidResource(env, capacity=spec.memory_bandwidth,
                                   name=f"{name}.membw")
        self.disk = FluidResource(env, capacity=spec.disk_bandwidth,
                                  name=f"{name}.disk")
        # NIC links are attached by the Fabric.
        self.tx: Link | None = None
        self.rx: Link | None = None
        self._allocations: dict[str, float] = {}

    # -- memory accounting -----------------------------------------------------
    @property
    def memory_total(self) -> float:
        return self.spec.memory

    @property
    def memory_allocated(self) -> float:
        """Bytes claimed by named owners (OS reservation included)."""
        return self.spec.os_reserved + sum(self._allocations.values())

    @property
    def memory_free(self) -> float:
        """Bytes not claimed by any owner — i.e. available page cache."""
        return self.spec.memory - self.memory_allocated

    @property
    def page_cache_bytes(self) -> float:
        """Alias for :attr:`memory_free`: unclaimed memory caches file data."""
        return self.memory_free

    def memory_owned_by(self, owner: str) -> float:
        return self._allocations.get(owner, 0.0)

    def allocate_memory(self, owner: str, nbytes: float) -> None:
        """Claim *nbytes* for *owner* (cumulative per owner)."""
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if nbytes > self.memory_free:
            raise OutOfMemory(
                f"{self.name}: {owner!r} wants {nbytes:.3g} B but only "
                f"{self.memory_free:.3g} B free")
        self._allocations[owner] = self._allocations.get(owner, 0.0) + nbytes

    def free_memory(self, owner: str, nbytes: float | None = None) -> float:
        """Release *nbytes* (default: everything) held by *owner*; returns
        the amount actually freed."""
        held = self._allocations.get(owner, 0.0)
        amount = held if nbytes is None else min(float(nbytes), held)
        if amount < 0:
            raise ValueError("free amount must be non-negative")
        rest = held - amount
        if rest <= 0:
            self._allocations.pop(owner, None)
        else:
            self._allocations[owner] = rest
        return amount

    # -- utilization probes -------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        return self.cpu.utilization

    @property
    def nic_tx_utilization(self) -> float:
        return self.tx.utilization if self.tx is not None else 0.0

    @property
    def nic_rx_utilization(self) -> float:
        return self.rx.utilization if self.rx is not None else 0.0

    @property
    def memory_utilization(self) -> float:
        return self.memory_allocated / self.spec.memory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name}>"
