"""Cluster reservation system with a secondary scavenging queue.

Paper §III-A proposes two victim-selection mechanisms, both implemented
here as minor extensions of an ordinary space-sharing reservation system:

1. **Voluntary** — users register their reserved nodes on a *secondary
   queue* together with the amount of memory MemFSS may use there.
2. **Admin-enforced** — the administrator registers every reserved node
   with a fixed cap (the paper's example: 10 GB), and a monitoring process
   (:mod:`repro.cluster.monitord`) signals MemFSS to free its memory and
   leave whenever the tenant needs the memory back.

A :class:`ScavengeLease` is MemFSS's claim on one offer; revoking it fires
``lease.revoked`` which the scavenger subscribes to.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from typing import Any

from ..sim import Environment, Event
from .node import Node

__all__ = [
    "Reservation",
    "ScavengeOffer",
    "ScavengeLease",
    "ReservationSystem",
    "InsufficientNodes",
]


class InsufficientNodes(RuntimeError):
    """An immediate reservation could not be satisfied."""


class Reservation:
    """A set of nodes granted to one user, with node-hours accounting."""

    def __init__(self, env: Environment, rid: int, user: str,
                 nodes: list[Node]):
        self.env = env
        self.id = rid
        self.user = user
        self.nodes = list(nodes)
        self.start_time = env.now
        self.end_time: float | None = None

    @property
    def active(self) -> bool:
        return self.end_time is None

    @property
    def node_seconds(self) -> float:
        end = self.end_time if self.end_time is not None else self.env.now
        return len(self.nodes) * (end - self.start_time)

    @property
    def node_hours(self) -> float:
        return self.node_seconds / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Reservation #{self.id} {self.user} "
                f"{len(self.nodes)} nodes>")


class ScavengeOffer:
    """One node registered on the secondary queue.

    Market terms (both optional, defaulting to the paper's open-ended
    offers): *duration* bounds how long a lease on this offer may run,
    and *notice* is the revocation-notice period — the seconds of warning
    a holder receives before the memory is actually reclaimed, which lets
    the scavenger drain the node instead of treating the reclaim as a
    surprise crash.
    """

    def __init__(self, node: Node, max_memory: float, voluntary: bool,
                 owner: str, duration: float | None = None,
                 notice: float = 0.0):
        if max_memory <= 0:
            raise ValueError("max_memory must be positive")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if notice < 0:
            raise ValueError("notice must be >= 0")
        self.node = node
        self.max_memory = float(max_memory)
        self.voluntary = voluntary
        self.owner = owner
        self.duration = None if duration is None else float(duration)
        self.notice = float(notice)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "voluntary" if self.voluntary else "enforced"
        return f"<ScavengeOffer {self.node.name} {kind} {self.max_memory:.3g}B>"


class ScavengeLease:
    """MemFSS's active claim on a scavenge offer.

    ``revoked`` triggers when the node must be vacated (tenant memory
    pressure, or the offer being withdrawn).  Leases inherit their
    offer's market terms: ``expires_at`` (granted time + offer duration,
    ``None`` for open-ended leases) and ``notice`` — when a revocation
    arrives *with notice*, the ``notified`` event fires first and the
    actual ``revoked`` follows ``notice`` seconds later, giving the
    scavenger a drain window instead of a surprise crash.
    """

    def __init__(self, env: Environment, offer: ScavengeOffer,
                 memory: float, holder: str):
        self.env = env
        self.offer = offer
        self.memory = float(memory)
        self.holder = holder
        self.revoked: Event = env.event()
        self.notified: Event = env.event()
        self.granted_at = env.now
        self.notice = offer.notice
        self.expires_at = (None if offer.duration is None
                           else env.now + offer.duration)
        self._notice_deadline: float | None = None

    @property
    def node(self) -> Node:
        return self.offer.node

    @property
    def active(self) -> bool:
        return not self.revoked.triggered

    @property
    def noticed(self) -> bool:
        """A revocation notice is pending (drain window running)."""
        return self.notified.triggered and self.active

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until expiry (``None`` for open-ended leases)."""
        if self.expires_at is None:
            return None
        return self.expires_at - (self.env.now if now is None else now)

    def revoke(self, cause: Any = "revoked") -> None:
        """Immediate revocation (the legacy surprise path)."""
        if not self.revoked.triggered:
            self.revoked.succeed(cause)

    def revoke_with_notice(self, cause: Any = "revoked",
                           notice: float | None = None) -> float:
        """Announce revocation now; actually revoke after the notice
        period (the lease's own term unless *notice* overrides it).
        Returns the revocation deadline.  Zero notice degenerates to an
        immediate :meth:`revoke`; repeated notices keep the earliest
        deadline."""
        if self._notice_deadline is not None:
            return self._notice_deadline
        period = self.notice if notice is None else float(notice)
        deadline = self.env.now + period
        if not self.revoked.triggered:
            self._notice_deadline = deadline
            self.notified.succeed((cause, deadline))
            if period <= 0:
                self.revoke(cause)
            else:
                self.env.call_later(period, lambda: self.revoke(cause))
        return deadline


class ReservationSystem:
    """Space-sharing node allocator plus the secondary scavenging queue."""

    def __init__(self, env: Environment, nodes: Iterable[Node]):
        self.env = env
        self._free: list[Node] = list(nodes)
        names = [n.name for n in self._free]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self._reservations: dict[int, Reservation] = {}
        self._offers: dict[str, ScavengeOffer] = {}
        self._leases: list[ScavengeLease] = []
        self._ids = itertools.count(1)
        self.enforced_cap: float | None = None
        self.enforced_notice: float = 0.0

    # -- primary queue -----------------------------------------------------------
    @property
    def free_nodes(self) -> tuple[Node, ...]:
        return tuple(self._free)

    @property
    def reservations(self) -> tuple[Reservation, ...]:
        return tuple(self._reservations.values())

    def reserve(self, user: str, count: int) -> Reservation:
        """Immediately grant *count* nodes or raise :class:`InsufficientNodes`."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > len(self._free):
            raise InsufficientNodes(
                f"{user!r} wants {count} nodes, {len(self._free)} free")
        granted, self._free = self._free[:count], self._free[count:]
        res = Reservation(self.env, next(self._ids), user, granted)
        self._reservations[res.id] = res
        # Admin-enforced policy: new reservations are auto-registered.
        if self.enforced_cap is not None:
            for node in granted:
                self._offers[node.name] = ScavengeOffer(
                    node, self.enforced_cap, voluntary=False, owner=user,
                    notice=self.enforced_notice)
        return res

    def release(self, reservation: Reservation) -> None:
        if reservation.id not in self._reservations:
            raise KeyError(f"unknown reservation {reservation.id}")
        reservation.end_time = self.env.now
        del self._reservations[reservation.id]
        for node in reservation.nodes:
            # A released node leaves the secondary queue and loses leases.
            self.withdraw_offer(node, cause="reservation released")
            self._free.append(node)

    # -- secondary (scavenging) queue ---------------------------------------------
    def register_offer(self, node: Node, max_memory: float,
                       owner: str = "", voluntary: bool = True,
                       duration: float | None = None,
                       notice: float = 0.0) -> ScavengeOffer:
        """Voluntary registration of a reserved node (§III-A mechanism 1),
        optionally with market terms (lease *duration* and revocation
        *notice* period — see :class:`ScavengeOffer`)."""
        offer = ScavengeOffer(node, max_memory, voluntary, owner,
                              duration=duration, notice=notice)
        self._offers[node.name] = offer
        return offer

    def enforce_scavenging(self, cap: float, notice: float = 0.0) -> None:
        """Admin policy (§III-A mechanism 2): every node of every current and
        future reservation is registered with *cap* bytes.  A site-wide
        revocation *notice* term turns enforced reclaims into announced
        drains (paper default: none — surprise reclaim)."""
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.enforced_cap = float(cap)
        self.enforced_notice = float(notice)
        for res in self._reservations.values():
            for node in res.nodes:
                self._offers.setdefault(
                    node.name,
                    ScavengeOffer(node, cap, voluntary=False, owner=res.user,
                                  notice=notice))

    def offers(self) -> tuple[ScavengeOffer, ...]:
        return tuple(self._offers.values())

    def _prune_revoked(self) -> None:
        """Drop leases whose revocation has already fired.  The
        with-notice and auto-expiry paths revoke through deferred
        ``call_later`` callbacks that cannot remove inline, so dead
        leases are reaped lazily wherever ``_leases`` is consulted —
        otherwise long churn runs accumulate them forever."""
        self._leases = [l for l in self._leases if not l.revoked.triggered]

    def withdraw_offer(self, node: Node, cause: Any = "withdrawn") -> None:
        self._offers.pop(node.name, None)
        for lease in [l for l in self._leases if l.node is node]:
            lease.revoke(cause)
        self._prune_revoked()

    def lease(self, node: Node, memory: float, holder: str) -> ScavengeLease:
        """Claim up to the offered memory on *node*."""
        offer = self._offers.get(node.name)
        if offer is None:
            raise KeyError(f"{node.name} is not on the secondary queue")
        if memory > offer.max_memory:
            raise ValueError(
                f"{memory:.3g} B exceeds the {offer.max_memory:.3g} B offer "
                f"on {node.name}")
        lease = ScavengeLease(self.env, offer, memory, holder)
        self._leases.append(lease)
        if offer.duration is not None:
            # Termed offers self-expire: the notice fires ahead of the
            # deadline so holders drain instead of crashing out.
            delay = max(0.0, offer.duration - offer.notice)
            self.env.call_later(
                delay, lambda: lease.revoke_with_notice("expired"))
        return lease

    def active_leases(self) -> tuple[ScavengeLease, ...]:
        self._prune_revoked()
        return tuple(self._leases)

    def revoke_leases(self, node: Node, cause: Any = "pressure",
                      honor_notice: bool = False) -> int:
        """Revoke every active lease on *node* (monitord hook).

        With *honor_notice* a lease carrying a notice term gets the
        announced drain window (:meth:`ScavengeLease.revoke_with_notice`)
        instead of the legacy immediate reclaim; leases already inside
        their window are left to run it out.
        """
        hit = 0
        for lease in [l for l in self._leases if l.node is node and l.active]:
            if honor_notice and lease.notice > 0:
                if not lease.notified.triggered:
                    lease.revoke_with_notice(cause)
                    hit += 1
                continue
            lease.revoke(cause)
            hit += 1
        self._prune_revoked()
        return hit
