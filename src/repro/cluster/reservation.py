"""Cluster reservation system with a secondary scavenging queue.

Paper §III-A proposes two victim-selection mechanisms, both implemented
here as minor extensions of an ordinary space-sharing reservation system:

1. **Voluntary** — users register their reserved nodes on a *secondary
   queue* together with the amount of memory MemFSS may use there.
2. **Admin-enforced** — the administrator registers every reserved node
   with a fixed cap (the paper's example: 10 GB), and a monitoring process
   (:mod:`repro.cluster.monitord`) signals MemFSS to free its memory and
   leave whenever the tenant needs the memory back.

A :class:`ScavengeLease` is MemFSS's claim on one offer; revoking it fires
``lease.revoked`` which the scavenger subscribes to.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from typing import Any

from ..sim import Environment, Event
from .node import Node

__all__ = [
    "Reservation",
    "ScavengeOffer",
    "ScavengeLease",
    "ReservationSystem",
    "InsufficientNodes",
]


class InsufficientNodes(RuntimeError):
    """An immediate reservation could not be satisfied."""


class Reservation:
    """A set of nodes granted to one user, with node-hours accounting."""

    def __init__(self, env: Environment, rid: int, user: str,
                 nodes: list[Node]):
        self.env = env
        self.id = rid
        self.user = user
        self.nodes = list(nodes)
        self.start_time = env.now
        self.end_time: float | None = None

    @property
    def active(self) -> bool:
        return self.end_time is None

    @property
    def node_seconds(self) -> float:
        end = self.end_time if self.end_time is not None else self.env.now
        return len(self.nodes) * (end - self.start_time)

    @property
    def node_hours(self) -> float:
        return self.node_seconds / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Reservation #{self.id} {self.user} "
                f"{len(self.nodes)} nodes>")


class ScavengeOffer:
    """One node registered on the secondary queue."""

    def __init__(self, node: Node, max_memory: float, voluntary: bool,
                 owner: str):
        if max_memory <= 0:
            raise ValueError("max_memory must be positive")
        self.node = node
        self.max_memory = float(max_memory)
        self.voluntary = voluntary
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "voluntary" if self.voluntary else "enforced"
        return f"<ScavengeOffer {self.node.name} {kind} {self.max_memory:.3g}B>"


class ScavengeLease:
    """MemFSS's active claim on a scavenge offer.

    ``revoked`` triggers when the node must be vacated (tenant memory
    pressure, or the offer being withdrawn).
    """

    def __init__(self, env: Environment, offer: ScavengeOffer,
                 memory: float, holder: str):
        self.env = env
        self.offer = offer
        self.memory = float(memory)
        self.holder = holder
        self.revoked: Event = env.event()
        self.granted_at = env.now

    @property
    def node(self) -> Node:
        return self.offer.node

    @property
    def active(self) -> bool:
        return not self.revoked.triggered

    def revoke(self, cause: Any = "revoked") -> None:
        if not self.revoked.triggered:
            self.revoked.succeed(cause)


class ReservationSystem:
    """Space-sharing node allocator plus the secondary scavenging queue."""

    def __init__(self, env: Environment, nodes: Iterable[Node]):
        self.env = env
        self._free: list[Node] = list(nodes)
        names = [n.name for n in self._free]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self._reservations: dict[int, Reservation] = {}
        self._offers: dict[str, ScavengeOffer] = {}
        self._leases: list[ScavengeLease] = []
        self._ids = itertools.count(1)
        self.enforced_cap: float | None = None

    # -- primary queue -----------------------------------------------------------
    @property
    def free_nodes(self) -> tuple[Node, ...]:
        return tuple(self._free)

    @property
    def reservations(self) -> tuple[Reservation, ...]:
        return tuple(self._reservations.values())

    def reserve(self, user: str, count: int) -> Reservation:
        """Immediately grant *count* nodes or raise :class:`InsufficientNodes`."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > len(self._free):
            raise InsufficientNodes(
                f"{user!r} wants {count} nodes, {len(self._free)} free")
        granted, self._free = self._free[:count], self._free[count:]
        res = Reservation(self.env, next(self._ids), user, granted)
        self._reservations[res.id] = res
        # Admin-enforced policy: new reservations are auto-registered.
        if self.enforced_cap is not None:
            for node in granted:
                self._offers[node.name] = ScavengeOffer(
                    node, self.enforced_cap, voluntary=False, owner=user)
        return res

    def release(self, reservation: Reservation) -> None:
        if reservation.id not in self._reservations:
            raise KeyError(f"unknown reservation {reservation.id}")
        reservation.end_time = self.env.now
        del self._reservations[reservation.id]
        for node in reservation.nodes:
            # A released node leaves the secondary queue and loses leases.
            self.withdraw_offer(node, cause="reservation released")
            self._free.append(node)

    # -- secondary (scavenging) queue ---------------------------------------------
    def register_offer(self, node: Node, max_memory: float,
                       owner: str = "", voluntary: bool = True) -> ScavengeOffer:
        """Voluntary registration of a reserved node (§III-A mechanism 1)."""
        offer = ScavengeOffer(node, max_memory, voluntary, owner)
        self._offers[node.name] = offer
        return offer

    def enforce_scavenging(self, cap: float) -> None:
        """Admin policy (§III-A mechanism 2): every node of every current and
        future reservation is registered with *cap* bytes."""
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.enforced_cap = float(cap)
        for res in self._reservations.values():
            for node in res.nodes:
                self._offers.setdefault(
                    node.name,
                    ScavengeOffer(node, cap, voluntary=False, owner=res.user))

    def offers(self) -> tuple[ScavengeOffer, ...]:
        return tuple(self._offers.values())

    def withdraw_offer(self, node: Node, cause: Any = "withdrawn") -> None:
        self._offers.pop(node.name, None)
        for lease in [l for l in self._leases if l.node is node]:
            lease.revoke(cause)
            self._leases.remove(lease)

    def lease(self, node: Node, memory: float, holder: str) -> ScavengeLease:
        """Claim up to the offered memory on *node*."""
        offer = self._offers.get(node.name)
        if offer is None:
            raise KeyError(f"{node.name} is not on the secondary queue")
        if memory > offer.max_memory:
            raise ValueError(
                f"{memory:.3g} B exceeds the {offer.max_memory:.3g} B offer "
                f"on {node.name}")
        lease = ScavengeLease(self.env, offer, memory, holder)
        self._leases.append(lease)
        return lease

    def active_leases(self) -> tuple[ScavengeLease, ...]:
        return tuple(l for l in self._leases if l.active)

    def revoke_leases(self, node: Node, cause: Any = "pressure") -> int:
        """Revoke every active lease on *node* (monitord hook)."""
        hit = 0
        for lease in [l for l in self._leases if l.node is node and l.active]:
            lease.revoke(cause)
            self._leases.remove(lease)
            hit += 1
        return hit
