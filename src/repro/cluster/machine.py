"""DAS-5 machine model constants (paper §IV-A).

Each DAS-5 node has dual 8-core Intel E5-2630v3 CPUs (two hyperthreads per
core → 32 scheduling slots), 64 GB of memory, and 54 Gbps FDR InfiniBand.
The NIC carries two traffic classes at different achievable rates: native
verbs (MPI) sustains ~6 GB/s of the 6.75 GB/s raw link, while the TCP
stack over IPoIB — the store's data path, §IV-A — tops out around 3 GB/s.
Both classes share the same physical link, so a saturated store still
takes bandwidth away from MPI, but a single store stream can never claim
more than the IPoIB ceiling.

The remaining constants are not stated in the paper and come from the
hardware's public specifications:

- memory bandwidth: E5-2630v3 is quad-channel DDR4-1866 → ~59 GB/s peak per
  socket pair; ~48 GB/s is a realistic STREAM-sustained figure;
- local disk: DAS-5 nodes have a single SATA HDD, ~150 MB/s sequential;
- OS + services footprint: ~4 GB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GB, MB

__all__ = ["MachineSpec", "DAS5"]


@dataclass(frozen=True)
class MachineSpec:
    """Static hardware description of one cluster node."""

    cores: int                 # logical cores (hyperthreads count)
    memory: float              # bytes of RAM
    nic_bandwidth: float       # bytes/s per NIC direction (native verbs)
    ipoib_bandwidth: float     # bytes/s ceiling of one TCP/IPoIB stream
    memory_bandwidth: float    # bytes/s sustained
    disk_bandwidth: float      # bytes/s sequential
    nic_latency: float         # seconds, one-way small-message latency
    os_reserved: float         # bytes kept by OS + node services

    def __post_init__(self):
        for field in ("cores", "memory", "nic_bandwidth", "ipoib_bandwidth",
                      "memory_bandwidth", "disk_bandwidth"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.ipoib_bandwidth > self.nic_bandwidth:
            raise ValueError("ipoib_bandwidth cannot exceed nic_bandwidth")
        if self.os_reserved < 0 or self.os_reserved >= self.memory:
            raise ValueError("os_reserved must be in [0, memory)")


DAS5 = MachineSpec(
    cores=32,
    memory=64 * GB,
    nic_bandwidth=6 * GB,
    ipoib_bandwidth=3 * GB,
    memory_bandwidth=48 * GB,
    disk_bandwidth=150 * MB,
    nic_latency=2e-6,          # FDR InfiniBand ~2 us one way
    os_reserved=4 * GB,
)
