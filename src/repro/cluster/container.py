"""Lightweight resource containers (the paper's LXC stand-in, §III-F).

On victim nodes MemFSS runs its Redis process inside a Linux container so
the cluster operator can cap, "with a fine granularity, the amount of
resources (CPU, memory, network)" the scavenger may use.  Here a
:class:`Container` enforces a hard memory ceiling through its own
allocation interface and exposes CPU / NIC rate caps that the store server
applies to every flow it issues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .node import Node, OutOfMemory

__all__ = ["ResourceCaps", "Container", "CapExceeded"]


class CapExceeded(RuntimeError):
    """A container allocation exceeded its configured cap."""


@dataclass(frozen=True)
class ResourceCaps:
    """Per-container ceilings.  ``inf`` means uncapped."""

    memory: float = math.inf        # bytes
    cpu: float = math.inf           # core-seconds per second
    net_bandwidth: float = math.inf  # bytes/s per direction

    def __post_init__(self):
        for field in ("memory", "cpu", "net_bandwidth"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} cap must be positive")


class Container:
    """A named resource-capped execution scope on one node."""

    def __init__(self, node: Node, name: str, caps: ResourceCaps):
        self.node = node
        self.name = name
        self.caps = caps
        self._owner = f"container:{name}"

    @property
    def memory_used(self) -> float:
        return self.node.memory_owned_by(self._owner)

    @property
    def memory_available(self) -> float:
        """Headroom under both the cap and the node's physical memory."""
        return min(self.caps.memory - self.memory_used, self.node.memory_free)

    def allocate(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.memory_used + nbytes > self.caps.memory:
            raise CapExceeded(
                f"{self.name}: {nbytes:.3g} B would exceed the "
                f"{self.caps.memory:.3g} B memory cap")
        self.node.allocate_memory(self._owner, nbytes)

    def free(self, nbytes: float | None = None) -> float:
        return self.node.free_memory(self._owner, nbytes)

    def release(self) -> float:
        """Tear the container down, freeing everything it held."""
        return self.free(None)

    @property
    def cpu_cap(self) -> float:
        return self.caps.cpu

    @property
    def net_cap(self) -> float:
        return self.caps.net_bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name} on {self.node.name}>"
