"""The cluster fabric: full-bisection network connecting node NICs.

DAS-5's FDR InfiniBand core is non-blocking for 40 nodes, so only the node
NICs constrain transfers (paper §IV-A).  A :class:`Fabric` wires each
:class:`~repro.cluster.node.Node` with an egress (tx) and ingress (rx) link
in a shared :class:`~repro.sim.flownet.FlowNetwork`; a transfer between two
nodes crosses ``src.tx`` and ``dst.rx`` and shares them max-min fairly with
everything else.  Same-node transfers cross a per-node loopback link sized
at the memory bandwidth (a local Redis PUT is a memcpy, not a NIC crossing).

Small-message latency is modeled additively: a request costs
``nic_latency × hops`` before its payload flow starts; the latency
*inflation* caused by a busy scavenger store is handled by the store server
(see :mod:`repro.store.server`), which is where the paper locates the
BLAST-vs-dd asymmetry of Fig. 3.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..sim import Environment, FlowNetwork
from ..sim.flownet import Link, NetFlow
from .node import Node

__all__ = ["Fabric"]


class Fabric:
    """Owns the flow network and the per-node NIC + loopback links."""

    def __init__(self, env: Environment, solver: str | None = None):
        self.env = env
        self.net = FlowNetwork(env, solver=solver)
        self._loopback: dict[str, Link] = {}
        self._ipoib_tx: dict[str, Link] = {}
        self._ipoib_rx: dict[str, Link] = {}
        self._nodes: dict[str, Node] = {}
        self._nominal: dict[str, float] = {}

    def attach(self, node: Node) -> None:
        """Create tx/rx/loopback/IPoIB links for *node* and register it.

        Two transport classes share the physical NIC: native verbs (MPI)
        sees only the tx/rx links; TCP traffic (the store's data path,
        Hadoop/Spark shuffles) additionally crosses per-node IPoIB links
        whose ~3 GB/s ceiling models the TCP-over-IB stack.  TCP flows
        therefore contend with each other inside the IPoIB budget *and*
        take physical bandwidth away from verbs traffic.
        """
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already attached")
        node.tx = self.net.add_link(f"{node.name}.tx", node.spec.nic_bandwidth)
        node.rx = self.net.add_link(f"{node.name}.rx", node.spec.nic_bandwidth)
        self._ipoib_tx[node.name] = self.net.add_link(
            f"{node.name}.itx", node.spec.ipoib_bandwidth)
        self._ipoib_rx[node.name] = self.net.add_link(
            f"{node.name}.irx", node.spec.ipoib_bandwidth)
        self._loopback[node.name] = self.net.add_link(
            f"{node.name}.lo", node.spec.memory_bandwidth)
        self._nodes[node.name] = node
        for link in self.links_of(node.name):
            self._nominal[link.name] = link.capacity

    def attach_all(self, nodes: Iterable[Node]) -> None:
        for n in nodes:
            self.attach(n)

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def batch(self):
        """Coalesce a burst of transfers/capacity changes into one solve
        (delegates to :meth:`FlowNetwork.batch`)."""
        return self.net.batch()

    # -- transfers -------------------------------------------------------------
    def path(self, src: Node, dst: Node,
             transport: str = "verbs") -> tuple[Link, ...]:
        if src.name not in self._nodes or dst.name not in self._nodes:
            raise ValueError("both endpoints must be attached to this fabric")
        if src.name == dst.name:
            return (self._loopback[src.name],)
        assert src.tx is not None and dst.rx is not None
        if transport == "verbs":
            return (src.tx, dst.rx)
        if transport == "tcp":
            return (self._ipoib_tx[src.name], src.tx,
                    dst.rx, self._ipoib_rx[dst.name])
        raise ValueError(f"unknown transport {transport!r}")

    def transfer(self, src: Node, dst: Node, nbytes: float | None,
                 cap: float = float("inf"), label: str = "",
                 transport: str = "verbs") -> NetFlow:
        """Start a byte flow from *src* to *dst*; wait on ``.done``."""
        return self.net.transfer(self.path(src, dst, transport), nbytes,
                                 cap, label)

    def consume(self, src: Node, dst: Node, nbytes: float,
                cap: float = float("inf"), label: str = "",
                transport: str = "verbs"):
        """``yield from``-able transfer that withdraws itself on interrupt."""
        return self.net.consume(self.path(src, dst, transport), nbytes,
                                cap, label)

    def latency(self, src: Node, dst: Node) -> float:
        """One-way small-message latency between two nodes."""
        if src.name == dst.name:
            return 0.0
        return max(src.spec.nic_latency, dst.spec.nic_latency)

    # -- fault hooks -------------------------------------------------------------
    #: Capacity multiplier standing in for a total partition.  The fluid
    #: model needs strictly positive capacities, so a partitioned node is
    #: a link set throttled hard enough that every crossing flow stalls
    #: past any sane client deadline.
    PARTITION_FACTOR = 1e-9

    def links_of(self, name: str) -> tuple[Link, ...]:
        """Every NIC-side link of one node (tx/rx, IPoIB pair, loopback
        excluded — a partitioned node can still talk to itself)."""
        node = self._nodes[name]
        assert node.tx is not None and node.rx is not None
        return (node.tx, node.rx, self._ipoib_tx[name], self._ipoib_rx[name])

    def degrade_node(self, name: str, factor: float):
        """Scale one node's NIC capacities by *factor*; returns a
        zero-argument callable restoring nominal capacity (idempotent)."""
        if not 0.0 < factor:
            raise ValueError("degradation factor must be positive")
        links = self.links_of(name)
        with self.net.batch():
            for link in links:
                self.net.set_capacity(link, self._nominal[link.name] * factor)

        def restore() -> None:
            with self.net.batch():
                for link in links:
                    self.net.set_capacity(link, self._nominal[link.name])

        return restore

    def partition_node(self, name: str):
        """Cut one node off the fabric; returns a heal callable."""
        return self.degrade_node(name, self.PARTITION_FACTOR)
