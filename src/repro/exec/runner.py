"""Sweep execution: serial and process backends over scenario specs.

The process backend fans scenarios out over a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor` (spawn is fork-safe
everywhere and gives every worker a fresh, deterministic interpreter —
the determinism contract's boundary).  Results always come back in
**spec order** regardless of completion order; a failed scenario — an
executor raise *or* a worker process dying — cancels the rest of the
sweep and surfaces as a typed :class:`ScenarioError` naming the spec,
never a hung pool.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from .cache import ResultCache
from .scenarios import run_scenario
from .spec import ScenarioSpec
from .stats import exec_stats

__all__ = ["SweepRunner", "ScenarioResult", "ScenarioError"]

BACKENDS = ("serial", "process")

_log = logging.getLogger(__name__)


class ScenarioError(RuntimeError):
    """One scenario of a sweep failed (executor raise or worker death)."""

    def __init__(self, spec: ScenarioSpec, message: str):
        super().__init__(f"scenario {spec.label()!r} failed: {message}")
        self.spec = spec
        self.message = message

    def __reduce__(self):
        # args hold the formatted string, which default exception
        # pickling would feed back into __init__ as *spec*.
        return (type(self), (self.spec, self.message))


@dataclass
class ScenarioResult:
    """One scenario's JSON-safe payload plus execution provenance."""

    spec: ScenarioSpec
    payload: dict
    cached: bool = False
    wall_s: float = 0.0


class _WorkerFailure(Exception):
    """Picklable carrier for an executor raise inside a worker.

    Exceptions whose ``args`` don't match their ``__init__`` signature
    (or that hold unpicklable state) break the pool's result channel on
    the way back and masquerade as :class:`BrokenProcessPool`, losing
    the real cause.  The worker therefore never lets the original
    exception cross the boundary: it sends its rendered form instead.
    """

    def __init__(self, description: str):
        super().__init__(description)


def _execute_timed(spec: ScenarioSpec) -> tuple[dict, float]:
    """Top-level so the spawn backend can pickle it by reference."""
    t0 = time.perf_counter()
    try:
        payload = run_scenario(spec)
    except Exception as exc:
        tb = "".join(traceback.format_exception(exc)).rstrip()
        raise _WorkerFailure(f"{exc!r}\n{tb}") from None
    return payload, time.perf_counter() - t0


def _failure_message(exc: Exception) -> str:
    return str(exc) if isinstance(exc, _WorkerFailure) else repr(exc)


class SweepRunner:
    """Runs independent scenarios, optionally in parallel and cached.

    ``backend="serial"`` executes in-process in spec order;
    ``backend="process"`` fans out over *jobs* spawned workers.  With a
    :class:`ResultCache` (or ``cache=True`` for the default location),
    cached scenarios are answered without executing anything, and fresh
    payloads are stored on the way out — both backends produce
    byte-identical payloads, so cache entries are backend-agnostic.

    With *auto_fallback* (the default), a process sweep on a single-CPU
    host silently degrades to the serial backend: spawning workers there
    can only add interpreter-startup overhead (the BENCH_sweep 0.91x
    hole), and payloads are byte-identical either way.  Requesting more
    jobs than CPUs is likewise clamped to the CPU count.  Crash-semantics
    tests that *need* real worker processes pass ``auto_fallback=False``.
    """

    def __init__(self, backend: str = "serial", jobs: int | None = None,
                 cache: ResultCache | bool | None = None,
                 auto_fallback: bool = True):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.backend = backend
        self.jobs = jobs
        self.cache = ResultCache() if cache is True else (cache or None)
        self.auto_fallback = auto_fallback

    def _effective_backend(self) -> str:
        if (self.backend == "process" and self.auto_fallback
                and (os.cpu_count() or 1) <= 1):
            exec_stats.serial_fallbacks += 1
            _log.info(
                "SweepRunner: single-CPU host; running the sweep on the "
                "serial backend (process fan-out would only add spawn "
                "overhead; results are byte-identical)")
            return "serial"
        return self.backend

    def run(self, specs: list[ScenarioSpec]) -> list[ScenarioResult]:
        """Execute *specs*; results come back in spec order."""
        specs = list(specs)
        backend = self._effective_backend()
        if backend == "process":
            exec_stats.sweeps_process += 1
        else:
            exec_stats.sweeps_serial += 1
        results: list[ScenarioResult | None] = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            payload = self.cache.get(spec) if self.cache else None
            if payload is not None:
                results[i] = ScenarioResult(spec, payload, cached=True)
            else:
                pending.append(i)
        if pending:
            if backend == "process" and len(pending) > 1:
                self._run_process(specs, pending, results)
            else:
                self._run_serial(specs, pending, results)
            if self.cache:
                for i in pending:
                    self.cache.put(specs[i], results[i].payload)
        return results  # type: ignore[return-value]

    # -- backends -----------------------------------------------------------------
    def _run_serial(self, specs, pending, results) -> None:
        for i in pending:
            try:
                payload, wall = _execute_timed(specs[i])
            except Exception as exc:
                exec_stats.worker_crashes += 1
                raise ScenarioError(specs[i],
                                    _failure_message(exc)) from exc
            exec_stats.scenarios_run += 1
            results[i] = ScenarioResult(specs[i], payload, wall_s=wall)

    def _run_process(self, specs, pending, results) -> None:
        cpus = os.cpu_count() or 1
        jobs = min(self.jobs or cpus, len(pending))
        if self.auto_fallback and jobs > cpus:
            # Oversubscribed pool: clamp instead of thrashing the host.
            jobs = cpus
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            futures = {pool.submit(_execute_timed, specs[i]): i
                       for i in pending}
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next((f for f in done if f.exception() is not None),
                          None)
            if failed is not None:
                for f in not_done:
                    f.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                exc = failed.exception()
                exec_stats.worker_crashes += 1
                spec = specs[futures[failed]]
                if isinstance(exc, BrokenProcessPool):
                    raise ScenarioError(
                        spec, "worker process died (pool broken)") from exc
                raise ScenarioError(spec, _failure_message(exc)) from exc
            for future, i in futures.items():
                payload, wall = future.result()
                exec_stats.scenarios_run += 1
                results[i] = ScenarioResult(specs[i], payload, wall_s=wall)
