"""Parallel scenario execution for the figure suite.

Every paper figure is a sweep of *independent* simulations (Fig. 2 runs
five α scenarios, Figs. 3-5 run a tenant suite under each scavenging
workload, Table II sweeps node counts).  This package turns one such
simulation into a declarative, picklable :class:`ScenarioSpec` and fans
sweeps out through a :class:`SweepRunner` with ``serial`` and ``process``
backends, backed by a content-addressed on-disk :class:`ResultCache` so a
warm re-run never recomputes an unchanged scenario.

Determinism contract: a scenario's payload is a pure function of its spec
(all randomness flows from the spec's seed through
:class:`~repro.sim.rng.RngRegistry`), so the process backend is
byte-identical to the serial one and cached payloads are byte-identical
to fresh runs.  See DESIGN.md §9.
"""

from .cache import ResultCache, code_version
from .runner import ScenarioError, ScenarioResult, SweepRunner
from .scenarios import (consumption_scavenging_spec, consumption_specs,
                        consumption_standalone_spec, fig2_spec,
                        fig2_sweep_specs, metrics_from_payload,
                        point_from_payload, run_consumption_points,
                        run_scenario, slowdown_results, slowdown_suite_spec,
                        slowdown_sweep)
from .soak import build_soak_schedule, run_soak, run_soak_suite, soak_spec
from .spec import ScenarioSpec
from .stats import exec_stats

__all__ = [
    "ScenarioSpec", "ScenarioError", "ScenarioResult", "SweepRunner",
    "ResultCache", "code_version", "exec_stats",
    "run_scenario", "fig2_spec", "fig2_sweep_specs",
    "slowdown_suite_spec", "slowdown_sweep", "slowdown_results",
    "consumption_specs", "consumption_standalone_spec",
    "consumption_scavenging_spec", "run_consumption_points",
    "metrics_from_payload", "point_from_payload",
    "build_soak_schedule", "soak_spec", "run_soak", "run_soak_suite",
]
