"""Declarative scenario descriptions with stable content fingerprints.

A :class:`ScenarioSpec` names one independent simulation: an experiment
*kind* (registered in :mod:`repro.exec.scenarios`), the
:class:`~repro.core.deployment.DeploymentConfig` it deploys, free-form
workload parameters, and an optional seed override.  Specs are frozen,
hashable, and picklable (they cross the spawn boundary of the process
backend), and hash to a *content fingerprint* — the canonical-JSON SHA-256
of every field — which, salted with the running code version, addresses
the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..core.deployment import DeploymentConfig

__all__ = ["ScenarioSpec"]


def _freeze(value: Any) -> Any:
    """Normalize a parameter value into a hashable, order-stable form."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unsupported scenario parameter type: {type(value)!r}")


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON rendering: pair-tuples back to
    dicts, other tuples to lists."""
    if isinstance(value, tuple):
        if value and all(isinstance(p, tuple) and len(p) == 2
                         and isinstance(p[0], str) for p in value):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One independent simulation, described by value.

    ``seed`` of ``None`` defers to ``config.seed``; an integer overrides
    it, which is how sweeps give every scenario its own deterministic
    stream without building one config per point.
    """

    kind: str
    config: DeploymentConfig | None = None
    params: tuple = ()
    seed: int | None = None

    @classmethod
    def make(cls, kind: str, config: DeploymentConfig | None = None,
             seed: int | None = None, **params: Any) -> "ScenarioSpec":
        """Build a spec from keyword parameters (dicts/lists allowed —
        they are normalized into order-stable tuples)."""
        frozen = tuple(sorted((name, _freeze(value))
                              for name, value in params.items()))
        return cls(kind=kind, config=config, params=frozen, seed=seed)

    # -- parameter access ---------------------------------------------------------
    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return _thaw(value)
        return default

    def param_dict(self) -> dict[str, Any]:
        return {key: _thaw(value) for key, value in self.params}

    def deployment_config(self) -> DeploymentConfig:
        """The config this scenario deploys, seed override applied."""
        cfg = self.config if self.config is not None else DeploymentConfig()
        if self.seed is not None and self.seed != cfg.seed:
            cfg = dataclasses.replace(cfg, seed=self.seed)
        return cfg

    # -- identity -----------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe rendering (the fingerprint input)."""
        config = (None if self.config is None
                  else dataclasses.asdict(self.config))
        return {"kind": self.kind, "seed": self.seed, "config": config,
                "params": self.param_dict()}

    def spec_key(self) -> str:
        """Content hash of the spec alone (no code-version salt) — the
        cache's stable address for *this scenario* across code versions."""
        blob = json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def fingerprint(self, salt: str = "") -> str:
        """Content fingerprint of spec + code-version *salt*: two specs
        (or code versions) agree on it iff their payloads must agree."""
        blob = json.dumps({"salt": salt, "spec": self.as_dict()},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for logs and errors."""
        alpha = self.param("alpha")
        bits = [self.kind] + [f"{k}={v}" for k, v in (
            ("alpha", alpha), ("suite", self.param("suite")),
            ("workload", self.param("workload"))) if v is not None]
        return ":".join(str(b) for b in bits)
