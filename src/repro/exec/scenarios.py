"""Scenario executors: the registry mapping spec *kind* → simulation.

Every executor is a pure function of its :class:`ScenarioSpec` returning
a JSON-safe payload dict, so it can run in a spawned worker process and
its result can round-trip through the on-disk cache byte-identically.
Workloads and tenant suites are referenced *by name* through the
registries below (callables don't pickle across the spawn boundary).

Three experiment kinds cover the figure suite:

* ``fig2`` — one baseline α scenario (:func:`~repro.core.baseline_run`),
* ``slowdown-suite`` — one tenant suite run, optionally under a named
  scavenging workload (the Fig. 3-5 / Fig. 6 fan-out unit),
* ``consumption`` — one Table II row (standalone or scavenging).

Plus ``debug-crash``, a test hook that fails (or hard-kills its worker)
so crash propagation stays covered.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable

from ..core.consumption import ConsumptionPoint, run_scavenging, run_standalone
from ..core.degraded import DegradedResult
from ..core.deployment import DeploymentConfig, MemFSSDeployment
from ..core.experiment import FIG2_ALPHAS, BaselineMetrics, baseline_run
from ..core.slowdown import BackgroundWorkload, SlowdownResult, _run_suite
from ..tenants import hibench_hadoop_suite, hibench_spark_suite, hpcc_suite
from ..units import MB
from ..workflows import blast, dd_bag, montage
from .spec import ScenarioSpec

__all__ = ["EXECUTORS", "scenario", "run_scenario",
           "SUITE_BUILDERS", "WORKLOAD_BUILDERS", "PRESET_WORKLOADS",
           "fig2_spec", "fig2_sweep_specs", "metrics_from_payload",
           "slowdown_suite_spec", "slowdown_sweep", "slowdown_results",
           "consumption_standalone_spec", "consumption_scavenging_spec",
           "consumption_specs", "run_consumption_points",
           "point_from_payload"]

#: Tenant suites by name: ``builder(n_victims, scale)``.
SUITE_BUILDERS: dict[str, Callable[[int, float], list]] = {
    "hpcc": lambda n, scale: hpcc_suite(scale),
    "hibench-hadoop": lambda n, scale: hibench_hadoop_suite(n, scale),
    "hibench-spark": lambda n, scale: hibench_spark_suite(n, scale),
}

#: Scavenging workflows by name: ``builder(**kwargs)`` → Workflow.
WORKLOAD_BUILDERS: dict[str, Callable[..., Any]] = {
    "montage": montage,
    "blast": blast,
    "dd": dd_bag,
}

#: The paper's three MemFSS workloads at the benches' steady-state scale
#: (name → (builder, kwargs)); CLI/benches pass these through specs.
PRESET_WORKLOADS: dict[str, tuple[str, dict]] = {
    "Montage": ("montage", {"width": 96, "compute_scale": 0.02,
                            "parallel_task_scale": 2.0}),
    "BLAST": ("blast", {"n_searches": 256, "split_seconds": 10.0,
                        "search_seconds": 60.0}),
    "dd": ("dd", {"n_tasks": 64, "file_size": 256 * MB}),
}


# -- registry ------------------------------------------------------------------
EXECUTORS: dict[str, Callable[[ScenarioSpec], dict]] = {}


def scenario(kind: str):
    """Register an executor for scenario *kind*."""
    def register(fn: Callable[[ScenarioSpec], dict]):
        EXECUTORS[kind] = fn
        return fn
    return register


def run_scenario(spec: ScenarioSpec) -> dict:
    """Execute one scenario; the single entry point of every backend."""
    try:
        executor = EXECUTORS[spec.kind]
    except KeyError:
        raise LookupError(
            f"unknown scenario kind {spec.kind!r}; registered: "
            f"{sorted(EXECUTORS)}") from None
    return executor(spec)


# -- fig2 ----------------------------------------------------------------------
@scenario("fig2")
def _run_fig2(spec: ScenarioSpec) -> dict:
    p = spec.param_dict()
    metrics = baseline_run(
        alpha=p.get("alpha", 0.25),
        n_tasks=int(p.get("n_tasks", 2048)),
        file_size=float(p.get("file_size", 128 * MB)),
        config=spec.deployment_config(),
        monitor_interval=float(p.get("monitor_interval", 1.0)),
        keep_series=bool(p.get("keep_series", False)))
    payload = dataclasses.asdict(metrics)
    payload["series"] = {name: [list(map(float, times)),
                                list(map(float, values))]
                         for name, (times, values) in metrics.series.items()}
    return payload


def metrics_from_payload(payload: dict) -> BaselineMetrics:
    """Rehydrate a ``fig2`` payload (series stay plain lists)."""
    fields = dict(payload)
    fields["series"] = {name: (times, values)
                        for name, (times, values)
                        in payload.get("series", {}).items()}
    return BaselineMetrics(**fields)


def fig2_spec(alpha: float, n_tasks: int = 2048,
              file_size: float = 128 * MB,
              config: DeploymentConfig | None = None,
              monitor_interval: float = 1.0, keep_series: bool = False,
              seed: int | None = None) -> ScenarioSpec:
    return ScenarioSpec.make(
        "fig2", config=config, seed=seed, alpha=alpha, n_tasks=n_tasks,
        file_size=float(file_size), monitor_interval=monitor_interval,
        keep_series=keep_series)


def fig2_sweep_specs(n_tasks: int = 2048, file_size: float = 128 * MB,
                     config: DeploymentConfig | None = None,
                     alphas: tuple[float, ...] = FIG2_ALPHAS,
                     monitor_interval: float = 1.0,
                     keep_series: bool = False) -> list[ScenarioSpec]:
    """The Fig. 2 sweep, one spec per α."""
    return [fig2_spec(a, n_tasks=n_tasks, file_size=file_size,
                      config=config, monitor_interval=monitor_interval,
                      keep_series=keep_series)
            for a in alphas]


# -- slowdown suites (Figs. 3-5) -----------------------------------------------
@scenario("slowdown-suite")
def _run_slowdown_suite(spec: ScenarioSpec) -> dict:
    p = spec.param_dict()
    suite = p["suite"]
    if suite not in SUITE_BUILDERS:
        raise LookupError(f"unknown tenant suite {suite!r}; "
                          f"choose from {sorted(SUITE_BUILDERS)}")
    dep = MemFSSDeployment(spec.deployment_config())
    background = None
    workload = p.get("workload")
    if workload is not None:
        builder_name, kwargs = workload, p.get("workload_kwargs") or {}
        if builder_name in PRESET_WORKLOADS and not kwargs:
            builder_name, kwargs = PRESET_WORKLOADS[builder_name]
        if builder_name not in WORKLOAD_BUILDERS:
            raise LookupError(f"unknown workload {workload!r}; choose "
                              f"from {sorted(WORKLOAD_BUILDERS)} or "
                              f"{sorted(PRESET_WORKLOADS)}")
        builder = WORKLOAD_BUILDERS[builder_name]
        background = BackgroundWorkload(dep,
                                        lambda i: builder(**kwargs))
        background.start()
        dep.env.run(until=dep.env.now + float(p.get("warmup", 30.0)))
    times = _run_suite(dep, SUITE_BUILDERS[suite](
        len(dep.victims), float(p.get("suite_scale", 1.0))))
    if background is not None:
        background.stop()
    return {"runtimes_s": times}


def slowdown_suite_spec(config: DeploymentConfig, suite: str,
                        suite_scale: float = 1.0,
                        workload: str | None = None,
                        workload_kwargs: dict | None = None,
                        warmup: float = 30.0,
                        seed: int | None = None) -> ScenarioSpec:
    return ScenarioSpec.make(
        "slowdown-suite", config=config, seed=seed, suite=suite,
        suite_scale=suite_scale, workload=workload,
        workload_kwargs=workload_kwargs, warmup=warmup)


def slowdown_sweep(config: DeploymentConfig, suite: str,
                   suite_scale: float = 1.0,
                   workloads: tuple[str, ...] = ("Montage", "BLAST", "dd"),
                   workload_kwargs: dict | None = None,
                   warmup: float = 30.0, jobs: int = 1,
                   cache=None) -> dict[str | None, dict[str, float]]:
    """Baseline + one loaded run per workload, fanned out together.

    Returns ``{None: baseline_times, workload: loaded_times, ...}``; use
    :class:`~repro.core.slowdown.SlowdownResult` to turn pairs into
    slowdown percentages.  This is the Fig. 3-5 unit the CLI and the
    bench harness share.
    """
    from .runner import SweepRunner
    specs = [slowdown_suite_spec(config, suite, suite_scale, None,
                                 warmup=warmup)]
    specs += [slowdown_suite_spec(config, suite, suite_scale, wl,
                                  workload_kwargs=workload_kwargs,
                                  warmup=warmup)
              for wl in workloads]
    runner = SweepRunner(backend="process" if jobs > 1 else "serial",
                         jobs=jobs, cache=cache)
    results = runner.run(specs)
    out: dict[str | None, dict[str, float]] = {
        None: results[0].payload["runtimes_s"]}
    for wl, res in zip(workloads, results[1:]):
        out[wl] = res.payload["runtimes_s"]
    return out


def slowdown_results(sweep: dict[str | None, dict[str, float]],
                     workload: str) -> list[SlowdownResult]:
    """Per-benchmark :class:`SlowdownResult` rows for one workload."""
    baseline, loaded = sweep[None], sweep[workload]
    return [SlowdownResult(benchmark=name, baseline_s=baseline[name],
                           loaded_s=loaded[name]) for name in baseline]


# -- consumption (Table II / Fig. 7) -------------------------------------------
def _build_workflow(p: dict):
    name = p.get("workflow", "montage")
    if name not in WORKLOAD_BUILDERS:
        raise LookupError(f"unknown workflow {name!r}; choose from "
                          f"{sorted(WORKLOAD_BUILDERS)}")
    return WORKLOAD_BUILDERS[name](**(p.get("workflow_kwargs") or {}))


@scenario("consumption")
def _run_consumption(spec: ScenarioSpec) -> dict:
    p = spec.param_dict()
    seed = spec.seed if spec.seed is not None else int(p.get("seed", 0))
    workflow = _build_workflow(p)
    if p.get("mode", "standalone") == "standalone":
        point = run_standalone(
            workflow, n_nodes=int(p["n_nodes"]),
            store_capacity=float(p["store_capacity"]),
            stripe_size=int(p.get("stripe_size", 32 * MB)), seed=seed)
    else:
        point = run_scavenging(
            workflow, n_own=int(p["n_own"]), n_victim=int(p["n_victim"]),
            victim_memory=float(p["victim_memory"]),
            own_store_capacity=float(p["own_store_capacity"]),
            alpha=p.get("alpha"),
            stripe_size=int(p.get("stripe_size", 32 * MB)), seed=seed)
    return dataclasses.asdict(point)


def point_from_payload(payload: dict) -> ConsumptionPoint:
    fields = dict(payload)
    degraded = fields.get("degraded")
    if degraded is not None and not isinstance(degraded, DegradedResult):
        # asdict() flattened it to {"reason": ..., "detail": ...}.
        fields["degraded"] = DegradedResult.from_payload(degraded)
    return ConsumptionPoint(**fields)


def consumption_standalone_spec(workflow: str, workflow_kwargs: dict,
                                n_nodes: int, store_capacity: float,
                                stripe_size: int = 32 * MB,
                                seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec.make(
        "consumption", mode="standalone", workflow=workflow,
        workflow_kwargs=workflow_kwargs, n_nodes=n_nodes,
        store_capacity=float(store_capacity), stripe_size=stripe_size,
        seed=seed)


def consumption_scavenging_spec(workflow: str, workflow_kwargs: dict,
                                n_own: int, n_victim: int,
                                victim_memory: float,
                                own_store_capacity: float,
                                alpha: float | None = None,
                                stripe_size: int = 32 * MB,
                                seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec.make(
        "consumption", mode="scavenging", workflow=workflow,
        workflow_kwargs=workflow_kwargs, n_own=n_own, n_victim=n_victim,
        victim_memory=float(victim_memory),
        own_store_capacity=float(own_store_capacity), alpha=alpha,
        stripe_size=stripe_size, seed=seed)


def consumption_specs(workflow: str, workflow_kwargs: dict,
                      standalone_nodes: tuple[int, ...],
                      scavenging_own: tuple[int, ...], total_nodes: int,
                      victim_memory: float, own_store_capacity: float,
                      ) -> list[ScenarioSpec]:
    """The Table II sweep: standalone rows, then scavenging rows with
    victims making up the rest of *total_nodes*."""
    specs = [consumption_standalone_spec(
        workflow, workflow_kwargs, n_nodes=n,
        store_capacity=own_store_capacity) for n in standalone_nodes]
    specs += [consumption_scavenging_spec(
        workflow, workflow_kwargs, n_own=n, n_victim=total_nodes - n,
        victim_memory=victim_memory,
        own_store_capacity=own_store_capacity) for n in scavenging_own]
    return specs


def run_consumption_points(specs: list[ScenarioSpec], jobs: int = 1,
                           cache=None) -> list[ConsumptionPoint]:
    from .runner import SweepRunner
    runner = SweepRunner(backend="process" if jobs > 1 else "serial",
                         jobs=jobs, cache=cache)
    return [point_from_payload(r.payload) for r in runner.run(specs)]


# -- chaos soak ----------------------------------------------------------------
@scenario("chaos-soak")
def _run_chaos_soak(spec: ScenarioSpec) -> dict:
    # Registered here (this module is imported by every backend worker);
    # the harness itself stays a lazy import.
    from .soak import run_soak
    return run_soak(spec)


# -- lease market (market-fig2) ------------------------------------------------
@scenario("market-fig2")
def _run_market(spec: ScenarioSpec) -> dict:
    # Lazy: repro.market imports the scavenger stack; workers only pay
    # for it when a market scenario actually runs.
    from ..market.scenario import run_market
    return run_market(spec)


# -- crash hook ----------------------------------------------------------------
class _PickleHostileError(Exception):
    """Init signature that naive exception pickling cannot rebuild.

    Mirrors errors like a pre-fix ``StoreError``: sent raw across the
    pool's result channel it would break the pool and mask the cause.
    """

    def __init__(self, code: int, detail: str):
        super().__init__(f"{code}: {detail}")


@scenario("debug-crash")
def _debug_crash(spec: ScenarioSpec) -> dict:
    """Test hook: raise, or kill the worker outright (``hard=True``)."""
    if spec.param("hard", False):
        os._exit(3)
    if spec.param("pickle_hostile", False):
        raise _PickleHostileError(13, "debug-crash scenario failed")
    raise RuntimeError("debug-crash scenario failed (as requested)")
