"""Process-wide executor counters (the ``flownet_stats`` pattern).

Counted in the *parent* process only: cache lookups happen before fan-out
and payloads are stored when they come back, so the counters are coherent
regardless of backend.  ``repro.metrics.exec`` exposes them as snapshots
and Monitor probes.
"""

from __future__ import annotations

__all__ = ["ExecStats", "exec_stats"]


class ExecStats:
    """Cumulative sweep-executor counters; reset per experiment run.

    ``scenarios_run`` counts simulations actually executed (any backend),
    ``cache_hits`` the scenarios answered from the on-disk result cache,
    ``cache_misses`` lookups that found nothing usable, and
    ``cache_invalidations`` stale entries discarded because the spec's
    code-version salt no longer matched.  ``cache_stores`` counts fresh
    payloads written back.  ``worker_crashes`` counts scenario executions
    surfaced as :class:`~repro.exec.runner.ScenarioError` (failed worker
    process or raising executor).  ``sweeps_serial`` / ``sweeps_process``
    count :meth:`SweepRunner.run` calls per backend.
    ``serial_fallbacks`` counts process sweeps the runner downgraded to
    serial because the host has a single CPU (such runs are also counted
    in ``sweeps_serial`` — they executed serially).
    """

    _COUNTERS = ("scenarios_run", "cache_hits", "cache_misses",
                 "cache_invalidations", "cache_stores", "worker_crashes",
                 "sweeps_serial", "sweeps_process", "serial_fallbacks")
    __slots__ = _COUNTERS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self._COUNTERS}


#: Shared instance imported by ``repro.metrics.exec`` and the benchmarks.
exec_stats = ExecStats()
