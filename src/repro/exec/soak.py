"""Chaos soak: randomized fault schedules composed with capacity pressure.

One soak run wires a deliberately *tight* scavenging deployment (stores
sized so the workload fills a large fraction of aggregate memory), fires
a seeded random :class:`~repro.faults.FaultSchedule` — lease
revocations, storms, link degradation, partitions, victim crashes and
tenant memory-pressure waves — while a dd bag-of-tasks writes through
the capacity-guarded path, with the repair daemon sweeping in the
background.

The invariant under test is the robustness contract of this subsystem:
**no seed may escape the taxonomy**.  A run either completes or degrades
to a typed :class:`~repro.core.degraded.DegradedResult`; any other
exception propagates out of :func:`run_soak` and fails the soak.  Each
run's payload carries the injected-fault log plus the pressure and fault
counters, so the CI lane can publish them as an artifact.

Runnable directly for the CI lane::

    python -m repro.exec.soak --seeds 5 --out results/pressure-metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..core.degraded import DEGRADABLE_ERRORS, classify_failure
from ..core.deployment import DeploymentConfig, MemFSSDeployment
from ..faults import FaultEvent, FaultInjector, FaultSchedule, fault_stats
from ..fs import pressure_stats
from ..fs.scavenger import RepairDaemon
from ..sim.rng import RngRegistry
from ..units import MB
from ..workflows import WorkflowEngine, dd_bag
from .spec import ScenarioSpec

__all__ = ["build_soak_schedule", "soak_spec", "run_soak", "run_soak_suite",
           "main"]

#: Fault mix: weighted toward capacity pressure (this is a *pressure*
#: soak), with enough membership churn to exercise spill + repair.
_KINDS = ("pressure_wave", "revoke", "revoke_storm", "degrade",
          "partition", "crash")
_KIND_WEIGHTS = (0.35, 0.20, 0.10, 0.15, 0.10, 0.10)


def build_soak_schedule(seed: int, *, horizon: float = 10.0,
                        n_events: int = 8,
                        rng: RngRegistry | None = None) -> FaultSchedule:
    """A seeded random schedule mixing churn with pressure waves.

    Same seed → byte-identical schedule (times, kinds, parameters), the
    property the determinism test pins.
    """
    stream = (rng or RngRegistry(seed)).stream("soak-schedule")
    events = []
    for _ in range(n_events):
        at = float(stream.uniform(0.5, horizon))
        kind = _KINDS[int(stream.choice(len(_KINDS), p=_KIND_WEIGHTS))]
        if kind == "pressure_wave":
            ev = FaultEvent(at=at, kind=kind,
                            fraction=float(stream.uniform(0.3, 1.0)),
                            duration=float(stream.uniform(2.0, horizon / 3)),
                            factor=float(stream.uniform(0.3, 0.9)),
                            cause="soak-pressure")
        elif kind == "revoke_storm":
            ev = FaultEvent(at=at, kind=kind,
                            fraction=float(stream.uniform(0.25, 0.75)),
                            cause="soak-storm")
        elif kind == "degrade":
            ev = FaultEvent(at=at, kind=kind,
                            factor=float(stream.uniform(0.1, 0.5)),
                            duration=float(stream.uniform(1.0, 10.0)))
        elif kind == "partition":
            ev = FaultEvent(at=at, kind=kind,
                            duration=float(stream.uniform(0.5, 5.0)))
        else:                                   # revoke / crash: one victim
            ev = FaultEvent(at=at, kind=kind, cause=f"soak-{kind}")
        events.append(ev)
    return FaultSchedule(tuple(events))


def soak_spec(seed: int, *, n_tasks: int = 24, file_size: float = 16 * MB,
              compute_seconds: float = 5.0, n_events: int = 8,
              horizon: float = 10.0) -> ScenarioSpec:
    return ScenarioSpec.make("chaos-soak", seed=seed, n_tasks=n_tasks,
                             file_size=float(file_size),
                             compute_seconds=compute_seconds,
                             n_events=n_events, horizon=horizon)


def run_soak(spec: ScenarioSpec) -> dict:
    """Execute one seeded soak run; the ``chaos-soak`` executor body."""
    p = spec.param_dict()
    seed = spec.seed if spec.seed is not None else int(p.get("seed", 0))
    # One uniform reset of every scenario-scoped counter (executor-scoped
    # counters like the sweep cache deliberately survive).
    from ..metrics.registry import metrics_registry
    metrics_registry.reset()
    # Tight stores: aggregate ~768 MB for a ~384 MB payload, so any
    # pressure wave or eviction pushes individual stores over the edge.
    config = DeploymentConfig(
        n_own=2, n_victim=4,
        victim_memory=96 * MB, own_store_capacity=192 * MB,
        stripe_size=4 * MB, write_window=2, seed=seed,
        io_deadline=30.0, io_retries=3).with_alpha(0.3)
    dep = MemFSSDeployment(config)
    victim_names = {n.name for n in dep.victims}
    schedule = build_soak_schedule(
        seed, horizon=float(p.get("horizon", 10.0)),
        n_events=int(p.get("n_events", 8)), rng=dep.rng)
    injector = FaultInjector(
        dep.env, schedule,
        # Crashes hit victim stores only: losing an own node would take a
        # metadata server with it, which is a different failure domain.
        servers=lambda: {name: s for name, s in dep.fs.servers.items()
                         if name in victim_names},
        manager=dep.manager, fabric=dep.cluster.fabric,
        reservations=dep.cluster.reservations, nodes=dep.victims,
        rng=dep.rng, stream="soak-faults")
    daemon = RepairDaemon(dep.env, dep.fs, manager=dep.manager,
                          interval=2.0)
    injector.start()
    daemon.start()
    # Tasks compute long enough that the writes land mid-schedule: the
    # fault horizon overlaps the write burst instead of an idle prologue.
    workflow = dd_bag(n_tasks=int(p.get("n_tasks", 24)),
                      file_size=float(p.get("file_size", 16 * MB)),
                      compute_seconds=float(p.get("compute_seconds", 5.0)))
    engine = WorkflowEngine(dep.env, dep.fs, gc_intermediates=False)
    degraded = None
    makespan = None
    try:
        result = engine.execute(workflow)
        makespan = float(result.makespan)
    except DEGRADABLE_ERRORS as exc:
        degraded = classify_failure(exc, faulted=True)
    finally:
        daemon.stop()
    return {
        "seed": seed,
        "completed": degraded is None,
        "makespan_s": makespan,
        "degraded": degraded.to_payload() if degraded is not None else None,
        "injected": [[float(t), kind, list(names)]
                     for t, kind, names in injector.log],
        "pressure": pressure_stats.snapshot(),
        "faults": fault_stats.snapshot(),
    }


def run_soak_suite(seeds: range | list[int], *, n_tasks: int = 24,
                   file_size: float = 16 * MB, n_events: int = 8,
                   horizon: float = 10.0) -> dict:
    """Run one soak per seed and aggregate the counters.

    Any exception outside the degradation taxonomy propagates — that is
    the assertion.  Returns the JSON-safe report the CI lane uploads.
    """
    runs = [run_soak(soak_spec(s, n_tasks=n_tasks, file_size=file_size,
                               n_events=n_events, horizon=horizon))
            for s in seeds]
    totals: dict[str, float] = {}
    for run in runs:
        for name, value in run["pressure"].items():
            totals[name] = totals.get(name, 0) + value
    reasons: dict[str, int] = {}
    for run in runs:
        if run["degraded"] is not None:
            reason = run["degraded"]["reason"]
            reasons[reason] = reasons.get(reason, 0) + 1
    return {
        "seeds": [run["seed"] for run in runs],
        "completed": sum(run["completed"] for run in runs),
        "degraded": len(runs) - sum(run["completed"] for run in runs),
        "degraded_reasons": reasons,
        "pressure_totals": totals,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exec.soak",
        description="Chaos soak: randomized faults + capacity pressure")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of seeds to soak (default 5)")
    parser.add_argument("--first-seed", type=int, default=0)
    parser.add_argument("--tasks", type=int, default=24)
    parser.add_argument("--events", type=int, default=8)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_soak_suite(
        range(args.first_seed, args.first_seed + args.seeds),
        n_tasks=args.tasks, n_events=args.events)
    line = (f"soak: {report['completed']} completed, "
            f"{report['degraded']} degraded "
            f"({report['degraded_reasons'] or 'none'}) over "
            f"{len(report['seeds'])} seeds; "
            f"spilled={report['pressure_totals'].get('spilled_writes', 0)}")
    print(line)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
