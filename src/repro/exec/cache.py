"""Content-addressed on-disk result cache for scenario payloads.

Entries live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``),
one JSON blob per scenario, addressed by the spec's content hash plus a
*code-version salt* — a digest of every ``repro`` source file — so any
source change invalidates every cached result automatically.  The file
name carries both halves (``s<spec-key>-v<fingerprint>.json``): a lookup
that finds the spec key under a *different* salt counts and removes the
stale entry (``exec_stats.cache_invalidations``) instead of serving it.

Writes are atomic (temp file + rename) so a crashed run never leaves a
half-written blob that a later run would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .spec import ScenarioSpec
from .stats import exec_stats

__all__ = ["ResultCache", "code_version", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (the cache salt).

    Deliberately coarse: any edit under ``src/repro`` changes it, which
    is the only cheap sound answer to "could this change move a payload
    bit?".  Computed once per process.
    """
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:20]
    return _code_version


class ResultCache:
    """Fingerprint-addressed JSON blobs with hit/miss/invalidation
    accounting on :data:`~repro.exec.stats.exec_stats`."""

    def __init__(self, root: str | os.PathLike | None = None,
                 salt: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = code_version() if salt is None else salt

    # -- addressing ---------------------------------------------------------------
    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / (f"s{spec.spec_key()[:32]}"
                            f"-v{spec.fingerprint(self.salt)[:16]}.json")

    # -- lookup / store -----------------------------------------------------------
    def get(self, spec: ScenarioSpec) -> dict | None:
        """The cached payload for *spec* under the current salt, or None.

        Stale entries for the same spec under another salt are removed
        and counted as invalidations; unreadable blobs count as misses.
        """
        expected = self.path_for(spec)
        for stale in self.root.glob(f"s{spec.spec_key()[:32]}-v*.json"):
            if stale != expected:
                stale.unlink(missing_ok=True)
                exec_stats.cache_invalidations += 1
        if not expected.exists():
            exec_stats.cache_misses += 1
            return None
        try:
            entry = json.loads(expected.read_text())
            payload = entry["payload"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            expected.unlink(missing_ok=True)
            exec_stats.cache_misses += 1
            return None
        exec_stats.cache_hits += 1
        return payload

    def put(self, spec: ScenarioSpec, payload: dict) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        entry = {"fingerprint": spec.fingerprint(self.salt),
                 "salt": self.salt, "spec": spec.as_dict(),
                 "payload": payload}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        exec_stats.cache_stores += 1
        return path

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("s*-v*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
