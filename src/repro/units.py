"""Byte and time unit constants used throughout the reproduction.

The paper's quantities (128 MB dd files, 64 GB nodes, 3 GB/s IPoIB) are
interpreted as binary units, matching how `dd bs=1M` and `/proc/meminfo`
report sizes on the DAS-5 nodes.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

KiB, MiB, GiB, TiB = KB, MB, GB, TB

US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit, div in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(rate: float) -> str:
    """Human-readable bytes/second."""
    return fmt_bytes(rate) + "/s"
