"""Spark execution model with JVM memory-pressure effects (Fig. 5).

Spark "is itself relying on memory to improve performance", so scavenging
hits it three ways (paper §IV-C): network, memory *bandwidth*, and memory
*capacity* — the last one through the JVM garbage collector, which slows
down when the node's free memory shrinks (less page-cache headroom for
shuffle files and broadcast blocks, more frequent full GCs at fixed heap).

:class:`GcComputePhase` models the capacity channel: compute time inflates
by ``gc_sensitivity × pressure`` where pressure is the fraction of the
node's non-heap free memory displaced by the scavenging store's resident
bytes.  The sensitivity constant is calibrated once against the paper's
Spark average (≈ 18 %) and disclosed in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GB
from .base import (AllocPhase, ComputePhase, DiskPhase, FreePhase,
                   MemBandwidthPhase, NetworkPhase, Phase, PhaseContext,
                   PhasedWorkload)

__all__ = ["GC_SENSITIVITY", "GcComputePhase", "SparkJobSpec", "spark_job"]

#: JVM GC slowdown per unit of free-memory displacement (calibrated once
#: against Fig. 5 / Fig. 6's Spark average ≈ 18 %).
GC_SENSITIVITY = 0.22


@dataclass
class GcComputePhase(Phase):
    """Executor compute inflating under memory pressure *and* bus pollution.

    Two channels, matching the paper's "memory in both capacity and
    bandwidth": the GC term grows with the fraction of the node's non-heap
    memory the scavenger displaces; the pollution term is the shared
    JVM bandwidth sensitivity (see
    :class:`~repro.tenants.base.FrameworkComputePhase`).
    """

    core_seconds: float
    cores: int = 32
    gc_sensitivity: float = GC_SENSITIVITY
    memory_intensity: float = 1.0
    chunks: int = 8
    name: str = "spark-compute"

    def run(self, ctx: PhaseContext):
        from .base import MEMBW_POLLUTION
        if self.core_seconds <= 0:
            return
        chunk = self.core_seconds / self.chunks
        copy = getattr(ctx.probe, "_copy_factor", 2.0)
        buscap = ctx.node.spec.memory_bandwidth
        for _ in range(self.chunks):
            displaced = ctx.probe.resident_bytes(ctx.node)
            headroom = displaced + max(0.0, ctx.node.page_cache_bytes)
            pressure = displaced / headroom if headroom > 0 else 0.0
            before = ctx.probe.store_net_bytes(ctx.node)
            t0 = ctx.env.now
            yield from ctx.node.cpu.consume(
                chunk * (1.0 + self.gc_sensitivity * pressure),
                cap=float(self.cores), label=f"tenant:{self.name}")
            dt = ctx.env.now - t0
            moved = ctx.probe.store_net_bytes(ctx.node) - before
            share = (moved * copy) / (buscap * dt) if dt > 0 else 0.0
            extra = chunk * self.memory_intensity * MEMBW_POLLUTION * share
            if extra > 0:
                yield from ctx.node.cpu.consume(extra,
                                                cap=float(self.cores),
                                                label=f"tenant:{self.name}")


@dataclass(frozen=True)
class SparkJobSpec:
    """Per-node resource volumes of one Spark job (48 GB executors, §IV-A)."""

    name: str
    input_bytes: float
    dataset_bytes: float
    compute_core_seconds: float
    membw_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    output_bytes: float = 0.0
    executor_memory: float = 48 * GB   # paper: 48 GB workers
    memory_intensity: float = 1.0      # JVM bandwidth sensitivity
    iterations: int = 1


def spark_job(spec: SparkJobSpec, n_nodes: int = 32) -> PhasedWorkload:
    """Build the phase list of one Spark job over *n_nodes* executors."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    peers = max(1, n_nodes - 1)
    phases: list[Phase] = [AllocPhase(spec.executor_memory,
                                      name="executor-heap")]
    # Input is read once and cached in executor memory thereafter.
    phases.append(DiskPhase(spec.input_bytes, spec.dataset_bytes,
                            name="load"))
    for it in range(spec.iterations):
        tag = f"it{it}" if spec.iterations > 1 else "job"
        phases.append(GcComputePhase(spec.compute_core_seconds, cores=32,
                                     memory_intensity=spec.memory_intensity,
                                     name=f"{tag}-compute"))
        if spec.membw_bytes > 0:
            phases.append(MemBandwidthPhase(spec.membw_bytes,
                                            name=f"{tag}-mem"))
        if spec.shuffle_bytes > 0:
            phases.append(NetworkPhase(spec.shuffle_bytes / peers,
                                       pattern="alltoall", transport="tcp",
                                       name=f"{tag}-shuffle"))
    if spec.output_bytes > 0:
        phases.append(DiskPhase(spec.output_bytes, spec.dataset_bytes,
                                write=True, name="save"))
    phases.append(FreePhase())
    return PhasedWorkload(spec.name, phases)
