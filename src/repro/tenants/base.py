"""Phase-based tenant workload models.

The victim nodes run "well-known real-world high-performance computing and
big data benchmarks" (§IV-A-2).  Each benchmark is modeled as a sequence of
**phases** executed SPMD across the tenant's nodes with a barrier after
each phase (the MPI/MapReduce execution style).  Every phase demands one
dominant resource, and slows down exactly through the channel the paper
names for it:

==================  ==========================================================
phase               interference channel with the scavenging store
==================  ==========================================================
ComputePhase        node CPU cores (the store's ≤ 1 core fair share)
MemBandwidthPhase   node memory bus, shared max-min with store socket copies,
                    plus a cache/NUMA *pollution* term (see below)
NetworkPhase        NIC links, shared max-min with store transfers
LatencyPhase        per-message inflation from store request handling
                    (softirq/context-switch disturbance) and NIC queueing
DiskPhase           page cache: the store's resident bytes shrink the cache,
                    misses go to the ~150 MB/s disk
AllocPhase/Free     memory capacity (drives the monitord eviction path)
==================  ==========================================================

Two *calibration constants* cover effects below the fluid model's
resolution; both are global, disclosed, and fitted once against Fig. 3
(see EXPERIMENTS.md):

- ``MEMBW_POLLUTION`` — a byte of store traffic disturbs a saturated
  STREAM-like kernel more than its bus share (cache-line eviction, NUMA
  imbalance, prefetcher disruption).
- ``LATENCY_DISTURBANCE`` — a store request's interrupt/softirq handling
  inflates small-message round trips beyond its raw CPU share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.node import Node
from ..sim import Environment
from ..store import StoreServer
from ..units import GB

__all__ = [
    "MEMBW_POLLUTION", "LATENCY_DISTURBANCE",
    "InterferenceProbe", "PhaseContext",
    "Phase", "ComputePhase", "MemBandwidthPhase", "NetworkPhase",
    "LatencyPhase", "DiskPhase", "AllocPhase", "FreePhase", "SleepPhase",
    "PhasedWorkload", "TenantRun", "run_tenant",
]

#: Bus-interference amplification of store traffic on bandwidth-saturated
#: kernels (calibrated once against Fig. 3a STREAM ≈ 11-12 % under dd).
MEMBW_POLLUTION = 5.0

#: Small-message latency inflation per unit of store request-handling CPU
#: (calibrated once against Fig. 3a latency ≈ 11-12 % under BLAST).
LATENCY_DISTURBANCE = 1.2


class InterferenceProbe:
    """Reads the scavenging store's instantaneous pressure on a node.

    Store flows are labeled ``store:*`` on the shared fluid resources; the
    request rate comes from the servers' arrival trackers.
    """

    def __init__(self, servers_by_node: dict[str, list[StoreServer]] | None = None,
                 net=None, copy_factor: float = 2.0):
        self._servers = dict(servers_by_node or {})
        self._net = net
        self._copy_factor = copy_factor

    @classmethod
    def from_servers(cls, servers: dict[str, StoreServer]) -> "InterferenceProbe":
        by_node: dict[str, list[StoreServer]] = {}
        net = None
        copy = 2.0
        for s in servers.values():
            by_node.setdefault(s.node.name, []).append(s)
            net = s.fabric.net
            copy = s.costs.membw_copy_factor
        return cls(by_node, net=net, copy_factor=copy)

    @staticmethod
    def _store_rate(resource) -> float:
        return sum(f.rate for f in resource.flows
                   if f.label.startswith("store:"))

    def membw_share(self, node: Node) -> float:
        """Instantaneous fraction of the node's memory bus moved by store
        traffic, derived from the store flows on the node's NIC links
        (every wire byte is copied ``copy_factor`` times over the bus)."""
        rate = 0.0
        if self._net is not None:
            for f in self._net.flows:
                if not f.label.startswith("store:"):
                    continue
                if (node.rx is not None and node.rx in f.links) or \
                        (node.tx is not None and node.tx in f.links):
                    rate += f.rate * self._copy_factor
        return rate / node.spec.memory_bandwidth

    def store_net_bytes(self, node: Node) -> float:
        """Cumulative store bytes through this node's NIC links.

        Deltas of this counter over a window give the *average* store
        pressure during the window — immune to burst aliasing, unlike an
        instantaneous sample.
        """
        if self._net is None:
            return 0.0
        self._net.settle()
        total = 0.0
        for link in (node.rx, node.tx):
            if link is not None:
                total += link.class_bytes.get("store", 0.0)
        return total

    def cpu_rate(self, node: Node) -> float:
        """Cores currently consumed by store request handling."""
        return self._store_rate(node.cpu)

    def request_rate(self, node: Node, now: float) -> float:
        """Store requests/s arriving at servers on this node."""
        return sum(s.request_rate.rate(now)
                   for s in self._servers.get(node.name, ()))

    def resident_bytes(self, node: Node) -> float:
        """Store memory resident on the node (page-cache displacement)."""
        return sum(s.memory_used for s in self._servers.get(node.name, ()))


@dataclass
class PhaseContext:
    """Everything a phase needs to run on one node."""

    env: Environment
    node: Node
    peers: list[Node]          # the other nodes of this tenant group
    fabric: object             # repro.cluster.Fabric
    probe: InterferenceProbe
    owner: str                 # memory-accounting owner name


class Phase:
    """Base phase: subclasses implement :meth:`run` as a generator."""

    name = "phase"

    def run(self, ctx: PhaseContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


@dataclass
class ComputePhase(Phase):
    """CPU-bound work: *core_seconds* of compute at up to *cores* wide."""

    core_seconds: float
    cores: int = 32
    name: str = "compute"

    def run(self, ctx: PhaseContext):
        if self.core_seconds <= 0:
            return
        yield from ctx.node.cpu.consume(self.core_seconds,
                                        cap=float(self.cores),
                                        label=f"tenant:{self.name}")


@dataclass
class MemBandwidthPhase(Phase):
    """Memory-bandwidth-bound kernel (STREAM, sort buffers, GUPS tables).

    Moves *nbytes* over the node's memory bus.  Beyond the max-min shared
    bus, concurrent store traffic costs an extra ``pollution`` × share
    slowdown (cache/NUMA disturbance), applied chunk-by-chunk so bursty
    scavenging hits only the chunks it overlaps.
    """

    nbytes: float
    pollution: float = MEMBW_POLLUTION
    chunks: int = 16
    name: str = "membw"

    def run(self, ctx: PhaseContext):
        if self.nbytes <= 0:
            return
        chunk = self.nbytes / self.chunks
        copy = getattr(ctx.probe, "_copy_factor", 2.0)
        cap = ctx.node.spec.memory_bandwidth
        for _ in range(self.chunks):
            # Move the chunk, then pay the pollution penalty for the store
            # traffic that *actually* overlapped it (retrospective, so
            # bursty scavenging is integrated instead of alias-sampled).
            before = ctx.probe.store_net_bytes(ctx.node)
            t0 = ctx.env.now
            yield from ctx.node.membw.consume(chunk,
                                              label=f"tenant:{self.name}")
            dt = ctx.env.now - t0
            moved = ctx.probe.store_net_bytes(ctx.node) - before
            share = (moved * copy) / (cap * dt) if dt > 0 else 0.0
            extra = chunk * self.pollution * share
            if extra > 0:
                yield from ctx.node.membw.consume(
                    extra, label=f"tenant:{self.name}")


@dataclass
class NetworkPhase(Phase):
    """Bulk network exchange with the peer group.

    ``pattern='alltoall'`` sends ``nbytes_per_peer`` to every peer
    concurrently (shuffle); ``'ring'`` sends to the next peer only
    (bandwidth benchmarks).  Shares NICs max-min with store flows.
    """

    nbytes_per_peer: float
    pattern: str = "alltoall"
    # MPI exchanges ride native verbs; Hadoop/Spark shuffles are TCP and
    # therefore share the per-node IPoIB ceiling with the store's flows.
    transport: str = "verbs"
    name: str = "network"

    def run(self, ctx: PhaseContext):
        if self.nbytes_per_peer <= 0 or not ctx.peers:
            return
        if self.pattern == "ring":
            me = [p.name for p in ctx.peers + [ctx.node]]
            me.sort()
            idx = me.index(ctx.node.name)
            target_name = me[(idx + 1) % len(me)]
            targets = [p for p in ctx.peers if p.name == target_name]
        elif self.pattern == "alltoall":
            targets = ctx.peers
        else:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        flows = [ctx.fabric.transfer(ctx.node, dst, self.nbytes_per_peer,
                                     label=f"tenant:{self.name}",
                                     transport=self.transport)
                 for dst in targets]
        try:
            yield ctx.env.all_of([f.done for f in flows])
        except BaseException:
            for f in flows:
                ctx.fabric.net.remove(f)
            raise


@dataclass
class LatencyPhase(Phase):
    """Small-message ping-pong (MPI latency, metadata chatter).

    Per-message time = base RTT × (1 + disturbance × store-request CPU +
    NIC queueing share), sampled every chunk of messages.
    """

    n_messages: int
    base_rtt: float = 4e-6
    disturbance: float = LATENCY_DISTURBANCE
    chunks: int = 16
    name: str = "latency"

    def run(self, ctx: PhaseContext):
        if self.n_messages <= 0:
            return
        per_chunk = self.n_messages / self.chunks
        from ..store.protocol import StoreCostModel
        cost = StoreCostModel()
        nic_cap = ctx.node.spec.nic_bandwidth
        for _ in range(self.chunks):
            # Send the chunk at the base rate, then pay for the disturbance
            # that actually overlapped it: store request handling (softirq
            # CPU) and NIC queueing from store bytes on this node's links.
            before = ctx.probe.store_net_bytes(ctx.node)
            t0 = ctx.env.now
            yield ctx.env.timeout(per_chunk * self.base_rtt)
            dt = ctx.env.now - t0
            req_cpu = (ctx.probe.request_rate(ctx.node, ctx.env.now)
                       * cost.cpu_per_request)
            moved = ctx.probe.store_net_bytes(ctx.node) - before
            nic_q = moved / (nic_cap * dt) if dt > 0 else 0.0
            extra = per_chunk * self.base_rtt * (
                self.disturbance * req_cpu + nic_q)
            if extra > 0:
                yield ctx.env.timeout(extra)


@dataclass
class DiskPhase(Phase):
    """HDFS-style disk I/O through the page cache.

    The cached fraction — ``page_cache / dataset`` — moves at memory-bus
    speed (reads hit cached pages; writes are absorbed by write-behind);
    the rest is synchronous disk traffic.  The scavenging store's resident
    bytes shrink the page cache, which is the paper's DFSIO-read mechanism
    in Fig. 4 and part of TeraSort's sensitivity.
    """

    nbytes: float
    dataset_bytes: float
    write: bool = False
    chunks: int = 8
    name: str = "disk"

    def run(self, ctx: PhaseContext):
        if self.nbytes <= 0:
            return
        chunk = self.nbytes / self.chunks
        for _ in range(self.chunks):
            cache = max(0.0, ctx.node.page_cache_bytes)
            hit = min(1.0, cache / self.dataset_bytes) \
                if self.dataset_bytes > 0 else 1.0
            if hit > 0:
                yield from ctx.node.membw.consume(chunk * hit,
                                                  label=f"tenant:{self.name}")
            if hit < 1:
                yield from ctx.node.disk.consume(chunk * (1 - hit),
                                                 label=f"tenant:{self.name}")


@dataclass
class FrameworkComputePhase(Phase):
    """JVM data-processing compute (Hadoop mappers/reducers, Spark tasks).

    Unlike a dense numeric kernel, framework code churns objects and
    buffers continuously, so it is *bandwidth-sensitive everywhere*, not
    only in explicit memcpy phases.  The inflation reuses the global
    ``MEMBW_POLLUTION`` constant scaled by a per-benchmark
    ``memory_intensity`` (the paper's qualitative labels: TeraSort
    "utilizes a large amount of memory", WordCount "has a high memory
    usage", ...), measured retrospectively per chunk like
    :class:`MemBandwidthPhase`.
    """

    core_seconds: float
    cores: int = 32
    memory_intensity: float = 1.0
    pollution: float = MEMBW_POLLUTION
    chunks: int = 8
    name: str = "fw-compute"

    def run(self, ctx: PhaseContext):
        if self.core_seconds <= 0:
            return
        chunk = self.core_seconds / self.chunks
        copy = getattr(ctx.probe, "_copy_factor", 2.0)
        cap = ctx.node.spec.memory_bandwidth
        for _ in range(self.chunks):
            before = ctx.probe.store_net_bytes(ctx.node)
            t0 = ctx.env.now
            yield from ctx.node.cpu.consume(chunk, cap=float(self.cores),
                                            label=f"tenant:{self.name}")
            dt = ctx.env.now - t0
            moved = ctx.probe.store_net_bytes(ctx.node) - before
            share = (moved * copy) / (cap * dt) if dt > 0 else 0.0
            extra = chunk * self.memory_intensity * self.pollution * share
            if extra > 0:
                yield from ctx.node.cpu.consume(extra,
                                                cap=float(self.cores),
                                                label=f"tenant:{self.name}")


@dataclass
class AllocPhase(Phase):
    """Claim tenant memory (working set growth)."""

    nbytes: float
    name: str = "alloc"

    def run(self, ctx: PhaseContext):
        take = min(self.nbytes, ctx.node.memory_free)
        if take > 0:
            ctx.node.allocate_memory(ctx.owner, take)
        return
        yield  # pragma: no cover


@dataclass
class FreePhase(Phase):
    """Release tenant memory."""

    nbytes: float | None = None
    name: str = "free"

    def run(self, ctx: PhaseContext):
        ctx.node.free_memory(ctx.owner, self.nbytes)
        return
        yield  # pragma: no cover


@dataclass
class SleepPhase(Phase):
    """Fixed think/setup time."""

    seconds: float
    name: str = "sleep"

    def run(self, ctx: PhaseContext):
        if self.seconds > 0:
            yield ctx.env.timeout(self.seconds)


@dataclass
class PhasedWorkload:
    """A named benchmark: a phase list run SPMD with barriers."""

    name: str
    phases: list[Phase] = field(default_factory=list)

    def total_phases(self) -> int:
        return len(self.phases)


@dataclass
class TenantRun:
    """Result of one benchmark execution."""

    workload: str
    start: float
    end: float
    phase_times: dict[str, float] = field(default_factory=dict)

    @property
    def runtime(self) -> float:
        return self.end - self.start


def run_tenant(env: Environment, workload: PhasedWorkload,
               nodes: list[Node], fabric, probe: InterferenceProbe,
               owner: str | None = None):
    """Generator: run *workload* SPMD over *nodes*; returns TenantRun.

    A barrier separates phases: the next phase starts when the slowest
    node finishes the current one (MPI collective semantics).
    """
    if not nodes:
        raise ValueError("need at least one tenant node")
    owner = owner or f"tenant:{workload.name}"
    start = env.now
    result = TenantRun(workload=workload.name, start=start, end=start)
    for i, phase in enumerate(workload.phases):
        t0 = env.now
        procs = []
        for node in nodes:
            peers = [n for n in nodes if n is not node]
            ctx = PhaseContext(env=env, node=node, peers=peers,
                               fabric=fabric, probe=probe, owner=owner)
            procs.append(env.process(phase.run(ctx),
                                     name=f"{workload.name}:{phase.name}"))
        if procs:
            yield env.all_of(procs)
        key = f"{i}:{phase.name}"
        result.phase_times[key] = env.now - t0
    # Release any working-set memory the benchmark left allocated.
    for node in nodes:
        node.free_memory(owner)
    result.end = env.now
    return result
