"""HiBench benchmark definitions (paper §IV-C, Figs. 4-5).

The paper selects six representative HiBench benchmarks and names each
one's dominant resources; the specs below encode exactly those mixes at
the "big data" input scale (per-node volumes on 32 workers):

- **KMeans** — "mostly CPU-intensive, but also has a high I/O utilization"
- **PageRank** — "CPU-bound, but has a highly variable CPU utilization"
  (iterative: compute bursts alternating with joins/shuffles)
- **WordCount** — "CPU-bound, but also has a high memory usage"
- **TeraSort** — "CPU-intensive in the map-phase, utilizes a large amount
  of memory and ... a large network traffic in the shuffle phase"
- **DFSIO-read / DFSIO-write** — "I/O intensive ... also generate a large
  amount of network traffic"; reads go through the page cache, which the
  scavenger's resident bytes displace.

The Spark variants run the same five computations (no DFSIO — "not yet
implemented for Spark", §IV-C) on 48 GB executors with the GC-pressure
compute model.
"""

from __future__ import annotations

from ..units import GB
from .base import PhasedWorkload
from .mapreduce import MapReduceSpec, mapreduce_job
from .spark import SparkJobSpec, spark_job

__all__ = ["HIBENCH_HADOOP", "HIBENCH_SPARK", "hibench_hadoop",
           "hibench_spark", "hibench_hadoop_suite", "hibench_spark_suite"]

_HADOOP_SPECS: dict[str, MapReduceSpec] = {
    "KMeans": MapReduceSpec(
        name="KMeans",
        input_bytes=20 * GB, dataset_bytes=28 * GB,
        map_core_seconds=32 * 25.0, map_membw_bytes=60 * GB,
        shuffle_bytes=1 * GB,
        reduce_core_seconds=32 * 4.0,
        output_bytes=0.5 * GB,
        working_set=10 * GB, memory_intensity=0.5, iterations=3),
    "PageRank": MapReduceSpec(
        name="PageRank",
        input_bytes=12 * GB, dataset_bytes=40 * GB,
        map_core_seconds=32 * 18.0, map_membw_bytes=30 * GB,
        shuffle_bytes=4 * GB,
        reduce_core_seconds=32 * 8.0,
        output_bytes=2 * GB,
        working_set=10 * GB, memory_intensity=0.4, iterations=3),
    "WordCount": MapReduceSpec(
        name="WordCount",
        input_bytes=30 * GB, dataset_bytes=36 * GB,
        map_core_seconds=32 * 45.0, map_membw_bytes=250 * GB,
        shuffle_bytes=0.5 * GB,
        reduce_core_seconds=32 * 3.0,
        output_bytes=0.2 * GB,
        working_set=12 * GB, memory_intensity=1.0),
    "TeraSort": MapReduceSpec(
        # "CPU-intensive in the map-phase, utilizes a large amount of
        # memory and ... a large network traffic in the shuffle phase".
        name="TeraSort",
        input_bytes=30 * GB, dataset_bytes=100 * GB,
        map_core_seconds=32 * 25.0, map_membw_bytes=350 * GB,
        shuffle_bytes=30 * GB,
        reduce_core_seconds=32 * 12.0, reduce_membw_bytes=150 * GB,
        output_bytes=30 * GB,
        working_set=28 * GB, memory_intensity=3.0),
    "DFSIO-read": MapReduceSpec(
        name="DFSIO-read",
        input_bytes=40 * GB, dataset_bytes=120 * GB,
        map_core_seconds=32 * 30.0,
        working_set=8 * GB, memory_intensity=0.2),
    "DFSIO-write": MapReduceSpec(
        name="DFSIO-write",
        input_bytes=0.1 * GB, dataset_bytes=120 * GB,
        map_core_seconds=32 * 30.0,
        shuffle_bytes=2 * GB,  # HDFS replication pipeline
        output_bytes=40 * GB,
        working_set=8 * GB, memory_intensity=0.2),
}

_SPARK_SPECS: dict[str, SparkJobSpec] = {
    "KMeans": SparkJobSpec(
        name="KMeans",
        input_bytes=20 * GB, dataset_bytes=28 * GB,
        compute_core_seconds=32 * 22.0, membw_bytes=80 * GB,
        shuffle_bytes=0.8 * GB, memory_intensity=0.8, iterations=3),
    "PageRank": SparkJobSpec(
        name="PageRank",
        input_bytes=12 * GB, dataset_bytes=40 * GB,
        compute_core_seconds=32 * 15.0, membw_bytes=60 * GB,
        shuffle_bytes=4 * GB, memory_intensity=0.8, iterations=3),
    "WordCount": SparkJobSpec(
        name="WordCount",
        input_bytes=30 * GB, dataset_bytes=36 * GB,
        compute_core_seconds=32 * 35.0, membw_bytes=300 * GB,
        shuffle_bytes=0.5 * GB, memory_intensity=1.2),
    "TeraSort": SparkJobSpec(
        name="TeraSort",
        input_bytes=30 * GB, dataset_bytes=100 * GB,
        compute_core_seconds=32 * 30.0, membw_bytes=400 * GB,
        shuffle_bytes=30 * GB, output_bytes=30 * GB,
        memory_intensity=2.0),
    "Sort": SparkJobSpec(
        name="Sort",
        input_bytes=25 * GB, dataset_bytes=80 * GB,
        compute_core_seconds=32 * 18.0, membw_bytes=300 * GB,
        shuffle_bytes=25 * GB, output_bytes=25 * GB,
        memory_intensity=1.5),
}

HIBENCH_HADOOP = tuple(_HADOOP_SPECS)
HIBENCH_SPARK = tuple(_SPARK_SPECS)


def _scaled_mr(spec: MapReduceSpec, scale: float) -> MapReduceSpec:
    """Shrink a job's I/O and compute volumes (slowdowns are scale-free;
    the dataset size and working set stay — page-cache effects are about
    *resident* state, not about how much of it one run touches)."""
    from dataclasses import replace
    return replace(spec,
                   input_bytes=spec.input_bytes * scale,
                   map_core_seconds=spec.map_core_seconds * scale,
                   map_membw_bytes=spec.map_membw_bytes * scale,
                   shuffle_bytes=spec.shuffle_bytes * scale,
                   reduce_core_seconds=spec.reduce_core_seconds * scale,
                   reduce_membw_bytes=spec.reduce_membw_bytes * scale,
                   output_bytes=spec.output_bytes * scale)


def _scaled_spark(spec: SparkJobSpec, scale: float) -> SparkJobSpec:
    from dataclasses import replace
    return replace(spec,
                   input_bytes=spec.input_bytes * scale,
                   compute_core_seconds=spec.compute_core_seconds * scale,
                   membw_bytes=spec.membw_bytes * scale,
                   shuffle_bytes=spec.shuffle_bytes * scale,
                   output_bytes=spec.output_bytes * scale)


def hibench_hadoop(name: str, n_nodes: int = 32,
                   scale: float = 1.0) -> PhasedWorkload:
    """One HiBench benchmark as a Hadoop job."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    try:
        spec = _HADOOP_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown Hadoop HiBench benchmark {name!r}; "
                         f"choose from {HIBENCH_HADOOP}") from None
    if scale != 1.0:
        spec = _scaled_mr(spec, scale)
    return mapreduce_job(spec, n_nodes)


def hibench_spark(name: str, n_nodes: int = 32,
                  scale: float = 1.0) -> PhasedWorkload:
    """One HiBench benchmark as a Spark job."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    try:
        spec = _SPARK_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown Spark HiBench benchmark {name!r}; "
                         f"choose from {HIBENCH_SPARK}") from None
    if scale != 1.0:
        spec = _scaled_spark(spec, scale)
    return spark_job(spec, n_nodes)


def hibench_hadoop_suite(n_nodes: int = 32,
                         scale: float = 1.0) -> list[PhasedWorkload]:
    return [hibench_hadoop(n, n_nodes, scale) for n in HIBENCH_HADOOP]


def hibench_spark_suite(n_nodes: int = 32,
                        scale: float = 1.0) -> list[PhasedWorkload]:
    return [hibench_spark(n, n_nodes, scale) for n in HIBENCH_SPARK]
