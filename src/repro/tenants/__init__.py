"""Tenant (victim-side) benchmark models: HPCC and HiBench on Hadoop/Spark."""

from .base import (AllocPhase, ComputePhase, DiskPhase,
                   FrameworkComputePhase, FreePhase, InterferenceProbe,
                   LatencyPhase, MemBandwidthPhase, NetworkPhase, Phase,
                   PhaseContext, PhasedWorkload, SleepPhase, TenantRun,
                   run_tenant, LATENCY_DISTURBANCE, MEMBW_POLLUTION)
from .hpcc import HPCC_BENCHMARKS, hpcc_benchmark, hpcc_suite
from .mapreduce import MapReduceSpec, mapreduce_job
from .spark import GC_SENSITIVITY, GcComputePhase, SparkJobSpec, spark_job
from .hibench import (HIBENCH_HADOOP, HIBENCH_SPARK, hibench_hadoop,
                      hibench_hadoop_suite, hibench_spark,
                      hibench_spark_suite)

__all__ = [
    "Phase", "PhaseContext", "PhasedWorkload", "TenantRun", "run_tenant",
    "ComputePhase", "MemBandwidthPhase", "NetworkPhase", "LatencyPhase",
    "DiskPhase", "AllocPhase", "FreePhase", "SleepPhase",
    "FrameworkComputePhase",
    "InterferenceProbe", "MEMBW_POLLUTION", "LATENCY_DISTURBANCE",
    "HPCC_BENCHMARKS", "hpcc_benchmark", "hpcc_suite",
    "MapReduceSpec", "mapreduce_job",
    "SparkJobSpec", "spark_job", "GcComputePhase", "GC_SENSITIVITY",
    "HIBENCH_HADOOP", "HIBENCH_SPARK", "hibench_hadoop", "hibench_spark",
    "hibench_hadoop_suite", "hibench_spark_suite",
]
