"""Hadoop MapReduce job model (paper §IV-A-2, Fig. 4).

A MapReduce job is map → shuffle → reduce; each stage's dominant resource
follows the paper's characterization of the HiBench benchmarks:

- maps read HDFS through the **page cache**, where they collide with the
  scavenger's resident bytes (the DFSIO-read mechanism);
- mapper/reducer JVM compute is **bandwidth-sensitive** in proportion to
  the benchmark's ``memory_intensity``
  (:class:`~repro.tenants.base.FrameworkComputePhase`);
- shuffles are **TCP** traffic and share the per-node IPoIB ceiling with
  the store's transfers (TeraSort's channel);
- reduces write back through the page cache / local disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GB
from .base import (AllocPhase, DiskPhase, FrameworkComputePhase, FreePhase,
                   MemBandwidthPhase, NetworkPhase, Phase, PhasedWorkload)

__all__ = ["MapReduceSpec", "mapreduce_job"]


@dataclass(frozen=True)
class MapReduceSpec:
    """Per-node resource volumes of one MapReduce job."""

    name: str
    input_bytes: float            # HDFS bytes read per node (map)
    dataset_bytes: float          # HDFS bytes the job touches per node
    map_core_seconds: float       # map compute per node
    map_membw_bytes: float = 0.0  # explicit in-memory traffic per node
    shuffle_bytes: float = 0.0    # bytes sent per node during shuffle
    reduce_core_seconds: float = 0.0
    reduce_membw_bytes: float = 0.0
    output_bytes: float = 0.0     # HDFS bytes written per node (reduce)
    working_set: float = 8 * GB   # JVM heaps + framework memory
    memory_intensity: float = 0.3  # JVM bandwidth sensitivity (see base.py)
    iterations: int = 1            # iterative jobs (KMeans, PageRank)


def mapreduce_job(spec: MapReduceSpec, n_nodes: int = 32) -> PhasedWorkload:
    """Build the phase list of one Hadoop job over *n_nodes* workers."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    peers = max(1, n_nodes - 1)
    phases: list[Phase] = [AllocPhase(spec.working_set, name="jvm-heap")]
    for it in range(spec.iterations):
        tag = f"it{it}" if spec.iterations > 1 else "job"
        phases.append(DiskPhase(spec.input_bytes, spec.dataset_bytes,
                                name=f"{tag}-map-read"))
        if spec.map_core_seconds > 0:
            phases.append(FrameworkComputePhase(
                spec.map_core_seconds, cores=32,
                memory_intensity=spec.memory_intensity,
                name=f"{tag}-map"))
        if spec.map_membw_bytes > 0:
            phases.append(MemBandwidthPhase(spec.map_membw_bytes,
                                            name=f"{tag}-map-mem"))
        if spec.shuffle_bytes > 0:
            phases.append(NetworkPhase(spec.shuffle_bytes / peers,
                                       pattern="alltoall", transport="tcp",
                                       name=f"{tag}-shuffle"))
        if spec.reduce_core_seconds > 0:
            phases.append(FrameworkComputePhase(
                spec.reduce_core_seconds, cores=32,
                memory_intensity=spec.memory_intensity,
                name=f"{tag}-reduce"))
        if spec.reduce_membw_bytes > 0:
            phases.append(MemBandwidthPhase(spec.reduce_membw_bytes,
                                            name=f"{tag}-reduce-mem"))
        if spec.output_bytes > 0:
            phases.append(DiskPhase(spec.output_bytes, spec.dataset_bytes,
                                    write=True, name=f"{tag}-write"))
    phases.append(FreePhase())
    return PhasedWorkload(spec.name, phases)
