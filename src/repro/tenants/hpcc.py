"""HPCC benchmark suite model (paper §IV-A-2, Fig. 3).

The HPC Challenge suite assesses "CPU speed, memory bandwidth, network
bandwidth and latency".  We model the eight categories the HPCC kiviat
diagram reports (the ones the paper plots), each as a phase list whose
dominant resource matches the real kernel.  Input sizes follow the paper's
configuration: "a load of at most 48 GB memory per node", all 32 cores.

Baseline runtimes land in the tens-of-seconds range per category, long
enough to overlap the scavenging workload in the slowdown experiments.
"""

from __future__ import annotations

from ..units import GB, MB
from .base import (AllocPhase, ComputePhase, FreePhase, LatencyPhase,
                   MemBandwidthPhase, NetworkPhase, PhasedWorkload)

__all__ = ["HPCC_BENCHMARKS", "hpcc_suite", "hpcc_benchmark"]


def _hpl(scale: float = 1.0) -> PhasedWorkload:
    # LINPACK: dense LU — dominated by DGEMM-like compute, with panel
    # broadcasts on the wire and a 40 GB working set.
    return PhasedWorkload("HPL", [
        AllocPhase(40 * GB),
        NetworkPhase(nbytes_per_peer=96 * MB * scale, pattern="alltoall",
                     name="panel-bcast"),
        ComputePhase(core_seconds=32 * 90.0 * scale, cores=32, name="lu"),
        NetworkPhase(nbytes_per_peer=96 * MB * scale, pattern="alltoall",
                     name="panel-bcast2"),
        FreePhase(),
    ])


def _dgemm(scale: float = 1.0) -> PhasedWorkload:
    # Pure local matrix multiply: compute only.
    return PhasedWorkload("DGEMM", [
        AllocPhase(8 * GB),
        ComputePhase(core_seconds=32 * 60.0 * scale, cores=32,
                     name="dgemm"),
        FreePhase(),
    ])


def _ptrans(scale: float = 1.0) -> PhasedWorkload:
    # Parallel matrix transpose: large pairwise exchanges.
    return PhasedWorkload("PTRANS", [
        AllocPhase(40 * GB),
        MemBandwidthPhase(nbytes=200 * GB * scale, name="pack"),
        NetworkPhase(nbytes_per_peer=800 * MB * scale, pattern="alltoall",
                     name="transpose"),
        MemBandwidthPhase(nbytes=200 * GB * scale, name="unpack"),
        FreePhase(),
    ])


def _random_access(scale: float = 1.0) -> PhasedWorkload:
    # GUPS: random 8-byte updates -> one 64 B cache line each; the table
    # is memory-resident, so the bus is the bottleneck.
    return PhasedWorkload("RandomAccess", [
        AllocPhase(16 * GB),
        MemBandwidthPhase(nbytes=512 * GB * scale, name="gups"),
        FreePhase(),
    ])


def _stream(scale: float = 1.0) -> PhasedWorkload:
    # STREAM triad, all cores: the canonical memory-bandwidth kernel and
    # the paper's most scavenging-sensitive HPCC category.
    return PhasedWorkload("STREAM", [
        AllocPhase(24 * GB),
        MemBandwidthPhase(nbytes=1536 * GB * scale, name="triad"),
        FreePhase(),
    ])


def _fft(scale: float = 1.0) -> PhasedWorkload:
    # Global FFT: local butterflies (compute + bus) and an all-to-all
    # transpose — sensitive to everything at once.
    return PhasedWorkload("FFT", [
        AllocPhase(32 * GB),
        ComputePhase(core_seconds=32 * 20.0 * scale, cores=32,
                     name="butterfly"),
        MemBandwidthPhase(nbytes=300 * GB * scale, name="twiddle"),
        NetworkPhase(nbytes_per_peer=320 * MB * scale, pattern="alltoall",
                     name="transpose"),
        MemBandwidthPhase(nbytes=150 * GB * scale, name="twiddle2"),
        FreePhase(),
    ])


def _bandwidth(scale: float = 1.0) -> PhasedWorkload:
    # b_eff bandwidth: large-message ring exchange.
    return PhasedWorkload("bandwidth", [
        NetworkPhase(nbytes_per_peer=30 * GB * scale, pattern="ring",
                     name="ring"),
    ])


def _latency(scale: float = 1.0) -> PhasedWorkload:
    # b_eff latency: millions of small-message ping-pongs.
    return PhasedWorkload("latency", [
        LatencyPhase(n_messages=int(2_000_000 * scale), name="pingpong"),
    ])


_BUILDERS = {
    "HPL": _hpl,
    "DGEMM": _dgemm,
    "PTRANS": _ptrans,
    "RandomAccess": _random_access,
    "STREAM": _stream,
    "FFT": _fft,
    "bandwidth": _bandwidth,
    "latency": _latency,
}

#: Category names in the order the paper's Fig. 3 plots them.
HPCC_BENCHMARKS = tuple(_BUILDERS)


def hpcc_benchmark(name: str, scale: float = 1.0) -> PhasedWorkload:
    """One HPCC category as a fresh workload instance.

    *scale* shrinks the input volume proportionally (the slowdown ratio is
    scale-free; the benchmark harness uses 0.5 to halve wall time).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    try:
        return _BUILDERS[name](scale)
    except KeyError:
        raise ValueError(f"unknown HPCC benchmark {name!r}; "
                         f"choose from {HPCC_BENCHMARKS}") from None


def hpcc_suite(scale: float = 1.0) -> list[PhasedWorkload]:
    """All eight categories, in Fig. 3 order."""
    return [hpcc_benchmark(n, scale) for n in HPCC_BENCHMARKS]
