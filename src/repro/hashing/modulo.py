"""Modulo placement for metadata.

Paper §III-D: metadata (directory entries, file sizes, stripe maps, the
HRW weights in force when a file was written) is stored *only on own
nodes* with "a simple modulo hashing scheme" — own nodes are controlled
by the MemFSS user, less likely to fail or be evicted, and metadata
operations are latency-bound so they stay close to the task nodes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

from .hrw import stable_digest

__all__ = ["ModuloPlacer"]


class ModuloPlacer:
    """Places keys on ``nodes[digest(key) % len(nodes)]``.

    Unlike HRW, modulo placement remaps nearly all keys when the node list
    changes — acceptable here because the *own* node set is fixed for the
    lifetime of a reservation (victim classes come and go, own nodes don't).
    """

    def __init__(self, nodes: Sequence[Hashable]):
        if not nodes:
            raise ValueError("ModuloPlacer needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate nodes")
        self._nodes = list(nodes)

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes)

    def place(self, key: Hashable) -> Hashable:
        return self._nodes[stable_digest(key) % len(self._nodes)]

    def replicas(self, key: Hashable, k: int) -> list[Hashable]:
        """k distinct nodes: the primary plus its successors (wrap-around)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self._nodes))
        start = stable_digest(key) % len(self._nodes)
        return [self._nodes[(start + i) % len(self._nodes)] for i in range(k)]
