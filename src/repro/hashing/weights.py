"""Converting target data fractions into HRW class weights.

The paper steers data volume between node classes by subtracting a weight
from each class's hash score (§III-B): *"larger weights for the victim class
generate lower loads, while smaller weights yield higher loads"*.  This
module computes the weights that realize a requested split.

For the two-class case (own vs. victim) the weight offset has a closed
form.  With both scores uniform on ``[0, M)`` and offset
``x = W_own − W_victim``, the probability that *own* wins is

* ``f = (M − x)² / (2 M²)``      for ``x ≥ 0`` (own penalized, f ≤ ½)
* ``f = 1 − (M + x)² / (2 M²)``  for ``x < 0``  (victim penalized, f > ½)

Inverting gives :func:`two_class_weights`.  For three or more classes the
win probabilities have no convenient closed form, so
:func:`calibrate_weights` fits weights numerically against vectorized
sampled hashes (deterministic under a fixed seed).

The numeric fit is *memoized*: live weight retuning (the market
controller recalibrates every epoch) revisits the same rounded fraction
vectors over and over, and re-running a 60-iteration sampled fit for a
state already solved would dominate the retune hot path.  Fits are keyed
by the rounded fraction vector plus every fit parameter; hit/miss
counters live on :data:`weight_fit_stats`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Hashable

import numpy as np

from .hrw import HashFamily, MIX64, WeightedClassHrw, get_family

__all__ = [
    "two_class_weights",
    "own_victim_weights",
    "achieved_fractions",
    "calibrate_weights",
    "WeightFitStats",
    "weight_fit_stats",
    "clear_weight_fit_cache",
]


class WeightFitStats:
    """Process-wide calibration counters (the ``planner_stats`` pattern).

    ``fit_hits`` counts multi-class calibrations answered from the memo,
    ``fit_misses`` the numeric fits actually run, and ``closed_form``
    the two-class requests solved analytically (never cached — the
    closed form is cheaper than a lookup).
    """

    _COUNTERS = ("fit_hits", "fit_misses", "closed_form")
    __slots__ = _COUNTERS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTERS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"<WeightFitStats {parts}>"


weight_fit_stats = WeightFitStats()

#: Memoized numeric fits: recurring market states (same rounded targets,
#: same family and fit parameters) skip the sampled iteration entirely.
_FIT_CACHE: "OrderedDict[tuple, dict]" = OrderedDict()
_FIT_CACHE_SIZE = 256
#: Fractions are rounded to this many decimals for the memo key: market
#: states that differ by less than the fit tolerance share one fit.
_FIT_KEY_DECIMALS = 6


def clear_weight_fit_cache() -> None:
    """Drop memoized fits and reset the fit counters (tests)."""
    _FIT_CACHE.clear()
    weight_fit_stats.reset()


def two_class_weights(fraction_first: float,
                      family: str | HashFamily = MIX64,
                      ) -> tuple[float, float]:
    """Weights ``(W_first, W_second)`` sending *fraction_first* of keys to
    the first class.  The smaller weight is normalized to 0."""
    if not 0.0 <= fraction_first <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction_first}")
    m = float(get_family(family).modulus)
    f = fraction_first
    if f <= 0.5:
        # Penalize the first class.
        return m * (1.0 - math.sqrt(2.0 * f)), 0.0
    return 0.0, m * (1.0 - math.sqrt(2.0 * (1.0 - f)))


def own_victim_weights(alpha: float, family: str | HashFamily = MIX64,
                       ) -> dict[str, float]:
    """Class weights for the paper's α = fraction of data on *own* nodes."""
    w_own, w_victim = two_class_weights(alpha, family)
    return {"own": w_own, "victim": w_victim}


def achieved_fractions(weights: dict[Hashable, float],
                       family: str | HashFamily = MIX64,
                       samples: int = 200_000,
                       seed: int = 12345) -> dict[Hashable, float]:
    """Empirical per-class key share under *weights* (sampled, vectorized)."""
    layer = WeightedClassHrw(weights, family)
    rng = np.random.default_rng(seed)
    digests = rng.integers(0, 2**64, size=samples, dtype=np.uint64)
    choice = layer.choose_batch(digests)
    counts = np.bincount(choice, minlength=len(layer.classes))
    return {c: counts[i] / samples for i, c in enumerate(layer.classes)}


def calibrate_weights(fractions: dict[Hashable, float],
                      family: str | HashFamily = MIX64,
                      samples: int = 200_000,
                      iterations: int = 60,
                      seed: int = 12345,
                      tol: float = 5e-3) -> dict[Hashable, float]:
    """Fit class weights matching arbitrary target *fractions* (≥ 2 classes).

    Stochastic-approximation fit: adjust each weight proportionally to the
    error between its empirical and target share, re-normalizing the minimum
    weight to zero each round.  Deterministic for a fixed *seed*.

    Multi-class fits are memoized on the rounded fraction vector plus the
    fit parameters, so per-epoch retunes that revisit a market state skip
    the numeric iteration (see :data:`weight_fit_stats`).  A fresh dict is
    returned on every call — callers may mutate the result freely.
    """
    if abs(sum(fractions.values()) - 1.0) > 1e-9:
        raise ValueError("target fractions must sum to 1")
    if any(f < 0 for f in fractions.values()):
        raise ValueError("target fractions must be non-negative")
    classes = list(fractions)
    if len(classes) < 2:
        raise ValueError("need at least two classes")
    fam = get_family(family)
    m = float(fam.modulus)
    if len(classes) == 2:
        weight_fit_stats.closed_form += 1
        w0, w1 = two_class_weights(fractions[classes[0]], fam)
        return {classes[0]: w0, classes[1]: w1}

    token = (fam.name, samples, iterations, seed, float(tol),
             tuple((c, round(float(fractions[c]), _FIT_KEY_DECIMALS))
                   for c in classes))
    cached = _FIT_CACHE.get(token)
    if cached is not None:
        _FIT_CACHE.move_to_end(token)
        weight_fit_stats.fit_hits += 1
        return dict(cached)
    weight_fit_stats.fit_misses += 1

    rng = np.random.default_rng(seed)
    digests = rng.integers(0, 2**64, size=samples, dtype=np.uint64)
    weights = {c: 0.0 for c in classes}
    step = 0.4 * m
    for _ in range(iterations):
        layer = WeightedClassHrw(weights, fam)
        choice = layer.choose_batch(digests)
        counts = np.bincount(choice, minlength=len(classes))
        errors = {c: counts[i] / samples - fractions[c]
                  for i, c in enumerate(layer.classes)}
        if max(abs(e) for e in errors.values()) < tol:
            break
        for c in classes:
            # Over-served classes get a heavier penalty weight.
            weights[c] = min(m, max(0.0, weights[c] + step * errors[c]))
        low = min(weights.values())
        for c in classes:
            weights[c] -= low
        step *= 0.92
    _FIT_CACHE[token] = dict(weights)
    while len(_FIT_CACHE) > _FIT_CACHE_SIZE:
        _FIT_CACHE.popitem(last=False)
    return weights
