"""Placement substrate: HRW / weighted-class HRW, consistent hashing, modulo."""

from .hrw import (HashFamily, HrwHasher, MIX64, TR98, WeightedClassHrw, fnv1a,
                  hash_mix64, hash_mix64_batch, hash_tr98, hash_tr98_batch,
                  stable_digest)
from .weights import (WeightFitStats, achieved_fractions, calibrate_weights,
                      clear_weight_fit_cache, own_victim_weights,
                      two_class_weights, weight_fit_stats)
from .consistent import ConsistentHashRing
from .modulo import ModuloPlacer

__all__ = [
    "HashFamily", "HrwHasher", "WeightedClassHrw", "MIX64", "TR98",
    "hash_mix64", "hash_tr98", "hash_mix64_batch", "hash_tr98_batch",
    "fnv1a", "stable_digest",
    "two_class_weights", "own_victim_weights", "achieved_fractions",
    "calibrate_weights", "WeightFitStats", "weight_fit_stats",
    "clear_weight_fit_cache",
    "ConsistentHashRing", "ModuloPlacer",
]
