"""Placement substrate: HRW / weighted-class HRW, consistent hashing, modulo."""

from .hrw import (HashFamily, HrwHasher, MIX64, TR98, WeightedClassHrw, fnv1a,
                  hash_mix64, hash_mix64_batch, hash_tr98, hash_tr98_batch,
                  stable_digest)
from .weights import (achieved_fractions, calibrate_weights,
                      own_victim_weights, two_class_weights)
from .consistent import ConsistentHashRing
from .modulo import ModuloPlacer

__all__ = [
    "HashFamily", "HrwHasher", "WeightedClassHrw", "MIX64", "TR98",
    "hash_mix64", "hash_tr98", "hash_mix64_batch", "hash_tr98_batch",
    "fnv1a", "stable_digest",
    "two_class_weights", "own_victim_weights", "achieved_fractions",
    "calibrate_weights",
    "ConsistentHashRing", "ModuloPlacer",
]
