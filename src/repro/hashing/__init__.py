"""Placement substrate: HRW / weighted-class HRW, consistent hashing, modulo."""

from .hrw import (HashFamily, HrwHasher, MIX64, TR98, WeightedClassHrw,
                  hash_mix64, hash_tr98, stable_digest)
from .weights import (achieved_fractions, calibrate_weights,
                      own_victim_weights, two_class_weights)
from .consistent import ConsistentHashRing
from .modulo import ModuloPlacer

__all__ = [
    "HashFamily", "HrwHasher", "WeightedClassHrw", "MIX64", "TR98",
    "hash_mix64", "hash_tr98", "stable_digest",
    "two_class_weights", "own_victim_weights", "achieved_fractions",
    "calibrate_weights",
    "ConsistentHashRing", "ModuloPlacer",
]
