"""Consistent hashing ring — the comparison baseline of §V-C.

MemFS (the prior system) used consistent hashing [Karger et al. 1997]; the
paper argues HRW is preferable for MemFSS because (a) consistent-hashing
ring changes force *eager* data movement while HRW allows lazy lookup down
the rank list, and (b) balancing a ring for heterogeneous capacities needs
many virtual nodes per server — i.e. many Redis processes per node, with
real memory/CPU overhead.  This implementation exists to quantify those
claims in the hashing ablation benchmark.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable
from typing import Hashable

from .hrw import HashFamily, MIX64, get_family, stable_digest

__all__ = ["ConsistentHashRing"]


class ConsistentHashRing:
    """A ring with a configurable number of virtual nodes per server.

    ``weights`` scales the virtual-node count per server, the classic way
    to approximate heterogeneous capacities on a ring.
    """

    def __init__(self, nodes: Iterable[Hashable], vnodes: int = 64,
                 weights: dict[Hashable, float] | None = None,
                 family: str | HashFamily = MIX64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.family = get_family(family)
        self.vnodes = vnodes
        self._weights = dict(weights or {})
        self._points: list[int] = []
        self._owners: list[Hashable] = []
        self._nodes: list[Hashable] = []
        for n in nodes:
            self._insert(n)
        if not self._nodes:
            raise ValueError("ring needs at least one node")

    # -- membership ------------------------------------------------------------
    def _vnode_count(self, node: Hashable) -> int:
        return max(1, round(self.vnodes * self._weights.get(node, 1.0)))

    def _insert(self, node: Hashable) -> None:
        if node in self._nodes:
            raise ValueError(f"duplicate node {node!r}")
        self._nodes.append(node)
        seed = stable_digest(node)
        for v in range(self._vnode_count(node)):
            point = self.family(seed, stable_digest(("vnode", v)))
            idx = bisect.bisect_left(self._points, point)
            # Skip exact collisions deterministically.
            while idx < len(self._points) and self._points[idx] == point:
                point = (point + 1) % self.family.modulus
                idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def add_node(self, node: Hashable, weight: float = 1.0) -> None:
        self._weights[node] = weight
        self._insert(node)

    def remove_node(self, node: Hashable) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes)

    # -- placement ---------------------------------------------------------------
    def place(self, key: Hashable) -> Hashable:
        """Owner = first virtual node clockwise from the key's point."""
        point = self.family(stable_digest("ring-key"), stable_digest(key))
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def replicas(self, key: Hashable, k: int) -> list[Hashable]:
        """k distinct successor owners clockwise from the key."""
        if k < 1:
            raise ValueError("k must be >= 1")
        point = self.family(stable_digest("ring-key"), stable_digest(key))
        idx = bisect.bisect_right(self._points, point)
        out: list[Hashable] = []
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(idx + step) % n]
            if owner not in out:
                out.append(owner)
                if len(out) == k:
                    break
        return out
