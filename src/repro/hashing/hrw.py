"""Highest Random Weight (rendezvous) hashing, plain and class-weighted.

MemFSS's data placement (paper §III-B) is a **two-layer** scheme:

1. *Class layer* — every node belongs to a class (``own`` or ``victim``;
   more classes may be added dynamically).  For a key ``k`` each class
   ``C`` scores ``H(C, k) - W_C`` where ``W_C`` is the class *weight*;
   the highest score wins.  Subtracting a larger weight sends *less* data
   to that class, which is how MemFSS throttles the traffic imposed on
   victim reservations.
2. *Node layer* — within the winning class, plain HRW (Thaler &
   Ravishankar 1998) places the key uniformly: each node scores
   ``H(node, k)`` and the maximum wins.  The runner-up nodes provide the
   natural replica targets (§III-E) and the lazy-migration lookup chain
   (§V-C).

Both layers inherit HRW's minimal-disruption property: adding or removing
a node (or class) only remaps the keys that the new arrangement assigns
differently — O(K/N) of them.

Two hash families are provided:

- ``mix64`` (default): a SplitMix64-style 64-bit finalizer — excellent
  uniformity, used for all experiments;
- ``tr98``: the 31-bit multiplicative scheme from the original HRW paper
  (A·((A·S + B) XOR D) + B mod 2^31), kept for fidelity and ablations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

import numpy as np

__all__ = [
    "stable_digest",
    "fnv1a",
    "hash_mix64",
    "hash_tr98",
    "hash_mix64_batch",
    "hash_tr98_batch",
    "HashFamily",
    "MIX64",
    "TR98",
    "HrwHasher",
    "WeightedClassHrw",
]

_U64 = 0xFFFFFFFFFFFFFFFF
_TR_A = 1103515245
_TR_B = 12345
_TR_MOD = 1 << 31

FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211


def fnv1a(data: bytes, state: int = FNV_OFFSET) -> int:
    """FNV-1a over *data*, continuing from *state*.

    Chainable: ``fnv1a(a + b) == fnv1a(b, fnv1a(a))``, which lets callers
    checkpoint the digest of a shared prefix (see
    :func:`repro.fs.striping.stripe_digest_array`).
    """
    h = state
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _U64
    return h


def stable_digest(value: Hashable) -> int:
    """Deterministic 64-bit digest of a key or node identifier.

    Python's built-in ``hash`` is salted per process; this FNV-1a digest is
    stable across runs, which placement decisions must be (stripe locations
    are persisted in metadata).
    """
    data = repr(value).encode() if not isinstance(value, (bytes, bytearray)) \
        else bytes(value)
    return fnv1a(data)


def hash_mix64(seed: int, digest: int) -> int:
    """SplitMix64 finalizer over (seed, digest); uniform on [0, 2^64)."""
    z = (seed ^ (digest * 0x9E3779B97F4A7C15)) & _U64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)) & _U64


def hash_tr98(seed: int, digest: int) -> int:
    """The weight function of Thaler & Ravishankar (1998), mod 2^31."""
    s = seed % _TR_MOD
    d = digest % _TR_MOD
    return (_TR_A * (((_TR_A * s + _TR_B) ^ d) % _TR_MOD) + _TR_B) % _TR_MOD


def hash_mix64_batch(seed: int, digests: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hash_mix64` (one seed, uint64 digest array)."""
    d = np.asarray(digests, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = np.uint64(seed) ^ (d * np.uint64(0x9E3779B97F4A7C15))
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def hash_tr98_batch(seed: int, digests: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hash_tr98` (one seed, uint64 digest array)."""
    d = np.asarray(digests, dtype=np.uint64)
    mod = np.uint64(_TR_MOD)
    s = np.uint64(seed % _TR_MOD)
    with np.errstate(over="ignore"):
        inner = ((np.uint64(_TR_A) * s + np.uint64(_TR_B)) % mod
                 ^ (d % mod)) % mod
        return (np.uint64(_TR_A) * inner + np.uint64(_TR_B)) % mod


class HashFamily:
    """A scalar hash, its modulus, and an explicit vectorized variant.

    *batch_fn* is ``(seed, uint64 array) -> uint64 array``, semantically
    ``[fn(seed, d) for d in digests]``.  Families constructed without one
    (custom/experimental hashes) fall back to a scalar loop — correct for
    any *fn* whose range fits uint64, just not vectorized — instead of
    raising at batch time deep inside a run.
    """

    def __init__(self, name: str, fn, modulus: int, batch_fn=None):
        self.name = name
        self.fn = fn
        self.modulus = modulus
        self.batch_fn = batch_fn

    def __call__(self, seed: int, digest: int) -> int:
        return self.fn(seed, digest)

    def batch(self, seed: int, digests: np.ndarray) -> np.ndarray:
        """Vectorized hash of many digests with one seed (uint64 array)."""
        d = np.asarray(digests, dtype=np.uint64)
        if self.batch_fn is not None:
            return self.batch_fn(seed, d)
        return np.fromiter((self.fn(seed, int(x)) for x in d),
                           dtype=np.uint64, count=len(d))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HashFamily {self.name}>"


MIX64 = HashFamily("mix64", hash_mix64, 1 << 64, hash_mix64_batch)
TR98 = HashFamily("tr98", hash_tr98, _TR_MOD, hash_tr98_batch)

_FAMILIES = {"mix64": MIX64, "tr98": TR98}


def get_family(family: "str | HashFamily") -> HashFamily:
    if isinstance(family, HashFamily):
        return family
    try:
        return _FAMILIES[family]
    except KeyError:
        raise ValueError(f"unknown hash family {family!r}; "
                         f"choose from {sorted(_FAMILIES)}") from None


class HrwHasher:
    """Plain HRW over a set of nodes: uniform placement, ranked runners-up."""

    def __init__(self, nodes: Iterable[Hashable],
                 family: str | HashFamily = MIX64):
        self.family = get_family(family)
        self._nodes: list[Hashable] = []
        self._seeds: list[int] = []
        seen = set()
        for n in nodes:
            if n in seen:
                raise ValueError(f"duplicate node {n!r}")
            seen.add(n)
            self._nodes.append(n)
            self._seeds.append(stable_digest(n))
        if not self._nodes:
            raise ValueError("HrwHasher needs at least one node")
        self._seed_arr = np.asarray(self._seeds, dtype=np.uint64)

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes)

    def scores_digest(self, digest: int) -> list[int]:
        """Per-node scores of an already-digested key (digest computed once
        by the caller and threaded through both placement layers)."""
        return [self.family(s, digest) for s in self._seeds]

    def scores(self, key: Hashable) -> list[int]:
        return self.scores_digest(stable_digest(key))

    def place_digest(self, digest: int) -> Hashable:
        sc = self.scores_digest(digest)
        return self._nodes[max(range(len(sc)), key=sc.__getitem__)]

    def place(self, key: Hashable) -> Hashable:
        """The node with the highest random weight for *key*."""
        return self.place_digest(stable_digest(key))

    def ranked_digest(self, digest: int,
                      k: int | None = None) -> list[Hashable]:
        sc = self.scores_digest(digest)
        order = sorted(range(len(sc)), key=lambda i: (-sc[i], i))
        if k is not None:
            order = order[:k]
        return [self._nodes[i] for i in order]

    def ranked(self, key: Hashable, k: int | None = None) -> list[Hashable]:
        """Nodes ordered by descending score — replica / fallback chain."""
        return self.ranked_digest(stable_digest(key), k)

    def score_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized scores, shape ``(n_nodes, n_digests)`` (uint64)."""
        d = np.asarray(digests, dtype=np.uint64)
        scores = np.empty((len(self._seeds), len(d)), dtype=np.uint64)
        for i, s in enumerate(self._seed_arr):
            scores[i] = self.family.batch(int(s), d)
        return scores

    def place_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized placement: index into :attr:`nodes` for each digest."""
        return np.argmax(self.score_batch(digests), axis=0)

    def rank_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized replica chains: node indices by descending score,
        shape ``(n_digests, n_nodes)``.  Row *i* equals the indices of
        :meth:`ranked` for digest *i* (ties break on the lower index, as in
        the scalar sort)."""
        scores = self.score_batch(digests)
        # uint64 cannot be negated; complementing reverses the order and a
        # stable ascending argsort then breaks ties on the lower node index.
        inverted = np.uint64(_U64) - scores
        return np.argsort(inverted, axis=0, kind="stable").T

    def with_nodes(self, nodes: Iterable[Hashable]) -> "HrwHasher":
        """A new hasher over a different node set (HRW is stateless)."""
        return HrwHasher(nodes, self.family)


class WeightedClassHrw:
    """The class layer: score(C, k) = H(C, k) − W_C, highest wins.

    Weights are absolute offsets in hash-value units (0 ≤ W < modulus);
    :mod:`repro.hashing.weights` converts a target data fraction into
    weight offsets.
    """

    def __init__(self, class_weights: dict[Hashable, float],
                 family: str | HashFamily = MIX64):
        if not class_weights:
            raise ValueError("need at least one class")
        self.family = get_family(family)
        for c, w in class_weights.items():
            # W == modulus is allowed: it starves the class entirely
            # (α = 0 % / 100 % endpoints of Fig. 2).
            if w < 0 or w > self.family.modulus:
                raise ValueError(
                    f"class {c!r}: weight {w} outside [0, modulus]")
        self._classes = list(class_weights)
        self._weights = dict(class_weights)
        self._seeds = {c: stable_digest(("class", c)) for c in self._classes}

    @property
    def classes(self) -> tuple[Hashable, ...]:
        return tuple(self._classes)

    def weight(self, cls: Hashable) -> float:
        return self._weights[cls]

    def scores_digest(self, digest: int) -> dict[Hashable, float]:
        """Weighted per-class scores of an already-digested key."""
        return {c: self.family(self._seeds[c], digest) - self._weights[c]
                for c in self._classes}

    def scores(self, key: Hashable) -> dict[Hashable, float]:
        return self.scores_digest(stable_digest(key))

    def choose_class(self, key: Hashable) -> Hashable:
        sc = self.scores(key)
        # Deterministic tie-break on class registration order.
        best = self._classes[0]
        best_score = sc[best]
        for c in self._classes[1:]:
            if sc[c] > best_score:
                best, best_score = c, sc[c]
        return best

    def score_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized weighted scores, shape ``(n_classes, n_digests)``.

        float64, matching the scalar path: Python's ``int - float`` also
        rounds the hash to double precision before subtracting.
        """
        d = np.asarray(digests, dtype=np.uint64)
        scores = np.empty((len(self._classes), len(d)), dtype=np.float64)
        for i, c in enumerate(self._classes):
            scores[i] = (self.family.batch(self._seeds[c], d)
                         .astype(np.float64) - self._weights[c])
        return scores

    def choose_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized class choice: index into :attr:`classes`."""
        return np.argmax(self.score_batch(digests), axis=0)

    def rank_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized class rankings by descending weighted score, shape
        ``(n_digests, n_classes)``; ties keep registration order, like the
        scalar stable sort."""
        return np.argsort(-self.score_batch(digests), axis=0,
                          kind="stable").T

    def with_class(self, cls: Hashable, weight: float) -> "WeightedClassHrw":
        """A new layer with an added (or re-weighted) class — used when a
        victim class joins or leaves at runtime (§III-D)."""
        weights = dict(self._weights)
        weights[cls] = weight
        return WeightedClassHrw(weights, self.family)

    def without_class(self, cls: Hashable) -> "WeightedClassHrw":
        weights = dict(self._weights)
        weights.pop(cls, None)
        if not weights:
            raise ValueError("cannot remove the last class")
        return WeightedClassHrw(weights, self.family)
