"""FUSE-like POSIX layer (paper §III-C).

Scientific-workflow tasks are "legacy binaries which perform POSIX I/O
operations"; MemFSS serves them through a FUSE mount on the own nodes.
:class:`MountPoint` is that mount: it exposes ``open``/``read``/``write``/
``close``/``listdir``/``mkdir``/``unlink``/``rename``/``stat`` from one own
node's perspective.  Handle methods are generators (they cost simulated
time); only own nodes may mount (victims run no tasks, §III-C).

Writes are buffered per handle and flushed stripe-by-stripe through
:class:`~repro.fs.memfss.MemFSS`; for size-only workloads ``write_size``
appends virtual bytes.
"""

from __future__ import annotations

from ..cluster.node import Node
from .memfss import FileExists, FileNotFound, FsError, MemFSS

__all__ = ["MountPoint", "FileHandle", "HandleClosed"]


class HandleClosed(FsError):
    """I/O attempted on a closed file handle."""


class FileHandle:
    """A write- or read-mode handle on one file.

    Write mode accumulates content (real bytes or a virtual size) and
    materializes the file on :meth:`close` — matching the paper's FUSE
    layer, which knows a file's stripe count only once it is complete.
    Read mode fetches the whole file on open and serves reads from the
    local buffer (MemFS-style whole-file staging).
    """

    def __init__(self, mount: "MountPoint", path: str, mode: str):
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        self.mount = mount
        self.path = path
        self.mode = mode
        self.closed = False
        self._buffer = bytearray()
        self._virtual_size = 0.0
        self._read_payload: bytes | None = None
        self._read_size = 0.0
        self._pos = 0

    def _check_open(self, mode: str) -> None:
        if self.closed:
            raise HandleClosed(f"{self.path}: handle is closed")
        if self.mode != mode:
            raise FsError(f"{self.path}: handle is {self.mode!r}-mode")

    # -- write side -----------------------------------------------------------
    def write(self, data: bytes):
        """Generator: append real bytes."""
        self._check_open("w")
        self._buffer.extend(data)
        return len(data)
        yield  # pragma: no cover - makes this a generator

    def write_size(self, nbytes: float):
        """Generator: append virtual bytes (simulation mode)."""
        self._check_open("w")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._buffer:
            raise FsError("cannot mix write() and write_size() on one handle")
        self._virtual_size += nbytes
        return nbytes
        yield  # pragma: no cover - makes this a generator

    # -- read side -------------------------------------------------------------
    def read(self, n: int | None = None):
        """Generator: read up to *n* bytes from the current position.

        Returns bytes in payload mode, or a byte count in size-only mode.
        """
        self._check_open("r")
        if self._read_payload is not None:
            end = len(self._read_payload) if n is None else self._pos + n
            data = self._read_payload[self._pos:end]
            self._pos += len(data)
            return data
        total = int(self._read_size)
        end = total if n is None else min(total, self._pos + n)
        count = max(0, end - self._pos)
        self._pos += count
        return count
        yield  # pragma: no cover - makes this a generator

    def seek(self, pos: int) -> None:
        self._check_open("r")
        if pos < 0:
            raise ValueError("seek position must be non-negative")
        self._pos = pos

    @property
    def size(self) -> float:
        if self.mode == "w":
            return float(len(self._buffer)) or self._virtual_size
        return self._read_size

    # -- lifecycle --------------------------------------------------------------
    def close(self):
        """Generator: flush (write mode) and invalidate the handle."""
        if self.closed:
            return None
        self.closed = True
        if self.mode == "w":
            if self._buffer:
                meta = yield from self.mount.fs.write_file(
                    self.mount.node, self.path, payload=bytes(self._buffer))
            else:
                meta = yield from self.mount.fs.write_file(
                    self.mount.node, self.path, nbytes=self._virtual_size)
            self._buffer = bytearray()
            return meta
        return None


class MountPoint:
    """MemFSS as seen from one own node."""

    def __init__(self, fs: MemFSS, node: Node):
        fs.client(node)  # validates this is an own node
        self.fs = fs
        self.node = node

    # -- open/close -----------------------------------------------------------
    def open(self, path: str, mode: str = "r"):
        """Generator: open a file for reading or (over)writing."""
        handle = FileHandle(self, path, mode)
        if mode == "r":
            size, payload = yield from self.fs.read_file(self.node, path)
            handle._read_size = size
            handle._read_payload = payload
        else:
            exists = yield from self.fs.exists(self.node, path)
            if exists:
                raise FileExists(path)
        return handle

    # -- convenience whole-file operations --------------------------------------
    def write_file(self, path: str, nbytes: float | None = None,
                   payload: bytes | None = None, batch: int = 1):
        """Generator: create a file in one call (*batch* = bundled count)."""
        return (yield from self.fs.write_file(self.node, path, nbytes=nbytes,
                                              payload=payload, batch=batch))

    def read_file(self, path: str, batch: int = 1):
        """Generator: ``(size, payload_or_None)``."""
        return (yield from self.fs.read_file(self.node, path, batch=batch))

    # -- namespace ops ------------------------------------------------------------
    def mkdir(self, path: str):
        return (yield from self.fs.mkdir(self.node, path))

    def listdir(self, path: str):
        return (yield from self.fs.listdir(self.node, path))

    def unlink(self, path: str):
        return (yield from self.fs.unlink(self.node, path))

    def rename(self, old: str, new: str):
        return (yield from self.fs.rename(self.node, old, new))

    def stat(self, path: str):
        return (yield from self.fs.stat(self.node, path))

    def exists(self, path: str):
        return (yield from self.fs.exists(self.node, path))
