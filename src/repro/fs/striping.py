"""File striping (paper §III-C).

The FUSE layer "is also responsible for striping the files into smaller
pieces of data such that we achieve load balance within nodes in the same
class".  A file of ``size`` bytes becomes ``ceil(size / stripe_size)``
stripes; the HRW protocol is applied per stripe.  Stripe keys derive from
the file's *inode*, not its path, so renames never move data.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..hashing.hrw import fnv1a
from ..units import MB

__all__ = ["DEFAULT_STRIPE_SIZE", "StripeSpan", "stripe_count",
           "stripe_spans", "stripe_key", "stripe_digest_array",
           "split_payload", "join_payload"]

DEFAULT_STRIPE_SIZE = 8 * MB


@dataclass(frozen=True)
class StripeSpan:
    """One stripe's index and byte range within its file."""

    index: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


def stripe_count(size: float, stripe_size: float) -> int:
    """Number of stripes for a *size*-byte file (0-byte files have none)."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if stripe_size <= 0:
        raise ValueError("stripe_size must be positive")
    if size == 0:
        return 0
    return int(-(-size // stripe_size))  # ceil for floats too


def stripe_spans(size: int, stripe_size: int) -> list[StripeSpan]:
    """Byte ranges of every stripe of an integer-sized file."""
    n = stripe_count(size, stripe_size)
    spans = []
    for i in range(n):
        off = i * stripe_size
        spans.append(StripeSpan(i, off, min(stripe_size, size - off)))
    return spans


def stripe_key(inode: int, index: int) -> tuple[str, int, int]:
    """The store key of one stripe."""
    if index < 0:
        raise ValueError("stripe index must be non-negative")
    return ("stripe", inode, index)


@lru_cache(maxsize=512)
def stripe_digest_array(inode: int, n_stripes: int) -> np.ndarray:
    """``stable_digest(stripe_key(inode, i))`` for ``i < n_stripes``, as a
    read-only uint64 array.

    All of a file's stripe keys share the repr prefix ``('stripe', inode,``,
    so the FNV-1a state after the prefix is computed once and only each
    index's suffix is hashed — and the whole array is memoized per
    ``(inode, n_stripes)``, since every read of a file re-resolves the same
    keys.  The result is bitwise-equal to per-key :func:`stable_digest`.
    """
    if n_stripes < 0:
        raise ValueError("n_stripes must be non-negative")
    prefix_state = fnv1a(f"('stripe', {inode!r}, ".encode())
    out = np.fromiter(
        (fnv1a(f"{i})".encode(), prefix_state) for i in range(n_stripes)),
        dtype=np.uint64, count=n_stripes)
    out.flags.writeable = False
    return out


def split_payload(payload: bytes, stripe_size: int) -> list[bytes]:
    """Split real bytes into stripe payloads (functional mode)."""
    if stripe_size <= 0:
        raise ValueError("stripe_size must be positive")
    return [payload[s.offset:s.end]
            for s in stripe_spans(len(payload), stripe_size)]


def join_payload(pieces: list[bytes]) -> bytes:
    """Reassemble stripe payloads into the original file bytes."""
    return b"".join(pieces)
