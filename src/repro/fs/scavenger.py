"""Victim-class lifecycle: claiming leases, eviction, lazy migration, repair.

This module implements the dynamic side of §III: MemFSS "extends its
storage space by scavenging for memory in victim cluster reservations".
The :class:`ScavengingManager`

- claims :class:`~repro.cluster.reservation.ScavengeLease`\\ s from the
  reservation system's secondary queue,
- spins up a containerized store server per victim node (§III-F),
- registers the victim class in the placement policy with the weight that
  realizes the requested own-data fraction α (§III-B),
- watches every lease and, on revocation (tenant memory pressure, §III-A),
  **evacuates** the node: stripes it holds are copied to the next node in
  their HRW rank chain, each file's recorded membership is updated, and the
  store is shut down.  Reads that race with an eviction still succeed
  because the read path already walks the rank chain (lazy movement,
  §V-C).

Evacuations are serialized through a FIFO lock: two concurrent
revocations that planned migrations independently could copy stripes onto
each other's dying node, or migrate the same stripe twice.  Each
revocation still leaves the placement policy *immediately* (new writes
stop landing on any dying node at revocation time); only the data drain
queues.

The :class:`RepairDaemon` closes the remaining gap — crashes, where the
data is simply gone: it periodically sweeps the registry, re-replicates
under-replicated stripes from surviving replicas (or reconstructs them
from parity), and rewrites stale membership snapshots.
"""

from __future__ import annotations

from ..cluster.container import Container, ResourceCaps
from ..cluster.node import Node
from ..cluster.reservation import ReservationSystem, ScavengeLease
from ..faults.stats import fault_stats
from ..sim import Environment, Interrupt
from ..store import (NO_RETRY, AuthPolicy, StoreCostModel, StoreError,
                     StoreErrorCode, StoreServer)
from .capacity import pressure_stats, select_targets
from .erasure import group_layout, parity_key, xor_parity
from .memfss import FileNotFound, MemFSS
from .metadata import FileMeta, file_meta_key
from .placement import PlacementMap
from .striping import stripe_spans

__all__ = ["ScavengingManager", "RepairDaemon"]


class _FifoLock:
    """Event-based FIFO mutex for simulation processes."""

    def __init__(self, env: Environment):
        self.env = env
        self.locked = False
        self._waiters: list = []

    def acquire(self):
        """Generator: returns holding the lock, in arrival order."""
        if self.locked:
            gate = self.env.event()
            self._waiters.append(gate)
            yield gate
        else:
            self.locked = True

    def release(self) -> None:
        if self._waiters:
            # Hand the lock to the next waiter; it stays locked.
            self._waiters.pop(0).succeed()
        else:
            self.locked = False


class ScavengingManager:
    """Manages victim classes of one MemFSS deployment."""

    def __init__(self, env: Environment, fs: MemFSS,
                 reservations: ReservationSystem, *,
                 auth: AuthPolicy | None = None,
                 costs: StoreCostModel | None = None,
                 caps: ResourceCaps | None = None):
        self.env = env
        self.fs = fs
        self.reservations = reservations
        self.auth = auth
        # Per-instance default: a shared StoreCostModel instance would
        # alias mutable tuning across every manager in the process.
        self.costs = costs if costs is not None else StoreCostModel()
        self.caps = caps
        self.leases: dict[str, ScavengeLease] = {}
        self.evictions = 0
        self.migrated_bytes = 0.0
        #: ``(key, source, target)`` of every migrated stripe, in order.
        self.moved_keys: list[tuple] = []
        self._evacuating: set[str] = set()
        self._evac_lock = _FifoLock(env)

    # -- acquiring victims ----------------------------------------------------------
    def scavenge(self, nodes: list[Node], memory_per_node: float,
                 weight: float, class_name: str = "victim",
                 watch: bool = True) -> list[StoreServer]:
        """Claim leases on *nodes* and add them as a placement class.

        *weight* is the HRW class weight (see
        :func:`repro.hashing.weights.own_victim_weights`).  With *watch*
        true a watcher process evacuates each node when its lease is
        revoked.
        """
        if not nodes:
            raise ValueError("need at least one victim node")
        servers = []
        for node in nodes:
            lease = self.reservations.lease(node, memory_per_node,
                                            holder="memfss")
            caps = self.caps or ResourceCaps(memory=memory_per_node)
            container = Container(node, f"memfss@{node.name}", caps)
            server = StoreServer(self.env, node, self.fs.fabric,
                                 capacity=memory_per_node,
                                 name=f"scv@{node.name}",
                                 auth=self.auth, container=container,
                                 costs=self.costs)
            self.fs.servers[node.name] = server
            self.leases[node.name] = lease
            servers.append(server)
            if watch:
                self.env.process(self._watch(lease, node),
                                 name=f"scavenge-watch@{node.name}")
        self.fs.policy = PlacementMap.intern(self.fs.policy.with_class(
            class_name, weight, tuple(n.name for n in nodes)))
        return servers

    def scavenge_node(self, node: Node, memory: float,
                      class_name: str = "victim",
                      weight: float | None = None,
                      watch: bool = True,
                      drain_on_notice: bool = False) -> StoreServer:
        """Claim a lease on a *single* node and grow *class_name* by it.

        The market admission path: leases clear one at a time, so the
        class accretes node by node instead of being rebuilt wholesale.
        *weight* defaults to the class's current weight (required when the
        class does not exist yet); reweighting after growth is the
        controller's job (:meth:`rebalance`).
        """
        if weight is None:
            spec = self.fs.policy.classes.get(class_name)
            if spec is None:
                raise ValueError(f"class {class_name!r} not in the policy "
                                 f"yet; pass an explicit weight")
            weight = spec.weight
        lease = self.reservations.lease(node, memory, holder="memfss")
        caps = self.caps or ResourceCaps(memory=memory)
        container = Container(node, f"memfss@{node.name}", caps)
        server = StoreServer(self.env, node, self.fs.fabric,
                             capacity=memory, name=f"scv@{node.name}",
                             auth=self.auth, container=container,
                             costs=self.costs)
        self.fs.servers[node.name] = server
        self.leases[node.name] = lease
        if watch:
            watcher = (self._watch_notice if drain_on_notice
                       else self._watch)
            self.env.process(watcher(lease, node),
                             name=f"scavenge-watch@{node.name}")
        current = self.fs.policy.classes.get(class_name)
        members = (current.nodes if current is not None else ()) \
            + (node.name,)
        self.fs.policy = PlacementMap.intern(self.fs.policy.with_class(
            class_name, weight, members))
        return server

    def _watch(self, lease: ScavengeLease, node: Node):
        yield lease.revoked
        yield from self.evacuate(node)

    def _watch_notice(self, lease: ScavengeLease, node: Node):
        """Market watcher: start draining at the revocation *notice*, so
        the drain window is actually used (waiting for the revocation
        itself would waste the notice period)."""
        yield self.env.any_of([lease.notified, lease.revoked])
        yield from self.evacuate(node)

    # -- eviction --------------------------------------------------------------------
    def evacuate(self, node: Node):
        """Generator: move this node's stripes away, then leave the node.

        New files immediately stop using the node (policy update first);
        existing stripes are copied to the next live node in their
        *recorded* rank chain and each file's membership snapshot is
        rewritten so later reads go straight to the right place.
        Concurrent evacuations queue on a FIFO lock, but all of them
        leave the policy before the first one starts copying.
        """
        name = node.name
        server = self.fs.servers.get(name)
        if server is None or name in self._evacuating:
            return 0.0
        self._evacuating.add(name)
        self.evictions += 1
        fault_stats.evacuations += 1
        # 1. Stop placing new data on the node (before queueing).
        if name in self.fs.policy.all_nodes:
            self.fs.policy = PlacementMap.intern(
                self.fs.policy.without_node(name))
        yield from self._evac_lock.acquire()
        try:
            moved = yield from self._drain(node, server)
        finally:
            self._evac_lock.release()
            self._evacuating.discard(name)
        fault_stats.record_recovery(name, self.env.now)
        return moved

    def _live_policy(self, policy: PlacementMap) -> PlacementMap:
        """*policy* restricted to nodes that can receive migrated data:
        up, not mid-evacuation."""
        out = policy
        for n in policy.all_nodes:
            if n in self._evacuating or n not in self.fs.servers:
                out = out.without_node(n)
        return PlacementMap.intern(out)

    def _drain(self, node: Node, server: StoreServer):
        """Generator: copy every stripe *node* holds to live replacements."""
        name = node.name
        agent = self.fs.own_nodes[0]
        client = self.fs.client(agent)
        moved = 0.0
        # 2. Walk the registry and relocate affected stripes.
        paths = yield from self.fs.list_all_files(agent)
        for path in paths:
            try:
                meta = yield from self.fs.stat(agent, path)
            except Exception:
                continue
            if not any(name in members
                       for members in meta.class_members.values()):
                continue
            # Both policies are interned, so every file written under the
            # same snapshot shares one vectorized plan for the old and the
            # post-eviction placement instead of re-ranking per stripe.
            old_policy = PlacementMap.from_meta(meta,
                                                   self.fs.policy.family)
            new_policy = self._live_policy(old_policy)
            old_plan = old_policy.plan_file(meta.inode, meta.n_stripes,
                                            erasure=meta.erasure)
            new_plan = new_policy.plan_file(meta.inode, meta.n_stripes,
                                            erasure=meta.erasure)
            for idx in range(len(old_plan.keys)):
                key = old_plan.keys[idx]
                chain = old_plan.chain(idx, k=max(meta.replication, 1))
                if name not in chain:
                    continue
                try:
                    nbytes, piece = yield from client.get(server, key,
                                                          retry=NO_RETRY)
                except StoreError as exc:
                    # Not here, or the server died mid-drain (the repair
                    # daemon re-replicates what a dead store took down).
                    if exc.code.fallthrough:
                        continue
                    raise
                target = new_plan.primary(idx)
                if self.fs.capacity_guard and \
                        not self.fs.ledger.admits(target, nbytes):
                    # The post-eviction primary is full: spill down the
                    # new chain (§III-E).  If no live store can take the
                    # copy, leave it behind — the repair daemon retries
                    # once pressure eases — rather than failing the drain.
                    picked, distance, _short = select_targets(
                        new_plan.chain(idx), nbytes, 1,
                        self.fs.ledger.usable)
                    if not picked:
                        pressure_stats.evac_drops += 1
                        continue
                    pressure_stats.evac_spills += 1
                    pressure_stats.spill_distance += distance
                    target = picked[0]
                try:
                    yield from client.put(
                        self.fs.servers[target], key,
                        nbytes=None if piece is not None else nbytes,
                        payload=piece)
                except StoreError as exc:
                    if exc.code is not StoreErrorCode.FULL:
                        raise
                    pressure_stats.evac_drops += 1
                    continue
                self.moved_keys.append((key, name, target))
                moved += nbytes
            # 3. Rewrite the membership snapshot: drop this node and any
            # node that died since the file was written.
            meta.class_members = {
                c: [m for m in members
                    if m != name and m in self.fs.servers]
                for c, members in meta.class_members.items()}
            yield from client.put(
                self.fs._meta_server(file_meta_key(path)),
                file_meta_key(path), payload=meta.to_bytes())
        # 4. Free the node's memory and deregister the server.
        server.shutdown()
        self.fs.servers.pop(name, None)
        self.leases.pop(name, None)
        self.migrated_bytes += moved
        return moved

    # -- live retuning ----------------------------------------------------------------
    def rebalance(self, new_map: PlacementMap,
                  budget_bytes: float | None = None):
        """Generator: move the system onto *new_map*, migrating **only**
        the stripes whose placement changed between the old and new
        :class:`~repro.fs.placement.StripePlan` (the market controller's
        epoch step).

        Per file, three phases keep concurrent reads safe:

        1. copy every stripe whose replica chain gained a node to its new
           location (spilling down the new chain under the capacity
           guard),
        2. rewrite the file's membership snapshot to the new placement,
        3. only then delete the copies stranded on nodes the chain left,
           and only for stripes whose new copies **all landed** — a
           dropped copy (capacity pressure) keeps the old holder, so a
           read always finds data wherever its metadata (old or new)
           points it.

        *budget_bytes* is the per-call migration allowance (the repair
        bandwidth the epoch may spend): files beyond the budget keep
        their old placement and are reported as deferred, to be picked up
        by the next epoch.  New writes follow *new_map* immediately —
        the policy flips before the drain queues on the evacuation lock.
        """
        target_map = PlacementMap.intern(new_map)
        self.fs.policy = target_map
        yield from self._evac_lock.acquire()
        try:
            summary = yield from self._rebalance_locked(target_map,
                                                        budget_bytes)
        finally:
            self._evac_lock.release()
        return summary

    def _rebalance_locked(self, target_map: PlacementMap,
                          budget_bytes: float | None):
        agent = self.fs.own_nodes[0]
        client = self.fs.client(agent)
        live_new = self._live_policy(target_map)
        new_weights, new_members = live_new.snapshot()
        moved_bytes = 0.0
        moved_stripes = 0
        freed_bytes = 0.0
        deferred_files = 0
        files_touched = 0
        unsourced = 0
        paths = yield from self.fs.list_all_files(agent)
        for path in paths:
            try:
                meta = yield from self.fs.stat(agent, path)
            except Exception:
                continue
            old_policy = PlacementMap.from_meta(meta,
                                                self.fs.policy.family)
            if old_policy.snapshot() == live_new.snapshot():
                continue
            if budget_bytes is not None and moved_bytes >= budget_bytes:
                deferred_files += 1
                continue
            old_plan = old_policy.plan_file(meta.inode, meta.n_stripes,
                                            erasure=meta.erasure)
            new_plan = live_new.plan_file(meta.inode, meta.n_stripes,
                                          erasure=meta.erasure)
            want = max(meta.replication, 1)
            stale: list[tuple[str, object]] = []
            for idx in range(len(old_plan.keys)):
                key = old_plan.keys[idx]
                old_chain = old_plan.chain(idx, k=want)
                new_chain = new_plan.chain(idx, k=want)
                if set(old_chain) == set(new_chain):
                    continue
                additions = [t for t in new_chain if t not in old_chain]
                departing = [t for t in old_chain if t not in new_chain]
                if not additions:
                    # The new chain shrank into a subset of the old: the
                    # surviving holders already sit on the new placement,
                    # so the extras are redundant (never the last copy).
                    if new_chain:
                        stale.extend((t, key) for t in departing)
                    continue
                # Source: any live holder in the *recorded* rank chain
                # (full walk — finds copies left by earlier spills too).
                nbytes = piece = None
                source = None
                for t in old_plan.chain(idx):
                    server = self.fs.servers.get(t)
                    if server is None:
                        continue
                    try:
                        nbytes, piece = yield from client.get(
                            server, key, retry=NO_RETRY)
                        source = t
                        break
                    except StoreError as exc:
                        if not exc.code.fallthrough:
                            raise
                if source is None:
                    # Nothing to copy from (crash ate every replica); the
                    # repair daemon owns reconstruction, not the retune.
                    unsourced += 1
                    continue
                landed = 0
                for target in additions:
                    dest = target
                    if self.fs.capacity_guard and \
                            not self.fs.ledger.admits(dest, nbytes):
                        picked, distance, _short = select_targets(
                            new_plan.chain(idx), nbytes, 1,
                            self.fs.ledger.usable)
                        if not picked:
                            pressure_stats.evac_drops += 1
                            continue
                        pressure_stats.evac_spills += 1
                        pressure_stats.spill_distance += distance
                        dest = picked[0]
                    try:
                        yield from client.put(
                            self.fs.servers[dest], key,
                            nbytes=None if piece is not None else nbytes,
                            payload=piece)
                    except StoreError as exc:
                        if exc.code is not StoreErrorCode.FULL:
                            raise
                        pressure_stats.evac_drops += 1
                        continue
                    self.moved_keys.append((key, source, dest))
                    moved_bytes += nbytes
                    moved_stripes += 1
                    landed += 1
                # Old holders become deletable only once every required
                # copy has landed; a dropped copy (capacity guard or a
                # FULL put) keeps them alive so a read always finds the
                # data — the next epoch / repair daemon finishes the move.
                if landed == len(additions):
                    stale.extend((t, key) for t in departing)
            # Phase 2: the snapshot flips to the new placement...
            meta.class_weights = dict(new_weights)
            meta.class_members = {c: list(m)
                                  for c, m in new_members.items()}
            yield from client.put(
                self.fs._meta_server(file_meta_key(path)),
                file_meta_key(path), payload=meta.to_bytes())
            # Phase 3: ...and only now do the stranded copies go away.
            for holder, key in stale:
                server = self.fs.servers.get(holder)
                if server is None:
                    continue
                try:
                    released = yield from client.delete(server, key,
                                                        retry=NO_RETRY)
                except StoreError as exc:
                    if not exc.code.fallthrough:
                        raise
                    continue
                freed_bytes += released
            files_touched += 1
        self.migrated_bytes += moved_bytes
        return {"moved_bytes": moved_bytes,
                "moved_stripes": moved_stripes,
                "freed_bytes": freed_bytes,
                "files_touched": files_touched,
                "deferred_files": deferred_files,
                "unsourced": unsourced}

    def withdraw(self, node: Node):
        """Generator: voluntarily leave a node (same path as eviction)."""
        lease = self.leases.get(node.name)
        if lease is not None and lease.active:
            lease.revoke("withdrawn")
            # The watcher (if any) will also wake; evacuation is idempotent
            # because the server disappears from fs.servers.
        return (yield from self.evacuate(node))

    # -- crashes ---------------------------------------------------------------------
    def handle_crash(self, name: str) -> None:
        """A store node died without warning.

        Unlike a revocation there is nothing to drain — the bytes are
        gone.  Drop the node from the policy and the server map so reads
        fall through its rank chain, and leave re-replication to the
        :class:`RepairDaemon`.
        """
        self.fs.servers.pop(name, None)
        if name in self.fs.policy.all_nodes:
            self.fs.policy = PlacementMap.intern(
                self.fs.policy.without_node(name))
        lease = self.leases.pop(name, None)
        if lease is not None and lease.active:
            # Wakes the watcher; its evacuate() no-ops (no server left).
            lease.revoke("crashed")


class RepairDaemon:
    """Background re-replication restoring stripe redundancy.

    Each sweep walks the file registry and checks every stripe (and
    parity block) against its replica chain under the *live* membership.
    A copy missing from the chain is refilled from any surviving holder,
    falling back to parity reconstruction for erasure-coded data; files
    whose recorded membership references dead nodes get their snapshot
    rewritten so later reads place directly onto live nodes.  Sweeps take
    the manager's evacuation lock, so repair never races a drain over the
    same metadata.
    """

    def __init__(self, env: Environment, fs: MemFSS, *,
                 manager: ScavengingManager | None = None,
                 interval: float = 0.25, agent: Node | None = None):
        self.env = env
        self.fs = fs
        self.manager = manager
        self.interval = float(interval)
        self.agent = agent if agent is not None else fs.own_nodes[0]
        #: Unrepairable losses seen by the last sweep (second losses).
        self.deficits = 0
        self._proc = None

    # -- lifecycle -------------------------------------------------------------------
    def start(self):
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(), name="repair-daemon")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("repair daemon stopped")

    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                yield from self.sweep()
        except Interrupt:
            return

    # -- one pass --------------------------------------------------------------------
    def sweep(self):
        """Generator: one full repair pass; returns copies restored."""
        fault_stats.repair_scans += 1
        if self.manager is not None:
            yield from self.manager._evac_lock.acquire()
        try:
            repaired = yield from self._sweep_locked()
        finally:
            if self.manager is not None:
                self.manager._evac_lock.release()
        if self.deficits == 0:
            # Full redundancy everywhere: whatever faults were open are
            # recovered as of now.
            fault_stats.resolve_open(self.env.now)
        return repaired

    def _sweep_locked(self):
        client = self.fs.client(self.agent)
        repaired = 0
        self.deficits = 0
        paths = yield from self.fs.list_all_files(self.agent)
        for path in paths:
            try:
                meta = yield from self.fs.stat(self.agent, path)
            except FileNotFound:
                continue
            repaired += yield from self._repair_file(client, meta, path)
        return repaired

    def _repair_file(self, client, meta: FileMeta, path: str):
        old_policy = PlacementMap.from_meta(meta, self.fs.policy.family)
        dead = [n for n in old_policy.all_nodes
                if n not in self.fs.servers]
        live_policy = old_policy
        for n in dead:
            live_policy = live_policy.without_node(n)
        live_policy = PlacementMap.intern(live_policy)
        plan = live_policy.plan_file(meta.inode, meta.n_stripes,
                                     erasure=meta.erasure)
        want = max(meta.replication, 1)
        # Parity blocks cannot be copied from a replica when lost, but
        # they can be recomputed from their group's surviving data.
        parity_info: dict[int, tuple[int, int, int]] = {}
        if meta.erasure is not None:
            k, m = meta.erasure
            spans = stripe_spans(meta.size, meta.stripe_size)
            for gi, (first, count) in enumerate(
                    group_layout(meta.n_stripes, k)):
                plen = max((spans[i].length
                            for i in range(first, first + count)),
                           default=0)
                for j in range(m):
                    pidx = plan.index_of(parity_key(meta.inode, gi, j))
                    parity_info[pidx] = (first, count, plen)
        fixed = 0
        for idx in range(len(plan.keys)):
            key = plan.keys[idx]
            targets = plan.chain(idx, k=want)
            missing = []
            for t in targets:
                server = self.fs.servers.get(t)
                if server is None:
                    continue
                try:
                    has = yield from client.exists(server, key,
                                                   retry=NO_RETRY)
                except StoreError as exc:
                    if not exc.code.fallthrough:
                        raise
                    has = False
                if not has:
                    missing.append(t)
            if not missing:
                continue
            # Source: any live holder anywhere in the full rank chain.
            nbytes = piece = None
            found = False
            for t in plan.chain(idx):
                server = self.fs.servers.get(t)
                if server is None or t in missing:
                    continue
                try:
                    nbytes, piece = yield from client.get(server, key,
                                                          retry=NO_RETRY)
                    found = True
                    break
                except StoreError as exc:
                    if not exc.code.fallthrough:
                        raise
            if not found and meta.erasure is not None \
                    and idx < meta.n_stripes:
                try:
                    nbytes, piece = yield from self.fs._reconstruct_stripe(
                        client, plan, meta, idx)
                    found = True
                except FileNotFound:
                    found = False
            if not found and idx in parity_info:
                first, count, plen = parity_info[idx]
                group: list = []
                for sib in range(first, first + count):
                    try:
                        _nb, p = yield from self.fs._fetch_any(client, plan,
                                                               sib)
                    except FileNotFound:
                        group = None
                        break
                    group.append(p)
                if group is not None:
                    piece = (xor_parity(group)
                             if all(p is not None for p in group) else None)
                    nbytes = float(plen)
                    found = True
            if not found:
                self.deficits += 1
                continue
            for t in missing:
                if self.fs.capacity_guard and \
                        not self.fs.ledger.admits(t, nbytes):
                    # The rank that should hold the copy is full; skip it
                    # this sweep and count the deficit so the fault stays
                    # open — a later sweep retries once pressure eases.
                    pressure_stats.repair_skips += 1
                    self.deficits += 1
                    continue
                try:
                    yield from client.put(
                        self.fs.servers[t], key,
                        nbytes=None if piece is not None else nbytes,
                        payload=piece)
                except StoreError as exc:
                    if exc.code is not StoreErrorCode.FULL:
                        raise
                    pressure_stats.repair_skips += 1
                    self.deficits += 1
                    continue
                fixed += 1
                fault_stats.stripes_repaired += 1
                fault_stats.repaired_bytes += float(nbytes)
        if dead:
            meta.class_members = {
                c: [m for m in members if m in self.fs.servers]
                for c, members in meta.class_members.items()}
            yield from client.put(
                self.fs._meta_server(file_meta_key(path)),
                file_meta_key(path), payload=meta.to_bytes())
        return fixed
