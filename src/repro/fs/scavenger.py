"""Victim-class lifecycle: claiming leases, eviction, lazy migration.

This module implements the dynamic side of §III: MemFSS "extends its
storage space by scavenging for memory in victim cluster reservations".
The :class:`ScavengingManager`

- claims :class:`~repro.cluster.reservation.ScavengeLease`\\ s from the
  reservation system's secondary queue,
- spins up a containerized store server per victim node (§III-F),
- registers the victim class in the placement policy with the weight that
  realizes the requested own-data fraction α (§III-B),
- watches every lease and, on revocation (tenant memory pressure, §III-A),
  **evacuates** the node: stripes it holds are copied to the next node in
  their HRW rank chain, each file's recorded membership is updated, and the
  store is shut down.  Reads that race with an eviction still succeed
  because the read path already walks the rank chain (lazy movement,
  §V-C).
"""

from __future__ import annotations

from ..cluster.container import Container, ResourceCaps
from ..cluster.node import Node
from ..cluster.reservation import ReservationSystem, ScavengeLease
from ..sim import Environment
from ..store import AuthPolicy, StoreCostModel, StoreError, StoreServer
from .memfss import MemFSS
from .metadata import FileMeta, file_meta_key
from .placement import PlacementPolicy
from .striping import stripe_key

__all__ = ["ScavengingManager"]


class ScavengingManager:
    """Manages victim classes of one MemFSS deployment."""

    def __init__(self, env: Environment, fs: MemFSS,
                 reservations: ReservationSystem, *,
                 auth: AuthPolicy | None = None,
                 costs: StoreCostModel = StoreCostModel(),
                 caps: ResourceCaps | None = None):
        self.env = env
        self.fs = fs
        self.reservations = reservations
        self.auth = auth
        self.costs = costs
        self.caps = caps
        self.leases: dict[str, ScavengeLease] = {}
        self.evictions = 0
        self.migrated_bytes = 0.0
        self._evacuating: set[str] = set()

    # -- acquiring victims ----------------------------------------------------------
    def scavenge(self, nodes: list[Node], memory_per_node: float,
                 weight: float, class_name: str = "victim",
                 watch: bool = True) -> list[StoreServer]:
        """Claim leases on *nodes* and add them as a placement class.

        *weight* is the HRW class weight (see
        :func:`repro.hashing.weights.own_victim_weights`).  With *watch*
        true a watcher process evacuates each node when its lease is
        revoked.
        """
        if not nodes:
            raise ValueError("need at least one victim node")
        servers = []
        for node in nodes:
            lease = self.reservations.lease(node, memory_per_node,
                                            holder="memfss")
            caps = self.caps or ResourceCaps(memory=memory_per_node)
            container = Container(node, f"memfss@{node.name}", caps)
            server = StoreServer(self.env, node, self.fs.fabric,
                                 capacity=memory_per_node,
                                 name=f"scv@{node.name}",
                                 auth=self.auth, container=container,
                                 costs=self.costs)
            self.fs.servers[node.name] = server
            self.leases[node.name] = lease
            servers.append(server)
            if watch:
                self.env.process(self._watch(lease, node),
                                 name=f"scavenge-watch@{node.name}")
        self.fs.policy = PlacementPolicy.intern(self.fs.policy.with_class(
            class_name, weight, tuple(n.name for n in nodes)))
        return servers

    def _watch(self, lease: ScavengeLease, node: Node):
        yield lease.revoked
        yield from self.evacuate(node)

    # -- eviction --------------------------------------------------------------------
    def evacuate(self, node: Node):
        """Generator: move this node's stripes away, then leave the node.

        New files immediately stop using the node (policy update first);
        existing stripes are copied to the next live node in their
        *recorded* rank chain and each file's membership snapshot is
        rewritten so later reads go straight to the right place.
        """
        name = node.name
        server = self.fs.servers.get(name)
        if server is None or name in self._evacuating:
            return 0.0
        self._evacuating.add(name)
        self.evictions += 1
        # 1. Stop placing new data on the node.
        self.fs.policy = PlacementPolicy.intern(
            self.fs.policy.without_node(name))
        agent = self.fs.own_nodes[0]
        client = self.fs.client(agent)
        moved = 0.0
        # 2. Walk the registry and relocate affected stripes.
        paths = yield from self.fs.list_all_files(agent)
        for path in paths:
            try:
                meta = yield from self.fs.stat(agent, path)
            except Exception:
                continue
            if not any(name in members
                       for members in meta.class_members.values()):
                continue
            # Both policies are interned, so every file written under the
            # same snapshot shares one vectorized plan for the old and the
            # post-eviction placement instead of re-ranking per stripe.
            old_policy = PlacementPolicy.from_meta(meta,
                                                   self.fs.policy.family)
            new_policy = PlacementPolicy.intern(
                old_policy.without_node(name))
            old_plan = old_policy.plan_file(meta.inode, meta.n_stripes,
                                            erasure=meta.erasure)
            new_plan = new_policy.plan_file(meta.inode, meta.n_stripes,
                                            erasure=meta.erasure)
            for idx in range(meta.n_stripes):
                key = stripe_key(meta.inode, idx)
                chain = old_plan.chain(idx, k=max(meta.replication, 1))
                if name not in chain:
                    continue
                try:
                    nbytes, piece = yield from client.get(server, key)
                except StoreError as exc:
                    if exc.code == "missing":
                        continue
                    raise
                target = new_plan.primary(idx)
                yield from client.put(
                    self.fs.servers[target], key,
                    nbytes=None if piece is not None else nbytes,
                    payload=piece)
                moved += nbytes
            # 3. Rewrite the membership snapshot without the node.
            meta.class_members = {
                c: [m for m in members if m != name]
                for c, members in meta.class_members.items()}
            yield from client.put(
                self.fs._meta_server(file_meta_key(path)),
                file_meta_key(path), payload=meta.to_bytes())
        # 4. Free the node's memory and deregister the server.
        server.shutdown()
        self.fs.servers.pop(name, None)
        self.leases.pop(name, None)
        self.migrated_bytes += moved
        self._evacuating.discard(name)
        return moved

    def withdraw(self, node: Node):
        """Generator: voluntarily leave a node (same path as eviction)."""
        lease = self.leases.get(node.name)
        if lease is not None and lease.active:
            lease.revoke("withdrawn")
            # The watcher (if any) will also wake; evacuation is idempotent
            # because the server disappears from fs.servers.
        return (yield from self.evacuate(node))
