"""Erasure coding for stripe redundancy (paper §III-E).

The paper notes that full replication "could be a prohibitive strategy"
in-memory and names erasure coding as the lower-redundancy alternative
they were implementing as future work.  We provide the simplest honest
instance: per-group XOR parity (k data stripes + m parity stripes; with
XOR, m = 1 tolerates one loss per group; m > 1 stores additional parity
copies, tolerating one loss with m-way parity durability).

Functional mode XORs real stripe bytes; simulation mode only accounts
parity sizes.  A Reed-Solomon code would tolerate m losses per group —
the group layout and key scheme below are agnostic to that upgrade.
"""

from __future__ import annotations

__all__ = ["group_layout", "parity_key", "xor_parity", "reconstruct_size",
           "storage_overhead"]


def group_layout(n_stripes: int, k: int) -> list[tuple[int, int]]:
    """Parity groups over *n_stripes*: list of (first_index, count)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_stripes < 0:
        raise ValueError("n_stripes must be non-negative")
    return [(first, min(k, n_stripes - first))
            for first in range(0, n_stripes, k)]


def parity_key(inode: int, group: int, j: int) -> tuple[str, int, int, int]:
    """The store key of parity stripe *j* of *group*."""
    if group < 0 or j < 0:
        raise ValueError("group and j must be non-negative")
    return ("parity", inode, group, j)


def xor_parity(pieces: list[bytes]) -> bytes:
    """XOR of the pieces, zero-padded to the longest one."""
    if not pieces:
        return b""
    length = max(len(p) for p in pieces)
    acc = bytearray(length)
    for p in pieces:
        for i, b in enumerate(p):
            acc[i] ^= b
    return bytes(acc)


def reconstruct_size(length: float) -> tuple[float, None]:
    """Size-only reconstruction result for simulation mode."""
    return float(length), None


def storage_overhead(k: int, m: int) -> float:
    """Extra storage fraction of a (k, m) code: m/k (vs. r-1 for replicas)."""
    if k < 1 or m < 0:
        raise ValueError("need k >= 1, m >= 0")
    return m / k
