"""File-system metadata records (paper §III-D).

Metadata holds "file system organization information: directory structure,
file sizes, number of file stripes and the HRW weights we used to decide
the file stripe placement".  Recording the weights per file is what allows
victim classes to be added or removed later without invalidating existing
placements: reads recompute each old file's placement with the weights in
force when it was written.

Records serialize to JSON bytes; they are stored as ordinary values in the
*own* nodes' stores, placed by modulo hashing (see
:class:`~repro.fs.memfss.MemFSS`).
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, field

__all__ = ["FileMeta", "normalize_path", "parent_dir", "file_meta_key",
           "dir_key", "PathError"]


class PathError(ValueError):
    """Malformed or illegal file-system path."""


def normalize_path(path: str) -> str:
    """Canonical absolute path ('/a/b'); raises :class:`PathError` if bad."""
    if not path or not path.startswith("/"):
        raise PathError(f"path must be absolute: {path!r}")
    # POSIX semantics: "/.." is "/", so normpath can never escape the root.
    return posixpath.normpath(path)


def parent_dir(path: str) -> str:
    return posixpath.dirname(normalize_path(path)) or "/"


def file_meta_key(path: str) -> tuple[str, str]:
    return ("filemeta", normalize_path(path))


def dir_key(path: str) -> tuple[str, str]:
    return ("dirents", normalize_path(path))


@dataclass
class FileMeta:
    """Everything needed to find a file's stripes again."""

    path: str
    inode: int
    size: int
    stripe_size: int
    n_stripes: int
    class_weights: dict[str, float] = field(default_factory=dict)
    class_members: dict[str, list[str]] = field(default_factory=dict)
    replication: int = 1
    erasure: tuple[int, int] | None = None   # (data, parity) group, if coded

    def __post_init__(self):
        self.path = normalize_path(self.path)
        if self.size < 0:
            raise ValueError("size must be non-negative")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    # -- serialization ------------------------------------------------------------
    def to_bytes(self) -> bytes:
        doc = {
            "path": self.path,
            "inode": self.inode,
            "size": self.size,
            "stripe_size": self.stripe_size,
            "n_stripes": self.n_stripes,
            "class_weights": self.class_weights,
            "class_members": self.class_members,
            "replication": self.replication,
            "erasure": list(self.erasure) if self.erasure else None,
        }
        return json.dumps(doc, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "FileMeta":
        doc = json.loads(data.decode())
        erasure = tuple(doc["erasure"]) if doc.get("erasure") else None
        return cls(
            path=doc["path"],
            inode=doc["inode"],
            size=doc["size"],
            stripe_size=doc["stripe_size"],
            n_stripes=doc["n_stripes"],
            class_weights={k: float(v)
                           for k, v in doc["class_weights"].items()},
            class_members={k: list(v)
                           for k, v in doc["class_members"].items()},
            replication=doc.get("replication", 1),
            erasure=erasure,
        )
