"""Two-layer stripe placement (paper §III-B), batch-first.

Layer 1 picks the node *class* by weighted HRW; layer 2 picks the node
within the class by plain HRW.  (This runtime object was called
``PlacementPolicy`` until the name moved to the declarative config
object in :mod:`repro.core.policy`; the old name is a deprecated
alias for one release.)  A :class:`PlacementMap` is immutable —
membership changes (a victim class joining or leaving) produce a *new*
policy — because every file's metadata records the policy under which its
stripes were placed, and reads must be able to reconstruct exactly that
placement (:meth:`PlacementMap.from_meta`).

Immutability is what makes the two amortizations here safe:

- **Policy interning.**  :meth:`PlacementMap.from_meta` returns one
  shared instance per distinct metadata snapshot (an LRU-bounded intern
  cache), so per-request reads stop rebuilding hashers.
- **Stripe plans.**  :class:`StripePlan` resolves class, primary node and
  replica/erasure chains for *all* keys of a file in one vectorized pass
  (:meth:`PlacementMap.plan_file`, cached per policy), replacing the
  per-stripe scalar loops on the write/read/unlink/migrate paths.

Planner cache behaviour is observable through :data:`planner_stats`
(surfaced as monitor probes by :mod:`repro.metrics.placement`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..hashing import HashFamily, HrwHasher, MIX64, WeightedClassHrw
from ..hashing.hrw import get_family, stable_digest
from .erasure import group_layout, parity_key
from .metadata import FileMeta
from .striping import stripe_digest_array, stripe_key

__all__ = ["ClassSpec", "PlacementMap", "StripePlan", "PlannerStats",
           "planner_stats", "clear_placement_caches"]


class PlannerStats:
    """Process-wide planner counters (policy interning + stripe plans).

    ``stripes_resolved`` counts keys whose placement was served through a
    :class:`StripePlan` — the work the scalar path would have done one key
    at a time.
    """

    __slots__ = ("policy_hits", "policy_misses", "plan_hits", "plan_misses",
                 "stripes_resolved")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.policy_hits = 0
        self.policy_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.stripes_resolved = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"<PlannerStats {parts}>"


planner_stats = PlannerStats()

#: Interned policies, keyed by (family, ordered class snapshot).
_POLICY_CACHE: "OrderedDict[tuple, PlacementMap]" = OrderedDict()
_POLICY_CACHE_SIZE = 128
#: Per-policy plan cache bound (plans hold O(n_keys × n_nodes) arrays).
_PLAN_CACHE_SIZE = 64


def clear_placement_caches() -> None:
    """Drop interned policies, cached plans, and digest arrays (tests and
    cold-path benchmarks)."""
    _POLICY_CACHE.clear()
    stripe_digest_array.cache_clear()
    planner_stats.reset()


@dataclass(frozen=True)
class ClassSpec:
    """One node class: its HRW weight and member node names."""

    weight: float
    nodes: tuple[str, ...]

    def __post_init__(self):
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("duplicate nodes in class")


class StripePlan:
    """Vectorized placement of many keys under one immutable policy.

    Construction resolves the layer-1 class and layer-2 primary node for
    every key in one batch pass; the full replica / lazy-lookup chains
    (:meth:`chain`) are materialized lazily — also vectorized, once — the
    first time any chain deeper than the primary is needed.  All results
    are identical to the scalar ``place`` / ``class_of`` / ``ranked``
    calls, key by key.
    """

    __slots__ = ("policy", "keys", "digests", "_class_order", "_win",
                 "_primary_idx", "_node_orders", "_primaries", "_index")

    def __init__(self, policy: "PlacementMap",
                 keys: Sequence[Hashable], digests: np.ndarray):
        if len(keys) != len(digests):
            raise ValueError("one digest per key required")
        self.policy = policy
        self.keys = tuple(keys)
        d = np.ascontiguousarray(digests, dtype=np.uint64)
        self.digests = d
        ne = policy._ne_classes
        # Class scores restricted to non-empty classes: the scalar path
        # ranks all classes then drops empty ones, and the stable sort
        # preserves the relative order of the survivors — so ranking the
        # non-empty subset directly is equivalent.
        all_scores = policy._layer1.score_batch(d)
        cls_scores = all_scores[policy._ne_rows]
        self._class_order = np.argsort(-cls_scores, axis=0, kind="stable").T
        win = (self._class_order[:, 0] if len(d)
               else np.empty(0, dtype=np.int64))
        self._win = win
        # Primary node per key: group the keys by winning class, one
        # argmax over that class's vectorized node scores per group.
        primary = np.empty(len(d), dtype=np.int64)
        names = np.empty(len(d), dtype=object)
        for ci, cname in enumerate(ne):
            mask = win == ci
            if not mask.any():
                continue
            hasher = policy._layer2[cname]
            idx = np.argmax(hasher.score_batch(d[mask]), axis=0)
            primary[mask] = idx
            names[mask] = np.asarray(hasher.nodes, dtype=object)[idx]
        self._primary_idx = primary
        self._primaries = tuple(names.tolist())
        self._node_orders: dict[str, np.ndarray] | None = None
        self._index: dict[Hashable, int] | None = None

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def primaries(self) -> tuple[str, ...]:
        """Primary node of every key, in key order."""
        return self._primaries

    def primary(self, i: int) -> str:
        return self._primaries[i]

    def class_of(self, i: int) -> str:
        """Winning (non-empty) class of key *i*."""
        return self.policy._ne_classes[int(self._win[i])]

    def index_of(self, key: Hashable) -> int:
        """Position of *key* in this plan (for parity/sibling lookups)."""
        if self._index is None:
            self._index = {k: i for i, k in enumerate(self.keys)}
        return self._index[key]

    def _ensure_orders(self) -> None:
        if self._node_orders is None:
            self._node_orders = {
                cname: self.policy._layer2[cname].rank_batch(self.digests)
                for cname in self.policy._ne_classes}

    def chain(self, i: int, k: int | None = None) -> list[str]:
        """Replica / lazy-lookup chain of key *i*: nodes of the winning
        class by descending HRW score, spilling into the next-ranked class
        (paper §III-E) — identical to ``policy.ranked(keys[i], k)``."""
        if k == 1:
            return [self._primaries[i]]
        self._ensure_orders()
        out: list[str] = []
        for ci in self._class_order[i]:
            cname = self.policy._ne_classes[int(ci)]
            nodes = self.policy._layer2[cname].nodes
            out.extend(nodes[j] for j in self._node_orders[cname][i])
            if k is not None and len(out) >= k:
                return out[:k]
        return out if k is None else out[:k]


class PlacementMap:
    """Immutable two-layer placement over named node classes."""

    def __init__(self, classes: dict[str, ClassSpec],
                 family: str | HashFamily = MIX64):
        if not classes:
            raise ValueError("need at least one class")
        all_nodes = [n for spec in classes.values() for n in spec.nodes]
        if len(set(all_nodes)) != len(all_nodes):
            raise ValueError("a node may belong to only one class")
        if not any(spec.nodes for spec in classes.values()):
            raise ValueError("at least one class must have nodes")
        self.family = get_family(family)
        self._classes = dict(classes)
        self._layer1 = WeightedClassHrw(
            {name: spec.weight for name, spec in classes.items()},
            self.family)
        self._layer2 = {name: HrwHasher(spec.nodes, self.family)
                        for name, spec in classes.items() if spec.nodes}
        self._ne_classes = [name for name, spec in classes.items()
                            if spec.nodes]
        self._ne_rows = np.asarray(
            [i for i, spec in enumerate(classes.values()) if spec.nodes],
            dtype=np.intp)
        self._plans: "OrderedDict[tuple, StripePlan]" = OrderedDict()

    # -- introspection ------------------------------------------------------------
    @property
    def classes(self) -> dict[str, ClassSpec]:
        return dict(self._classes)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def nodes_of(self, cls: str) -> tuple[str, ...]:
        return self._classes[cls].nodes

    @property
    def all_nodes(self) -> tuple[str, ...]:
        return tuple(n for spec in self._classes.values()
                     for n in spec.nodes)

    # -- placement ---------------------------------------------------------------
    def _class_ranking_digest(self, digest: int) -> list[str]:
        sc = self._layer1.scores_digest(digest)
        order = sorted(self._classes, key=lambda c: -sc[c])
        return [c for c in order if self._classes[c].nodes]

    def class_ranking(self, key: Hashable) -> list[str]:
        """Classes by descending weighted score, skipping empty classes."""
        return self._class_ranking_digest(stable_digest(key))

    def class_of(self, key: Hashable) -> str:
        return self._class_ranking_digest(stable_digest(key))[0]

    def place(self, key: Hashable) -> str:
        """The node storing *key*'s primary copy."""
        digest = stable_digest(key)
        cls = self._class_ranking_digest(digest)[0]
        return self._layer2[cls].place_digest(digest)

    def ranked(self, key: Hashable, k: int | None = None) -> list[str]:
        """Replica / lazy-lookup chain: nodes of the winning class by
        descending HRW score, spilling into the next-ranked class if the
        winning class is smaller than *k* (paper §III-E)."""
        digest = stable_digest(key)
        out: list[str] = []
        for cls in self._class_ranking_digest(digest):
            out.extend(self._layer2[cls].ranked_digest(digest))
            if k is not None and len(out) >= k:
                return out[:k]
        return out if k is None else out[:k]

    # -- batch planning -----------------------------------------------------------
    def plan(self, keys: Sequence[Hashable],
             digests: np.ndarray | None = None) -> StripePlan:
        """Resolve the placement of *keys* in one vectorized pass."""
        if digests is None:
            digests = np.fromiter((stable_digest(k) for k in keys),
                                  dtype=np.uint64, count=len(keys))
        planner_stats.stripes_resolved += len(keys)
        return StripePlan(self, keys, digests)

    def plan_file(self, inode: int, n_stripes: int,
                  erasure: tuple[int, int] | None = None) -> StripePlan:
        """The (cached) plan for one file: all stripe keys, plus the parity
        keys of its erasure groups when *erasure* = ``(k, m)`` is set.

        Plans are memoized per policy instance; combined with policy
        interning (:meth:`from_meta`) repeated reads of a file hit a fully
        resolved plan instead of re-placing every stripe.
        """
        token = (inode, n_stripes, erasure)
        plan = self._plans.get(token)
        if plan is not None:
            self._plans.move_to_end(token)
            planner_stats.plan_hits += 1
            planner_stats.stripes_resolved += len(plan)
            return plan
        planner_stats.plan_misses += 1
        keys: list[Hashable] = [stripe_key(inode, i)
                                for i in range(n_stripes)]
        digests = np.asarray(stripe_digest_array(inode, n_stripes))
        if erasure is not None:
            k, m = erasure
            pkeys = [parity_key(inode, gi, j)
                     for gi, _ in enumerate(group_layout(n_stripes, k))
                     for j in range(m)]
            if pkeys:
                keys.extend(pkeys)
                pdig = np.fromiter((stable_digest(pk) for pk in pkeys),
                                   dtype=np.uint64, count=len(pkeys))
                digests = np.concatenate([digests, pdig])
        plan = self.plan(keys, digests)
        self._plans[token] = plan
        while len(self._plans) > _PLAN_CACHE_SIZE:
            self._plans.popitem(last=False)
        return plan

    # -- metadata round trip --------------------------------------------------------
    def snapshot(self) -> tuple[dict[str, float], dict[str, list[str]]]:
        """(weights, members) as stored in :class:`FileMeta`."""
        weights = {c: spec.weight for c, spec in self._classes.items()}
        members = {c: list(spec.nodes) for c, spec in self._classes.items()}
        return weights, members

    def _intern_token(self) -> tuple:
        return (self.family.name,
                tuple((c, float(spec.weight), spec.nodes)
                      for c, spec in self._classes.items()))

    @classmethod
    def _intern_put(cls, token: tuple,
                    policy: "PlacementMap") -> "PlacementMap":
        _POLICY_CACHE[token] = policy
        while len(_POLICY_CACHE) > _POLICY_CACHE_SIZE:
            _POLICY_CACHE.popitem(last=False)
        return policy

    @classmethod
    def intern(cls, policy: "PlacementMap") -> "PlacementMap":
        """The canonical shared instance for *policy*'s snapshot.

        Policies are immutable, so call sites that rebuild equal policies
        (metadata reads, eviction sweeps) can share one instance — and with
        it the per-policy plan cache.
        """
        token = policy._intern_token()
        cached = _POLICY_CACHE.get(token)
        if cached is not None:
            _POLICY_CACHE.move_to_end(token)
            planner_stats.policy_hits += 1
            return cached
        planner_stats.policy_misses += 1
        return cls._intern_put(token, policy)

    @classmethod
    def from_meta(cls, meta: FileMeta,
                  family: str | HashFamily = MIX64) -> "PlacementMap":
        """The (interned) policy a file was written under.

        Reconstruction is keyed by the metadata snapshot, so repeated
        reads/unlinks of files written under the same policy reuse one
        instance instead of rebuilding the hashers per call.
        """
        fam = get_family(family)
        token = (fam.name,
                 tuple((name, float(meta.class_weights[name]),
                        tuple(meta.class_members[name]))
                       for name in meta.class_weights))
        cached = _POLICY_CACHE.get(token)
        if cached is not None:
            _POLICY_CACHE.move_to_end(token)
            planner_stats.policy_hits += 1
            return cached
        planner_stats.policy_misses += 1
        classes = {name: ClassSpec(meta.class_weights[name],
                                   tuple(meta.class_members[name]))
                   for name in meta.class_weights}
        return cls._intern_put(token, cls(classes, fam))

    # -- evolution ---------------------------------------------------------------
    def with_class(self, name: str, weight: float,
                   nodes: tuple[str, ...]) -> "PlacementMap":
        classes = dict(self._classes)
        classes[name] = ClassSpec(weight, tuple(nodes))
        return PlacementMap(classes, self.family)

    def without_class(self, name: str) -> "PlacementMap":
        classes = dict(self._classes)
        if name not in classes:
            raise KeyError(name)
        del classes[name]
        return PlacementMap(classes, self.family)

    def without_node(self, node: str) -> "PlacementMap":
        """Drop one node (failure / eviction) from whichever class holds it."""
        classes = {}
        found = False
        for cname, spec in self._classes.items():
            if node in spec.nodes:
                found = True
                rest = tuple(n for n in spec.nodes if n != node)
                classes[cname] = ClassSpec(spec.weight, rest)
            else:
                classes[cname] = spec
        if not found:
            raise KeyError(node)
        return PlacementMap(classes, self.family)

    def reweighted(self, weights: dict[str, float]) -> "PlacementMap":
        classes = {c: ClassSpec(weights.get(c, spec.weight), spec.nodes)
                   for c, spec in self._classes.items()}
        return PlacementMap(classes, self.family)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}({len(s.nodes)}n,w={s.weight:.3g})"
                          for c, s in self._classes.items())
        return f"<PlacementMap {parts}>"


def __getattr__(name: str):
    # One-release shim: the runtime placement object was renamed
    # PlacementMap when the declarative PlacementPolicy config moved to
    # repro.core.policy.
    if name == "PlacementPolicy":
        import warnings
        warnings.warn(
            "repro.fs.placement.PlacementPolicy was renamed PlacementMap; "
            "the declarative config object is repro.core.policy."
            "PlacementPolicy",
            DeprecationWarning, stacklevel=2)
        return PlacementMap
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
