"""Two-layer stripe placement (paper §III-B).

Layer 1 picks the node *class* by weighted HRW; layer 2 picks the node
within the class by plain HRW.  A :class:`PlacementPolicy` is immutable —
membership changes (a victim class joining or leaving) produce a *new*
policy — because every file's metadata records the policy under which its
stripes were placed, and reads must be able to reconstruct exactly that
placement (:meth:`PlacementPolicy.from_meta`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..hashing import HashFamily, HrwHasher, MIX64, WeightedClassHrw
from ..hashing.hrw import get_family, stable_digest
from .metadata import FileMeta

__all__ = ["ClassSpec", "PlacementPolicy"]


@dataclass(frozen=True)
class ClassSpec:
    """One node class: its HRW weight and member node names."""

    weight: float
    nodes: tuple[str, ...]

    def __post_init__(self):
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("duplicate nodes in class")


class PlacementPolicy:
    """Immutable two-layer placement over named node classes."""

    def __init__(self, classes: dict[str, ClassSpec],
                 family: str | HashFamily = MIX64):
        if not classes:
            raise ValueError("need at least one class")
        all_nodes = [n for spec in classes.values() for n in spec.nodes]
        if len(set(all_nodes)) != len(all_nodes):
            raise ValueError("a node may belong to only one class")
        if not any(spec.nodes for spec in classes.values()):
            raise ValueError("at least one class must have nodes")
        self.family = get_family(family)
        self._classes = dict(classes)
        self._layer1 = WeightedClassHrw(
            {name: spec.weight for name, spec in classes.items()},
            self.family)
        self._layer2 = {name: HrwHasher(spec.nodes, self.family)
                        for name, spec in classes.items() if spec.nodes}

    # -- introspection ------------------------------------------------------------
    @property
    def classes(self) -> dict[str, ClassSpec]:
        return dict(self._classes)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def nodes_of(self, cls: str) -> tuple[str, ...]:
        return self._classes[cls].nodes

    @property
    def all_nodes(self) -> tuple[str, ...]:
        return tuple(n for spec in self._classes.values()
                     for n in spec.nodes)

    # -- placement ---------------------------------------------------------------
    def class_ranking(self, key: Hashable) -> list[str]:
        """Classes by descending weighted score, skipping empty classes."""
        sc = self._layer1.scores(key)
        order = sorted(self._classes, key=lambda c: -sc[c])
        return [c for c in order if self._classes[c].nodes]

    def class_of(self, key: Hashable) -> str:
        ranking = self.class_ranking(key)
        return ranking[0]

    def place(self, key: Hashable) -> str:
        """The node storing *key*'s primary copy."""
        cls = self.class_of(key)
        return self._layer2[cls].place(key)

    def ranked(self, key: Hashable, k: int | None = None) -> list[str]:
        """Replica / lazy-lookup chain: nodes of the winning class by
        descending HRW score, spilling into the next-ranked class if the
        winning class is smaller than *k* (paper §III-E)."""
        out: list[str] = []
        for cls in self.class_ranking(key):
            out.extend(self._layer2[cls].ranked(key))
            if k is not None and len(out) >= k:
                return out[:k]
        return out if k is None else out[:k]

    # -- metadata round trip --------------------------------------------------------
    def snapshot(self) -> tuple[dict[str, float], dict[str, list[str]]]:
        """(weights, members) as stored in :class:`FileMeta`."""
        weights = {c: spec.weight for c, spec in self._classes.items()}
        members = {c: list(spec.nodes) for c, spec in self._classes.items()}
        return weights, members

    @classmethod
    def from_meta(cls, meta: FileMeta,
                  family: str | HashFamily = MIX64) -> "PlacementPolicy":
        """Reconstruct the policy a file was written under."""
        classes = {name: ClassSpec(meta.class_weights[name],
                                   tuple(meta.class_members[name]))
                   for name in meta.class_weights}
        return cls(classes, family)

    # -- evolution ---------------------------------------------------------------
    def with_class(self, name: str, weight: float,
                   nodes: tuple[str, ...]) -> "PlacementPolicy":
        classes = dict(self._classes)
        classes[name] = ClassSpec(weight, tuple(nodes))
        return PlacementPolicy(classes, self.family)

    def without_class(self, name: str) -> "PlacementPolicy":
        classes = dict(self._classes)
        if name not in classes:
            raise KeyError(name)
        del classes[name]
        return PlacementPolicy(classes, self.family)

    def without_node(self, node: str) -> "PlacementPolicy":
        """Drop one node (failure / eviction) from whichever class holds it."""
        classes = {}
        found = False
        for cname, spec in self._classes.items():
            if node in spec.nodes:
                found = True
                rest = tuple(n for n in spec.nodes if n != node)
                classes[cname] = ClassSpec(spec.weight, rest)
            else:
                classes[cname] = spec
        if not found:
            raise KeyError(node)
        return PlacementPolicy(classes, self.family)

    def reweighted(self, weights: dict[str, float]) -> "PlacementPolicy":
        classes = {c: ClassSpec(weights.get(c, spec.weight), spec.nodes)
                   for c, spec in self._classes.items()}
        return PlacementPolicy(classes, self.family)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}({len(s.nodes)}n,w={s.weight:.3g})"
                          for c, s in self._classes.items())
        return f"<PlacementPolicy {parts}>"
