"""MemFS — the uniform prior system (Uta et al., FGCS 2015).

MemFS(+MemEFS) is the baseline MemFSS builds on: every node has the dual
role of running tasks and storing an equal share of the data.  In this
reproduction it is simply a MemFSS deployment with a single class of nodes
at weight zero — which makes the ablation between uniform and scavenging
placement a one-line configuration change, exactly as §III-A describes the
design delta.
"""

from __future__ import annotations

from ..cluster.network import Fabric
from ..cluster.node import Node
from ..sim import Environment
from ..store import StoreServer
from .memfss import MemFSS
from .placement import ClassSpec, PlacementMap
from .striping import DEFAULT_STRIPE_SIZE

__all__ = ["build_memfs"]


def build_memfs(env: Environment, fabric: Fabric, nodes: list[Node],
                servers: dict[str, StoreServer], *,
                password: str = "",
                stripe_size: int = DEFAULT_STRIPE_SIZE,
                replication: int = 1,
                write_window: int = 4,
                capacity_guard: bool = True) -> MemFSS:
    """A uniform MemFS: one class, all nodes compute *and* store."""
    # Interned: repeated deployments over the same node set (the ablation
    # sweeps re-build MemFS per data point) share one policy and its plans.
    policy = PlacementMap.intern(PlacementMap(
        {"all": ClassSpec(weight=0.0, nodes=tuple(n.name for n in nodes))}))
    return MemFSS(env, fabric, own_nodes=nodes, servers=servers,
                  policy=policy, password=password, stripe_size=stripe_size,
                  replication=replication, write_window=write_window,
                  capacity_guard=capacity_guard)
