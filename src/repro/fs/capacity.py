"""Write-path capacity pressure: ledger, spill selection, counters.

The paper's spill rule (§III-E: descend the HRW ranking when the winning
node cannot serve) has always been modeled for *reads* — this module
applies it to capacity on the *write* path.  Three pieces:

- :func:`select_targets` — the pure spill rule: given a stripe's full HRW
  chain and each node's usable free space, deterministically pick the
  first ``k`` nodes that can admit the stripe.  Pure so the batch
  (:meth:`~repro.fs.placement.StripePlan.chain`) and scalar
  (:meth:`~repro.fs.placement.PlacementMap.ranked`) paths provably
  agree (the hypothesis property test drives both through it).
- :class:`CapacityLedger` — per-store free-space view plus in-flight
  write reservations, so a window of concurrent stripe puts does not
  over-commit one store between the check and the put landing.
- :class:`PressureStats` / :data:`pressure_stats` — process-wide
  counters (the ``planner_stats`` pattern), surfaced as monitor probes
  and report rows by :mod:`repro.metrics.pressure`.

Everything here is plain Python — no simulated events — so enabling the
capacity guard cannot perturb placement or timing while no store is under
pressure (the Fig. 2 golden bit-identity contract).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

__all__ = ["PressureStats", "pressure_stats", "CapacityLedger",
           "select_targets"]


def select_targets(chain: Sequence[str], nbytes: float, k: int,
                   usable: Callable[[str], float],
                   ) -> tuple[list[str], int, int]:
    """Capacity-aware replica selection down an HRW chain (§III-E).

    Walks *chain* in rank order and picks the first *k* nodes whose
    ``usable(node)`` free space admits *nbytes*.  Returns
    ``(targets, spill_distance, shortfall)`` where *spill_distance* is
    the total number of ranks the picked targets sit below their ideal
    positions (0 when the top-``k`` nodes all admit) and *shortfall* is
    how many of the *k* wanted copies found no home.

    Deterministic by construction: the outcome is a pure function of the
    chain order and the free-space snapshot.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    targets: list[str] = []
    distance = 0
    for rank, name in enumerate(chain):
        if usable(name) >= nbytes:
            distance += rank - len(targets)
            targets.append(name)
            if len(targets) >= k:
                break
    return targets, distance, k - len(targets)


class CapacityLedger:
    """Free-space view over a live server map, with in-flight reservations.

    The ledger reads each store's zero-cost
    :meth:`~repro.store.server.StoreServer.free_space` peek and subtracts
    the bytes this file system has already committed to in-flight puts
    (up to ``write_window`` stripes race between admission check and the
    put landing).  It holds the *same* mapping object as
    ``MemFSS.servers``, so scavenged victims joining or leaving are
    visible immediately.
    """

    __slots__ = ("_servers", "_inflight")

    def __init__(self, servers: Mapping[str, object]):
        self._servers = servers
        self._inflight: dict[str, float] = {}

    def _cost(self, server, nbytes: float) -> float:
        return float(nbytes) + server.kv.key_overhead

    def usable(self, name: str) -> float:
        """Payload bytes a new put on *name* could admit right now."""
        server = self._servers.get(name)
        if server is None:
            return float("-inf")
        return (server.free_space() - self._inflight.get(name, 0.0)
                - server.kv.key_overhead)

    def admits(self, name: str, nbytes: float) -> bool:
        return self.usable(name) >= nbytes

    def reserve(self, name: str, nbytes: float) -> float:
        """Commit an in-flight put; returns the reserved cost to release."""
        server = self._servers.get(name)
        cost = self._cost(server, nbytes) if server is not None \
            else float(nbytes)
        self._inflight[name] = self._inflight.get(name, 0.0) + cost
        return cost

    def release(self, name: str, cost: float) -> None:
        left = self._inflight.get(name, 0.0) - cost
        if left > 1e-9:
            self._inflight[name] = left
        else:
            self._inflight.pop(name, None)

    def inflight_bytes(self, name: str) -> float:
        return self._inflight.get(name, 0.0)


class PressureStats:
    """Process-wide capacity-pressure counters (the ``planner_stats``
    pattern: one shared instance, reset per experiment).

    Write path: ``writes_checked`` counts guarded stripe writes,
    ``spilled_writes``/``spill_distance`` the proactive chain descents,
    ``reactive_spills`` FULL responses that still slipped through the
    ledger (capacity races), ``replica_shortfall`` wanted copies that
    found no store, and ``exhausted_writes`` stripes no store could
    admit.  Recovery path: ``evac_spills``/``evac_drops`` and
    ``repair_skips`` count capacity detours during evacuation drains and
    repair sweeps.  Admission: ``admission_checks``/
    ``admission_rejections`` from the placement-aware predictor, and
    ``degraded_rows`` counts sweep rows that fell back to a typed
    "unable to run" result.
    """

    _COUNTERS = ("writes_checked", "spilled_writes", "spill_distance",
                 "reactive_spills", "replica_shortfall", "exhausted_writes",
                 "evac_spills", "evac_drops", "repair_skips",
                 "admission_checks", "admission_rejections", "degraded_rows")
    __slots__ = _COUNTERS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTERS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {k: v for k, v in self.snapshot().items() if v}
        return f"<PressureStats {hot}>"


pressure_stats = PressureStats()
