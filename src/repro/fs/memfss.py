"""MemFSS — the scavenging in-memory distributed file system.

This is the paper's core artifact (§III).  A :class:`MemFSS` instance ties
together:

- the **own nodes** (run tasks *and* store data; only they may mount the
  file system and pass the stores' AUTH policy);
- any number of **victim classes** (store data only), managed dynamically
  by the :class:`~repro.fs.scavenger.ScavengingManager`;
- the two-layer weighted HRW :class:`~repro.fs.placement.PlacementMap`;
- per-file :class:`~repro.fs.metadata.FileMeta` records placed on own
  nodes by modulo hashing;
- striping, optional k-replication (2nd/3rd HRW winners, §III-E) and
  optional XOR/parity erasure coding (§III-E's future-work alternative).

All I/O methods are generators driven inside simulation processes; with a
zero-cost fabric they also work as a perfectly ordinary (if synchronous)
in-process file system, which is how the functional tests use them.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..cluster.network import Fabric
from ..cluster.node import Node
from ..hashing import ModuloPlacer
from ..sim import Environment, FluidResource
from ..sim.rng import RngRegistry
from ..store import (RetryPolicy, StoreClient, StoreError, StoreErrorCode,
                     StoreServer)
from ..units import GB
from .capacity import CapacityLedger, pressure_stats, select_targets
from .erasure import group_layout, parity_key, reconstruct_size, xor_parity
from .metadata import (FileMeta, PathError, dir_key, file_meta_key,
                       normalize_path, parent_dir)
from .placement import PlacementMap
from .striping import (DEFAULT_STRIPE_SIZE, split_payload, stripe_count,
                       stripe_spans)

__all__ = ["MemFSS", "FsError", "FileNotFound", "FileExists", "NotADir"]

_REGISTRY_KEY = ("allfiles",)


class FsError(RuntimeError):
    """Generic file-system failure."""


class FileNotFound(FsError):
    pass


class FileExists(FsError):
    pass


class NotADir(FsError):
    pass


class MemFSS:
    """One deployed file system over a set of store servers."""

    def __init__(self, env: Environment, fabric: Fabric,
                 own_nodes: list[Node], servers: dict[str, StoreServer],
                 policy: PlacementMap, *,
                 password: str = "",
                 stripe_size: int = DEFAULT_STRIPE_SIZE,
                 replication: int = 1,
                 erasure: tuple[int, int] | None = None,
                 write_window: int = 4,
                 fuse_bandwidth: float = 2 * GB,
                 fuse_stream_cap: float = 1 * GB,
                 io_deadline: float | None = None,
                 io_retry: RetryPolicy | None = None,
                 io_hedge: float | None = None,
                 capacity_guard: bool = True,
                 rng: RngRegistry | None = None):
        if not own_nodes:
            raise ValueError("need at least one own node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if replication > 1 and erasure is not None:
            raise ValueError("choose replication or erasure, not both")
        if erasure is not None:
            k, m = erasure
            if k < 1 or m < 1:
                raise ValueError("erasure needs k >= 1 data, m >= 1 parity")
        missing = [n for n in policy.all_nodes if n not in servers]
        if missing:
            raise ValueError(f"no server for placement nodes {missing}")
        if write_window < 1:
            raise ValueError("write_window must be >= 1")
        self.env = env
        self.fabric = fabric
        self.own_nodes = list(own_nodes)
        self.servers = dict(servers)
        # Interned: reads reconstruct the recorded policy via from_meta,
        # which then hits this exact instance (and its cached plans) for
        # files written under the current policy.
        self.policy = PlacementMap.intern(policy)
        self.stripe_size = int(stripe_size)
        self.replication = replication
        self.erasure = erasure
        self.write_window = write_window
        self.meta_placer = ModuloPlacer([n.name for n in own_nodes])
        # Every mount shares one resilience posture: per-op deadline,
        # retry policy and hedge delay become the clients' defaults, and
        # backoff jitter draws from per-node streams of the deployment's
        # registry so fault runs stay bit-reproducible.
        self._clients = {
            n.name: StoreClient(
                env, fabric, n, password,
                deadline=io_deadline, retry=io_retry, hedge=io_hedge,
                rng=(rng.stream(f"store.client.{n.name}")
                     if rng is not None else None))
            for n in own_nodes}
        # The FUSE data path is a real per-node throughput limit: the
        # userspace daemon copies every byte, sustaining ~2 GB/s per node
        # and ~1 GB/s per stream (MemFS, FGCS 2015).  This cap — not the
        # 3 GB/s NIC — is what holds victim ingress under ~500 MB/s in
        # the paper's Fig. 2.
        if fuse_bandwidth <= 0 or fuse_stream_cap <= 0:
            raise ValueError("fuse bandwidth parameters must be positive")
        self.fuse_stream_cap = float(fuse_stream_cap)
        self._fuse_pipes = {
            n.name: FluidResource(env, fuse_bandwidth, name=f"fuse@{n.name}")
            for n in own_nodes}
        # Capacity-aware writes: stripe puts consult the ledger and spill
        # down the HRW chain instead of bouncing with FULL (§III-E applied
        # to capacity).  The ledger wraps self.servers itself, so victims
        # joining/leaving are visible without re-wiring.
        self.capacity_guard = bool(capacity_guard)
        self.ledger = CapacityLedger(self.servers)
        self._inodes = itertools.count(1)
        # Lifetime I/O counters.
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.files_created = 0

    # -- plumbing ---------------------------------------------------------------
    def client(self, node: Node) -> StoreClient:
        try:
            return self._clients[node.name]
        except KeyError:
            raise FsError(f"{node.name} is not an own node; only own nodes "
                          "mount MemFSS (paper §III-C)") from None

    def _meta_server(self, key) -> StoreServer:
        return self.servers[self.meta_placer.place(key)]

    def _registry_server(self) -> StoreServer:
        return self.servers[self.meta_placer.place(_REGISTRY_KEY)]

    def next_inode(self) -> int:
        return next(self._inodes)

    # -- directories ----------------------------------------------------------------
    def mkdir(self, node: Node, path: str):
        """Generator: create a directory (parents must exist)."""
        path = normalize_path(path)
        if path == "/":
            return
        client = self.client(node)
        parent = parent_dir(path)
        if parent != "/":
            entries = yield from client.smembers(
                self._meta_server(dir_key(parent)), dir_key(parent))
            name = parent.rsplit("/", 1)[-1]
            grand = parent_dir(parent)
            pentries = yield from client.smembers(
                self._meta_server(dir_key(grand)), dir_key(grand))
            if name + "/" not in pentries:
                raise NotADir(f"parent {parent!r} does not exist")
            del entries
        name = path.rsplit("/", 1)[-1]
        yield from client.sadd(self._meta_server(dir_key(parent)),
                               dir_key(parent), name + "/")

    def listdir(self, node: Node, path: str):
        """Generator: names in a directory (dirs carry a trailing '/')."""
        path = normalize_path(path)
        client = self.client(node)
        entries = yield from client.smembers(
            self._meta_server(dir_key(path)), dir_key(path))
        return sorted(entries)

    # -- files ------------------------------------------------------------------
    def write_file(self, node: Node, path: str, nbytes: float | None = None,
                   payload: bytes | None = None, batch: int = 1):
        """Generator: create *path* with the given content.

        Returns the :class:`FileMeta`.  Stripes go wherever the current
        placement policy sends them, up to :attr:`write_window` in flight.
        *batch* > 1 marks this logical file as a bundle of that many small
        application files (per-request store costs are charged that many
        times — see :class:`repro.store.protocol.Request`).
        """
        path = normalize_path(path)
        if payload is not None:
            size = len(payload)
            pieces = split_payload(payload, self.stripe_size)
        else:
            if nbytes is None or nbytes < 0:
                raise ValueError("write_file needs payload or nbytes >= 0")
            size = int(nbytes)
            pieces = None
        client = self.client(node)
        inode = self.next_inode()
        n = stripe_count(size, self.stripe_size)
        weights, members = self.policy.snapshot()
        meta = FileMeta(path=path, inode=inode, size=size,
                        stripe_size=self.stripe_size, n_stripes=n,
                        class_weights=weights, class_members=members,
                        replication=self.replication, erasure=self.erasure)

        # One vectorized plan resolves every stripe (and parity) placement
        # up front; the per-stripe jobs below only index into it.
        plan = self.policy.plan_file(inode, n, erasure=self.erasure)
        spans = stripe_spans(size, self.stripe_size)
        batch = max(1, int(batch))
        jobs = []
        for span in spans:
            piece = pieces[span.index] if pieces is not None else None
            # Spread the bundle's request count across its stripes.
            share = batch // n + (1 if span.index < batch % n else 0) if n else 0
            jobs.append((span.index, float(span.length), piece,
                         max(1, share)))
        if self.erasure is not None:
            k, m = self.erasure
            for gi, (first, count) in enumerate(group_layout(n, k)):
                group_pieces = (pieces[first:first + count]
                                if pieces is not None else None)
                plen = max((spans[i].length
                            for i in range(first, first + count)),
                           default=0)
                for j in range(m):
                    pidx = plan.index_of(parity_key(inode, gi, j))
                    ppiece = (xor_parity(group_pieces)
                              if group_pieces is not None else None)
                    jobs.append((pidx, float(plen), ppiece, 1))

        yield from self._run_window(
            [self._write_stripe(client, plan, idx, nb, piece, share)
             for idx, nb, piece, share in jobs])

        # Metadata: file record, parent directory entry, global registry.
        meta_key = file_meta_key(path)
        yield from client.put(self._meta_server(meta_key),
                              meta_key, payload=meta.to_bytes())
        parent = parent_dir(path)
        name = path.rsplit("/", 1)[-1]
        yield from client.sadd(self._meta_server(dir_key(parent)),
                               dir_key(parent), name)
        yield from client.sadd(self._registry_server(), _REGISTRY_KEY, path)
        self.bytes_written += size
        self.files_created += 1
        return meta

    def _through_fuse(self, node_name: str, nbytes: float, gen):
        """Generator: run *gen* while the payload crosses the FUSE pipe.

        The FUSE copy and the store transfer are pipelined, so the cost is
        the max of the two, modeled by waiting on both concurrently.
        Returns the inner generator's value.
        """
        pipe = self._fuse_pipes[node_name]
        inner = self.env.process(gen)
        if nbytes <= 0:
            return (yield inner)
        flow = pipe.submit(nbytes, cap=self.fuse_stream_cap, label="fuse")
        try:
            yield self.env.all_of([flow.done, inner])
        except BaseException:
            pipe.remove(flow)
            if inner.is_alive:
                inner.interrupt()
            raise
        return inner.value

    def _write_stripe(self, client: StoreClient, plan, idx: int,
                      nbytes: float, piece: bytes | None, batch: int = 1):
        """Generator: write one planned stripe to its replica set.

        With the capacity guard on (the default), targets that cannot
        admit the stripe are skipped in favour of the next nodes down the
        HRW chain (§III-E applied to capacity) instead of bouncing the
        write with ``FULL``.  The admission check is pure Python over the
        ledger, so when every planned target admits — the unpressured
        case — the put sequence is identical to the unguarded path.  A
        ``FULL`` that still sneaks through (a capacity race with another
        in-flight writer, or tenant pressure landing mid-put) falls
        through *reactively* to the next admitting node.  Only when no
        store in the whole chain can take the stripe does the write raise
        — a structured ``FULL`` :class:`StoreError` the sweep layer turns
        into a degraded row.
        """
        key = plan.keys[idx]
        want = self.replication
        targets = plan.chain(idx, k=want)
        if not self.capacity_guard:
            for target in targets:
                yield from self._put_stripe(client, target, key, nbytes,
                                            piece, batch)
            return
        pressure_stats.writes_checked += 1
        chain: list[str] | None = None
        if not all(self.ledger.admits(t, nbytes) for t in targets):
            chain = plan.chain(idx)
            picked, distance, _short = select_targets(
                chain, nbytes, want, self.ledger.usable)
            if not picked:
                pressure_stats.exhausted_writes += 1
                pressure_stats.replica_shortfall += want
                raise StoreError(
                    StoreErrorCode.FULL,
                    f"stripe {key!r} ({nbytes:.3g} B): no store in the "
                    f"HRW chain can admit it",
                    details={"requested_bytes": float(nbytes),
                             "chain": list(chain)})
            pressure_stats.spilled_writes += 1
            pressure_stats.spill_distance += distance
            targets = picked
        written = 0
        pos = 0                   # reactive-spill resume point in chain
        tried: set[str] = set()
        queue = list(targets)
        while queue:
            target = queue.pop(0)
            tried.add(target)
            reserved = self.ledger.reserve(target, nbytes)
            try:
                yield from self._put_stripe(client, target, key, nbytes,
                                            piece, batch)
            except StoreError as exc:
                if exc.code is not StoreErrorCode.FULL:
                    raise
                pressure_stats.reactive_spills += 1
                if chain is None:
                    chain = plan.chain(idx)
                while pos < len(chain):
                    cand = chain[pos]
                    pos += 1
                    if cand in tried or cand in queue:
                        continue
                    if self.ledger.admits(cand, nbytes):
                        queue.append(cand)
                        break
                continue
            finally:
                self.ledger.release(target, reserved)
            written += 1
        if written == 0:
            pressure_stats.exhausted_writes += 1
            pressure_stats.replica_shortfall += want
            raise StoreError(
                StoreErrorCode.FULL,
                f"stripe {key!r} ({nbytes:.3g} B): every candidate store "
                f"rejected the write",
                details={"requested_bytes": float(nbytes),
                         "tried": sorted(tried)})
        if written < want:
            pressure_stats.replica_shortfall += want - written

    def _put_stripe(self, client: StoreClient, target: str, key,
                    nbytes: float, piece: bytes | None, batch: int):
        """Generator: one stripe put through the FUSE pipe."""
        yield from self._through_fuse(
            client.node.name, nbytes,
            client.put(self.servers[target], key,
                       nbytes=None if piece is not None else nbytes,
                       payload=piece, batch=batch))

    def _run_window(self, gens: list):
        """Run generators with at most :attr:`write_window` in flight.

        The in-flight stripe puts land their fabric transfers at the same
        simulated instant (client RTTs are equal), so the flow network's
        same-timestamp coalescing solves the fan-out's rate changes once
        per window step instead of once per stripe — no explicit
        ``FlowNetwork.batch()`` needed on this path.
        """
        window = self.write_window
        if window == 1 or len(gens) <= 1:
            for g in gens:
                yield from g
            return
        pending = list(reversed(gens))
        active: list = []
        while pending or active:
            while pending and len(active) < window:
                active.append(self.env.process(pending.pop()))
            try:
                done = yield self.env.any_of(active)
            except BaseException:
                for p in active:
                    if p.is_alive:
                        p.interrupt("write aborted")
                raise
            active = [p for p in active if not p.triggered]
            del done

    def stat(self, node: Node, path: str):
        """Generator: the :class:`FileMeta` of *path*."""
        path = normalize_path(path)
        client = self.client(node)
        meta_key = file_meta_key(path)
        try:
            server = self._meta_server(meta_key)
        except KeyError:
            # The node holding this path's metadata has left the system —
            # exactly the failure mode §III-D's own-only placement avoids.
            raise FileNotFound(f"{path}: metadata server is gone") from None
        try:
            _n, raw = yield from client.get(server, meta_key)
        except StoreError as exc:
            if exc.code is StoreErrorCode.MISSING:
                raise FileNotFound(path) from None
            raise
        return FileMeta.from_bytes(raw)

    def read_file(self, node: Node, path: str, batch: int = 1):
        """Generator: read the whole file.

        Returns ``(size, payload_or_None)``.  Stripes are located with the
        placement recorded in the file's metadata; if a stripe's primary
        node no longer answers, the ranked HRW chain is walked (lazy
        movement, §V-C) and parity reconstruction is attempted for
        erasure-coded files.
        """
        path = normalize_path(path)
        meta = yield from self.stat(node, path)
        client = self.client(node)
        plan = self._plan_for(meta)
        pieces: list[bytes] = []
        have_payload = True
        batch = max(1, int(batch))
        n = meta.n_stripes
        spans = stripe_spans(meta.size, meta.stripe_size)
        for idx in range(meta.n_stripes):
            share = batch // n + (1 if idx < batch % n else 0) if n else 0
            nbytes, piece = yield from self._through_fuse(
                node.name, float(spans[idx].length),
                self._read_stripe(client, plan, meta, idx,
                                  batch=max(1, share)))
            if piece is None:
                have_payload = False
            else:
                pieces.append(piece)
        self.bytes_read += meta.size
        if have_payload and (meta.n_stripes > 0 or meta.size == 0):
            return meta.size, b"".join(pieces)
        return meta.size, None

    def read_range(self, node: Node, path: str, offset: int, length: int,
                   batch: int = 1):
        """Generator: read ``[offset, offset + length)`` of a file.

        Fetches only the stripes covering the range (a stripe is the unit
        of transfer, as in the real FUSE layer).  Returns
        ``(bytes_read, payload_or_None)`` where *bytes_read* counts the
        requested range, clamped to the file size.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        path = normalize_path(path)
        meta = yield from self.stat(node, path)
        client = self.client(node)
        plan = self._plan_for(meta)
        end = min(offset + length, meta.size)
        if end <= offset:
            return 0, b""
        first = int(offset // meta.stripe_size)
        last = int((end - 1) // meta.stripe_size)
        spans = stripe_spans(meta.size, meta.stripe_size)
        batch = max(1, int(batch))
        n = last - first + 1
        pieces: list[bytes] = []
        have_payload = True
        for k, idx in enumerate(range(first, last + 1)):
            share = batch // n + (1 if k < batch % n else 0)
            _nb, piece = yield from self._through_fuse(
                node.name, float(spans[idx].length),
                self._read_stripe(client, plan, meta, idx,
                                  batch=max(1, share)))
            if piece is None:
                have_payload = False
            else:
                pieces.append(piece)
        nread = end - offset
        self.bytes_read += nread
        if not have_payload:
            return nread, None
        blob = b"".join(pieces)
        lo = offset - first * meta.stripe_size
        return nread, blob[int(lo):int(lo) + int(nread)]

    def _plan_for(self, meta: FileMeta):
        """The stripe plan of *meta* under its recorded (interned) policy."""
        policy = PlacementMap.from_meta(meta, self.policy.family)
        return policy.plan_file(meta.inode, meta.n_stripes,
                                erasure=meta.erasure)

    def _read_stripe(self, client: StoreClient, plan, meta: FileMeta,
                     idx: int, batch: int = 1):
        """Generator: fetch one stripe, walking the replica chain.

        The chain walk (misses, crashed stores, timeouts falling through
        to the next rank, optional hedging) lives in
        :meth:`~repro.store.client.StoreClient.get_any`; a fully
        exhausted chain falls back to parity reconstruction.
        """
        key = plan.keys[idx]
        # Under the capacity guard a write may have spilled arbitrarily
        # deep down the chain, so reads walk it to the end; the walk
        # stops at the first hit, so the unpressured path still issues
        # exactly one request to the primary.
        chain = (plan.chain(idx) if self.capacity_guard
                 else plan.chain(idx, k=max(self.replication, 3)))
        try:
            return (yield from client.get_any(
                [self.servers.get(t) for t in chain], key, batch=batch))
        except StoreError as exc:
            if not exc.code.fallthrough:
                raise
            last_error = exc
        if meta.erasure is not None:
            return (yield from self._reconstruct_stripe(
                client, plan, meta, idx))
        raise FileNotFound(
            f"stripe {key!r} of {meta.path!r} lost "
            f"(tried {chain}): {last_error}")

    def _reconstruct_stripe(self, client: StoreClient, plan,
                            meta: FileMeta, idx: int):
        """Generator: rebuild a lost stripe from its parity group."""
        assert meta.erasure is not None
        k, m = meta.erasure
        gi = idx // k
        first = gi * k
        count = min(k, meta.n_stripes - first)
        spans = stripe_spans(meta.size, meta.stripe_size)
        got: list[bytes | None] = []
        sizes: list[float] = []
        # Fetch the surviving siblings.
        for sib in range(first, first + count):
            if sib == idx:
                continue
            try:
                nb, piece = yield from self._fetch_any(client, plan, sib)
            except FileNotFound:
                raise FileNotFound(
                    f"stripe {idx} of {meta.path!r}: second loss in parity "
                    f"group {gi}; cannot reconstruct with m={m}") from None
            got.append(piece)
            sizes.append(nb)
        # Fetch one parity stripe (parity keys are part of the plan).
        pidx = plan.index_of(parity_key(meta.inode, gi, 0))
        pnb, ppiece = yield from self._fetch_any(client, plan, pidx)
        my_len = spans[idx].length
        if ppiece is not None and all(p is not None for p in got):
            data = xor_parity([ppiece] + [p for p in got])  # type: ignore[list-item]
            return float(my_len), data[:my_len]
        return reconstruct_size(my_len), None

    def _fetch_any(self, client: StoreClient, plan, idx: int):
        """Generator: get the plan's key *idx* from anywhere in its chain."""
        key = plan.keys[idx]
        chain = (plan.chain(idx) if self.capacity_guard
                 else plan.chain(idx, k=3))
        try:
            return (yield from client.get_any(
                [self.servers.get(t) for t in chain], key))
        except StoreError as exc:
            if not exc.code.fallthrough:
                raise
        raise FileNotFound(f"{key!r} unavailable on all replicas")

    def unlink(self, node: Node, path: str):
        """Generator: delete a file, its stripes, and its metadata."""
        path = normalize_path(path)
        meta = yield from self.stat(node, path)
        client = self.client(node)
        # The plan already covers stripes *and* parity keys.
        plan = self._plan_for(meta)
        want = self.replication
        for idx, key in enumerate(plan.keys):
            # Delete from the planned replica set; if copies are missing
            # there (a capacity spill pushed them deeper), keep walking
            # the chain until all expected copies are gone.  Unpressured
            # files find every copy in the first *want* ranks, so the
            # request sequence is unchanged.
            chain = (plan.chain(idx) if self.capacity_guard
                     else plan.chain(idx, k=want))
            deleted = 0
            for target in chain:
                if deleted >= want:
                    break
                server = self.servers.get(target)
                if server is None:
                    continue
                try:
                    yield from client.delete(server, key)
                    deleted += 1
                except StoreError as exc:
                    # A replica that is missing the key — or is down and
                    # losing it anyway — does not fail the unlink.
                    if not exc.code.fallthrough:
                        raise
        yield from client.delete(self._meta_server(file_meta_key(path)),
                                 file_meta_key(path))
        parent = parent_dir(path)
        name = path.rsplit("/", 1)[-1]
        yield from client.srem(self._meta_server(dir_key(parent)),
                               dir_key(parent), name)
        yield from client.srem(self._registry_server(), _REGISTRY_KEY, path)
        return meta.size

    def rename(self, node: Node, old: str, new: str):
        """Generator: move a file.  Stripe keys are inode-based, so only
        metadata moves — no data transfer."""
        old, new = normalize_path(old), normalize_path(new)
        meta = yield from self.stat(node, old)
        client = self.client(node)
        meta.path = new
        yield from client.put(self._meta_server(file_meta_key(new)),
                              file_meta_key(new), payload=meta.to_bytes())
        yield from client.delete(self._meta_server(file_meta_key(old)),
                                 file_meta_key(old))
        yield from client.sadd(self._meta_server(dir_key(parent_dir(new))),
                               dir_key(parent_dir(new)),
                               new.rsplit("/", 1)[-1])
        yield from client.srem(self._meta_server(dir_key(parent_dir(old))),
                               dir_key(parent_dir(old)),
                               old.rsplit("/", 1)[-1])
        yield from client.srem(self._registry_server(), _REGISTRY_KEY, old)
        yield from client.sadd(self._registry_server(), _REGISTRY_KEY, new)
        return meta

    def exists(self, node: Node, path: str):
        """Generator: True if *path* names a file."""
        try:
            yield from self.stat(node, path)
            return True
        except FileNotFound:
            return False

    def list_all_files(self, node: Node):
        """Generator: every file path in the registry (for migration)."""
        client = self.client(node)
        paths = yield from client.smembers(self._registry_server(),
                                           _REGISTRY_KEY)
        return sorted(paths)

    def purge(self, node: Node):
        """Generator: wipe the whole file system (one FLUSH per server).

        The experiment harness re-runs bags of tasks back to back; like a
        remount of the real MemFSS, a purge clears all data and metadata at
        one request per store instead of a full per-file unlink walk.
        Returns the total bytes released.
        """
        client = self.client(node)
        released = 0.0
        for server in set(self.servers.values()):
            released += yield from client.flush(server)
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        return released

    # -- capacity ------------------------------------------------------------------
    def total_capacity(self) -> float:
        return sum(self.servers[n].kv.capacity for n in self.policy.all_nodes)

    def used_bytes(self) -> float:
        return sum(self.servers[n].kv.used_bytes
                   for n in self.policy.all_nodes)
