"""MemFSS: the scavenging in-memory distributed file system (paper §III)."""

from .capacity import (CapacityLedger, PressureStats, pressure_stats,
                       select_targets)
from .striping import (DEFAULT_STRIPE_SIZE, StripeSpan, join_payload,
                       split_payload, stripe_count, stripe_digest_array,
                       stripe_key, stripe_spans)
from .metadata import (FileMeta, PathError, dir_key, file_meta_key,
                       normalize_path, parent_dir)
from .placement import (ClassSpec, PlacementMap, PlannerStats, StripePlan,
                        clear_placement_caches, planner_stats)
from .erasure import (group_layout, parity_key, storage_overhead, xor_parity)
from .memfss import (FileExists, FileNotFound, FsError, MemFSS, NotADir)
from .memfs import build_memfs
from .posix import FileHandle, HandleClosed, MountPoint
from .scavenger import ScavengingManager

__all__ = [
    "DEFAULT_STRIPE_SIZE", "StripeSpan", "stripe_count", "stripe_spans",
    "stripe_key", "stripe_digest_array", "split_payload", "join_payload",
    "FileMeta", "PathError", "normalize_path", "parent_dir",
    "file_meta_key", "dir_key",
    "ClassSpec", "PlacementMap", "StripePlan", "PlannerStats",
    "planner_stats", "clear_placement_caches",
    "CapacityLedger", "PressureStats", "pressure_stats", "select_targets",
    "group_layout", "parity_key", "xor_parity", "storage_overhead",
    "MemFSS", "FsError", "FileNotFound", "FileExists", "NotADir",
    "build_memfs",
    "MountPoint", "FileHandle", "HandleClosed",
    "ScavengingManager",
]


def __getattr__(name: str):
    # One-release shim: repro.fs.PlacementPolicy (the runtime object) was
    # renamed PlacementMap; the name PlacementPolicy now belongs to the
    # declarative config object in repro.core.policy.
    if name == "PlacementPolicy":
        import warnings
        warnings.warn(
            "repro.fs.PlacementPolicy was renamed PlacementMap; the "
            "declarative config object is repro.core.policy.PlacementPolicy",
            DeprecationWarning, stacklevel=2)
        return PlacementMap
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
