"""Table I: the resource-utilization survey (paper §II-B).

The paper motivates scavenging with published measurements of how little
memory and network clusters actually use.  The records below are Table I
verbatim; :func:`check_simulated_utilization` classifies a simulated
cluster's numbers against a survey row's ranges, which is how the Table I
bench shows our tenant models land inside the surveyed envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SurveyRecord", "TABLE_I", "check_simulated_utilization"]


@dataclass(frozen=True)
class SurveyRecord:
    """One Table I row.  Bounds are fractions of capacity; None = N/A."""

    study: str
    cpu: tuple[float | None, float | None]       # (low, high)
    memory: tuple[float | None, float | None]
    network: tuple[float | None, float | None]
    note: str = ""

    @staticmethod
    def _inside(value: float, bounds: tuple[float | None, float | None],
                ) -> bool | None:
        lo, hi = bounds
        if lo is None and hi is None:
            return None
        if lo is not None and value < lo:
            return False
        if hi is not None and value > hi:
            return False
        return True

    def covers(self, cpu: float | None = None, memory: float | None = None,
               network: float | None = None) -> dict[str, bool | None]:
        """Which of the given utilizations fall inside this row's ranges."""
        out: dict[str, bool | None] = {}
        if cpu is not None:
            out["cpu"] = self._inside(cpu, self.cpu)
        if memory is not None:
            out["memory"] = self._inside(memory, self.memory)
        if network is not None:
            out["network"] = self._inside(network, self.network)
        return out


#: Table I of the paper, as (low, high) utilization fractions.
TABLE_I: tuple[SurveyRecord, ...] = (
    SurveyRecord("Google Traces", cpu=(0.0, 0.60), memory=(0.0, 0.50),
                 network=(None, None),
                 note="trace analysis; CPU ~60%, memory ~50%"),
    SurveyRecord("Facebook", cpu=(None, None), memory=(0.0, 0.19),
                 network=(None, None),
                 note="median memory 19%, p95 42%"),
    SurveyRecord("Taobao", cpu=(0.0, 0.70), memory=(0.20, 0.40),
                 network=(0.0, 0.20 / 1.5),
                 note="10-20 MB/s on GbE; CPU <= 70%"),
    SurveyRecord("Mesos", cpu=(0.0, 0.80), memory=(0.0, 0.40),
                 network=(None, None),
                 note="memory raised from 20% to 40% by sharing"),
    SurveyRecord("Graph Processing Platforms", cpu=(0.0, 0.10),
                 memory=(0.0, 0.50), network=(0.0, 0.128 / 10),
                 note="<=128 Mbit/s on 10G; CPU <= 10%"),
    SurveyRecord("Commercial Cloud Datacenters", cpu=(None, None),
                 memory=(None, None), network=(0.0, 0.20),
                 note="<=20% bisection bandwidth used"),
)


def check_simulated_utilization(cpu: float, memory: float, network: float,
                                ) -> list[tuple[str, dict[str, bool | None]]]:
    """Classify one simulated cluster's utilization against every row."""
    return [(rec.study, rec.covers(cpu=cpu, memory=memory, network=network))
            for rec in TABLE_I]
