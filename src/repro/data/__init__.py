"""Published data the paper cites (the Table I utilization survey)."""

from .survey import TABLE_I, SurveyRecord, check_simulated_utilization

__all__ = ["TABLE_I", "SurveyRecord", "check_simulated_utilization"]
