"""Discrete-event simulation substrate (kernel, fluid resources, network)."""

from .kernel import (AllOf, AnyOf, Environment, Event, Interrupt, Process,
                     SimulationError, Timeout)
from .fluid import Flow, FluidResource, maxmin_allocate
from .flownet import (FlowNetStats, FlowNetwork, Link, NetFlow,
                      flownet_stats, progressive_fill)
from .monitor import Monitor, TimeSeries
from .rng import RngRegistry
from .select import (SolverSelector, reset_selection_log,
                     selection_snapshot, selection_summary)

__all__ = [
    "Environment", "Event", "Timeout", "Process", "AllOf", "AnyOf",
    "Interrupt", "SimulationError",
    "Flow", "FluidResource", "maxmin_allocate",
    "FlowNetwork", "Link", "NetFlow", "progressive_fill",
    "FlowNetStats", "flownet_stats",
    "SolverSelector", "reset_selection_log", "selection_snapshot",
    "selection_summary",
    "Monitor", "TimeSeries", "RngRegistry",
]
