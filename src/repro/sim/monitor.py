"""Time-series monitoring of simulated resources.

A :class:`Monitor` samples arbitrary probe callables at a fixed virtual-time
interval, mirroring the 1 Hz `sar`/`collectl`-style node monitoring the
paper's Figure 2 plots are drawn from.  Samples accumulate in plain lists;
:meth:`series` returns NumPy arrays for analysis.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .kernel import Environment

__all__ = ["Monitor", "TimeSeries"]


class TimeSeries:
    """An append-only (time, value) series with summary helpers.

    The array view is memoized and invalidated on append, so summary
    helpers (``mean``/``max``/``percentile``) called repeatedly between
    samples — the experiment runners' hot path — stop re-converting the
    full list each time.  Treat the returned arrays as read-only: they
    are shared between callers until the next append.
    """

    __slots__ = ("name", "times", "values", "_arrays")

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []
        self._arrays: tuple[np.ndarray, np.ndarray] | None = None

    def append(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)
        self._arrays = None

    def __len__(self) -> int:
        return len(self.values)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (np.asarray(self.times), np.asarray(self.values))
        return self._arrays

    def mean(self, t_start: float | None = None,
             t_end: float | None = None) -> float:
        """Average value over a window (default: the whole series)."""
        if not self.values:
            return 0.0
        t, v = self.as_arrays()
        mask = np.ones(len(t), dtype=bool)
        if t_start is not None:
            mask &= t >= t_start
        if t_end is not None:
            mask &= t <= t_end
        if not mask.any():
            return 0.0
        return float(v[mask].mean())

    def max(self) -> float:
        return float(self.as_arrays()[1].max()) if self.values else 0.0

    def last(self) -> float:
        """The most recent sample (0.0 when nothing was sampled yet) —
        the natural reading for cumulative-counter probes."""
        return float(self.values[-1]) if self.values else 0.0

    def percentile(self, q: float) -> float:
        if not self.values:
            return 0.0
        return float(np.percentile(self.as_arrays()[1], q))


class Monitor:
    """Samples a set of named probes every *interval* simulated seconds.

    Probes are zero-argument callables returning a float (e.g.
    ``lambda: nic.utilization``).  Sampling stops when :meth:`stop` is called
    or the simulation drains.
    """

    def __init__(self, env: Environment, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.env = env
        self.interval = interval
        self._probes: dict[str, Callable[[], float]] = {}
        self._multi_probes: list[tuple[tuple[str, ...],
                                       Callable[[], tuple]]] = []
        self.series: dict[str, TimeSeries] = {}
        self._running = False
        self._stopped = False

    def add_probe(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        if name in self.series:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = probe
        ts = TimeSeries(name)
        self.series[name] = ts
        return ts

    def add_probes(self, probes: dict[str, Callable[[], float]],
                   ) -> dict[str, TimeSeries]:
        """Register a group of probes at once (e.g. a counter snapshot
        fanned out per field — see ``repro.metrics.placement``)."""
        return {name: self.add_probe(name, probe)
                for name, probe in probes.items()}

    def add_multi_probe(self, names: tuple[str, ...],
                        probe: Callable[[], tuple],
                        ) -> dict[str, TimeSeries]:
        """Register one fused probe feeding several series at once.

        *probe* returns one float per name; the sampler calls it once per
        tick.  This is the cheap way to sample related quantities that
        share a traversal (e.g. per-class CPU/TX/RX read off each node's
        counters in a single pass instead of one pass per metric).
        """
        for name in names:
            if name in self.series:
                raise ValueError(f"duplicate probe {name!r}")
        out: dict[str, TimeSeries] = {}
        for name in names:
            ts = TimeSeries(name)
            self.series[name] = ts
            out[name] = ts
        self._multi_probes.append((tuple(names), probe))
        return out

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        self.env.process(self._sampler(), name="monitor")

    def stop(self) -> None:
        self._stopped = True

    def _sampler(self):
        while not self._stopped:
            t = self.env.now
            for name, probe in self._probes.items():
                self.series[name].append(t, float(probe()))
            for names, probe in self._multi_probes:
                for name, value in zip(names, probe()):
                    self.series[name].append(t, float(value))
            yield self.env.timeout(self.interval)

    def mean(self, name: str, t_start: float | None = None,
             t_end: float | None = None) -> float:
        return self.series[name].mean(t_start, t_end)
