"""Adaptive solver selection for :class:`repro.sim.FlowNetwork`.

The ``"auto"`` solver mode picks, per coalesced flush, between the two fill
strategies the network implements:

- **incremental** — BFS the dirty links' connected components and re-fill
  each component separately.  Wins when mutations touch a small fraction
  of a large graph (the Fig. 2 steady state: one write fan-out dirties a
  handful of the thousands of links).
- **full** — one whole-graph vectorized fill, no component walk.  Wins
  when a mutation burst touches most of the graph (a revocation storm
  degrading many NICs at once), where the Python BFS bookkeeping costs
  more than simply re-filling everything — the shape behind the old
  fault_storm 0.81x regression.

The heuristic reads the live mutation-burst shape: the fraction of links
dirtied since the last solve, smoothed with an EWMA so one quiet flush in
the middle of a storm does not flap the strategy.  Decisions are recorded
in a bounded in-process trace exported by ``repro.metrics.solver`` so perf
runs can audit what the selector actually did.

This module must stay import-free of ``flownet`` (flownet imports it).
"""

from __future__ import annotations

__all__ = ["SolverSelector", "selection_log", "reset_selection_log",
           "selection_snapshot", "selection_summary"]

#: Bounded decision trace: list of dicts, oldest first.  Shared across
#: networks (the flownet_stats pattern); reset per experiment run.
selection_log: list[dict] = []

_LOG_CAP = 4096
_dropped = 0


def reset_selection_log() -> None:
    global _dropped
    selection_log.clear()
    _dropped = 0


def _record(entry: dict) -> None:
    global _dropped
    if len(selection_log) >= _LOG_CAP:
        _dropped += 1
        return
    selection_log.append(entry)


def selection_snapshot() -> list[dict]:
    """The decision trace (bounded; see :func:`selection_summary`)."""
    return list(selection_log)


def selection_summary() -> dict:
    """Aggregate view: decision counts plus how many entries overflowed."""
    full = sum(1 for e in selection_log if e["decision"] == "full")
    return {
        "decisions": len(selection_log),
        "dropped": _dropped,
        "full": full,
        "incremental": len(selection_log) - full,
    }


class SolverSelector:
    """Per-flush incremental-vs-full choice from mutation-burst shape.

    *spike_frac*: a single flush dirtying at least this fraction of all
    links picks the full fill immediately (storms are obvious).
    *ewma_frac*: the smoothed dirty fraction above which sustained churn
    keeps the full fill selected between spikes.  *min_links*: at or
    below this graph size a "full" decision runs on the plain-dict
    reference fill, which beats the vectorized fill's numpy setup costs
    (measured crossover ~64 links); the decision itself stays burst-
    shape-driven, so small graphs keep coalescing and walking components
    between storms — that coalescing (fewer solves than the per-mutation
    reference) is what closes the old fault_storm regression.
    """

    __slots__ = ("spike_frac", "ewma_frac", "min_links", "alpha", "_ewma")

    def __init__(self, spike_frac: float = 0.5, ewma_frac: float = 0.4,
                 min_links: int = 64, alpha: float = 0.25):
        self.spike_frac = spike_frac
        self.ewma_frac = ewma_frac
        self.min_links = min_links
        self.alpha = alpha
        self._ewma = 0.0

    def decide(self, dirty_links: int, total_links: int,
               active_flows: int, now: float) -> str:
        """Return ``"full"`` or ``"incremental"`` for this flush."""
        frac = (dirty_links / total_links) if total_links else 1.0
        self._ewma += self.alpha * (frac - self._ewma)
        if frac >= self.spike_frac or self._ewma >= self.ewma_frac:
            decision = "full"
        else:
            decision = "incremental"
        _record({
            "t": float(now),
            "decision": decision,
            "dirty_links": int(dirty_links),
            "total_links": int(total_links),
            "active_flows": int(active_flows),
            "ewma": float(self._ewma),
        })
        return decision
