"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy.  Model
code is written as generator functions ("processes") that ``yield`` waitable
objects: :class:`Timeout`, :class:`Event`, :class:`Process`, or the
combinators :class:`AllOf` / :class:`AnyOf`.  The :class:`Environment` owns
the event calendar and advances virtual time.

The kernel is intentionally free of any domain knowledge; the cluster,
network and workload models in the sibling packages are all built on it.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The optional *cause* carries application data (e.g. an eviction notice
    from a victim node's memory-pressure monitor).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, resuming all waiting processes in FIFO order
    of registration.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (value is final and delivered)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule_event(self)
        return self

    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately so late waiters don't hang.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator; the process event triggers when the generator
    returns (success, with its return value) or raises (failure)."""

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str | None = None):
        if not isinstance(generator, Generator):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Bootstrap: start the generator at the current sim time.
        boot = Event(env)
        boot._triggered = True
        boot._ok = True
        env._schedule_event(boot)
        boot._add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"{self.name} already terminated")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        kick = Event(self.env)
        kick._triggered = True
        kick._ok = False
        kick._value = Interrupt(cause)
        # Detach from whatever we were waiting on so the stale wakeup
        # (if it later fires) is ignored.
        self._detach()
        self.env._schedule_event(kick)
        kick._add_callback(self._resume)

    def _detach(self) -> None:
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # stale wakeup after interrupt/termination
        if self._waiting_on is not None and event is not self._waiting_on \
                and not (event._ok is False and isinstance(event._value, Interrupt)):
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                exc = event._value
                target = self.generator.throw(exc)
        except StopIteration as stop:
            self.env._active_process = None
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            if not self._triggered:
                self.fail(exc)
            if not self.env._catch_process_errors:
                raise
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            self.generator.throw(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target is self:
            self.generator.throw(SimulationError(
                f"process {self.name!r} cannot wait on itself"))
            return
        self._waiting_on = target
        target._add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {'done' if self._triggered else 'alive'}>"


class _Callback(Event):
    """A pooled calendar slot that runs a bare callable when popped.

    ``Environment.call_later`` is the allocation-light sibling of
    :meth:`Environment.schedule_callback`: the fluid/flow-network layers
    reschedule their wakeup on every rebalance, so each firing would
    otherwise allocate a fresh :class:`Timeout`, a callback list and a
    wrapping lambda.  A ``_Callback`` instead owns one permanent
    callback cell and returns itself to the environment's free pool the
    moment it fires, before the user function runs — so a function that
    immediately reschedules reuses the very slot that woke it.

    The slot is *not* waitable: it never triggers and must not be
    yielded on.  Internal use only.
    """

    __slots__ = ("fn", "_cell")

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self.fn: Callable[[], None] | None = None
        self._cell = [self._fire]
        self.callbacks = self._cell

    def _fire(self, _event: Event) -> None:
        fn, self.fn = self.fn, None
        # Re-arm and return to the pool before running user code, so a
        # reschedule from inside *fn* reuses this very slot.
        self.callbacks = self._cell
        self._scheduled = False
        self.env._cb_pool.append(self)
        if fn is None:
            return  # disarmed (lazy-cancelled) slot: fire as a no-op
        fn()


class _Condition(Event):
    """Base for AllOf / AnyOf combinators over a fixed set of events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        self._pending = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev._add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed or ev.triggered}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as one child event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """Event calendar and virtual clock.

    Ties are broken by insertion order, making runs fully deterministic
    for a fixed model and seed.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        # Same-instant FIFO: every zero-delay schedule (event succeed,
        # process boot, coalescing guards) lands here instead of the heap.
        # Entries are (counter, event); their time is always the current
        # `now` because time cannot advance while the deque is non-empty
        # (step() drains it before touching any strictly-future heap
        # entry).  A 1000-node settle therefore costs O(1) deque ops per
        # wakeup instead of O(log n) heap churn per flow.
        self._nowq: deque[tuple[int, Event]] = deque()
        self._counter = itertools.count()
        self._active_process: Process | None = None
        # Process failures are delivered through the process event (so a
        # parent waiting on it — directly, via run(until=...), or through
        # AllOf/AnyOf — re-raises them) instead of tearing down the whole
        # event loop; a crashed background task must not take unrelated
        # simulation state with it.
        self._catch_process_errors = True
        # Free pool of _Callback slots for call_later (slot reuse keeps
        # the rebalance-heavy fluid layers from allocating one Timeout +
        # lambda per scheduled wakeup).
        self._cb_pool: list[_Callback] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling & running ------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        if delay == 0.0:
            self._nowq.append((next(self._counter), event))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, next(self._counter), event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run *fn* after *delay*; returns the underlying timeout event."""
        ev = self.timeout(delay)
        ev._add_callback(lambda _e: fn())
        return ev

    def call_later(self, delay: float, fn: Callable[[], None]) -> "_Callback":
        """Run *fn* after *delay* through a pooled calendar slot.

        The allocation-light variant of :meth:`schedule_callback` for hot
        reschedule loops (flow-network wakeups fire once per rate change).
        Unlike ``schedule_callback`` it returns no waitable event; a
        caller that needs to *wait* for the callback should keep using
        ``schedule_callback``.

        Returns the calendar slot.  A caller that keeps rescheduling and
        only wants its *latest* callback live may lazy-cancel the prior
        one by clearing ``slot.fn`` — but only after checking the slot
        still holds *its own* function (``slot.fn is fn``): a fired slot
        returns to the pool and may already belong to someone else.
        """
        if delay < 0:
            raise SimulationError(f"negative call_later delay: {delay}")
        pool = self._cb_pool
        cb = pool.pop() if pool else _Callback(self)
        cb.fn = fn
        cb._scheduled = True
        if delay == 0.0:
            self._nowq.append((next(self._counter), cb))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, next(self._counter), cb))
        return cb

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._nowq:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event from the calendar."""
        nowq = self._nowq
        if nowq:
            # Global (time, counter) order: a heap entry at the current
            # instant with a *smaller* counter was scheduled earlier and
            # must fire first (a timeout(0-ish) racing a succeed()).
            if self._queue and self._queue[0][0] <= self._now \
                    and self._queue[0][1] < nowq[0][0]:
                event = heapq.heappop(self._queue)[2]
            else:
                event = nowq.popleft()[1]
        else:
            if not self._queue:
                raise SimulationError("step() on an empty event calendar")
            when, _tie, event = heapq.heappop(self._queue)
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the calendar drains, a deadline passes, or an event fires.

        Returns the event's value when *until* is an :class:`Event`.
        """
        if isinstance(until, Event):
            # Same inlined dispatch as the drain loop below (one Python
            # frame per event matters); must keep the exact same
            # (time, counter) arbitration as step().
            stop = until
            nowq = self._nowq
            queue = self._queue
            pop = heapq.heappop
            while not stop.processed:
                if nowq:
                    if queue and queue[0][0] <= self._now \
                            and queue[0][1] < nowq[0][0]:
                        event = pop(queue)[2]
                    else:
                        event = nowq.popleft()[1]
                elif queue:
                    when, _tie, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event scheduled in the past")
                    self._now = when
                else:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)")
                callbacks, event.callbacks = event.callbacks, None
                for fn in callbacks:
                    fn(event)
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is in the past (now={self._now})")
        # The dispatch below inlines step() for the dominant drain loop —
        # one Python frame per event matters at 10^5 events per run.  It
        # must keep the exact same (time, counter) arbitration.
        nowq = self._nowq
        queue = self._queue
        pop = heapq.heappop
        while nowq or (queue and queue[0][0] <= deadline):
            if nowq:
                if queue and queue[0][0] <= self._now \
                        and queue[0][1] < nowq[0][0]:
                    event = pop(queue)[2]
                else:
                    event = nowq.popleft()[1]
            else:
                when, _tie, event = pop(queue)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for fn in callbacks:
                fn(event)
        if deadline != float("inf"):
            self._now = deadline
        return None
