"""Network-wide max-min fair flow model.

The DAS-5 fabric the paper runs on is FDR InfiniBand with (approximately)
full bisection bandwidth, so the only constrained elements are the node
NICs.  We model the network as a set of directed :class:`Link` capacities
(one egress and one ingress link per node, created by the cluster layer);
a :class:`NetFlow` crosses its source's egress link and its destination's
ingress link, and the classic **progressive-filling** algorithm computes the
global max-min fair rate vector every time the flow set changes.

Progressive filling: raise all unfixed flow rates at the same speed; when a
link saturates (or a flow reaches its own rate cap) freeze the flows on it;
repeat with the survivors.  The result is the unique max-min fair
allocation, which is the standard fluid approximation for TCP/IB fabric
sharing and the mechanism behind every bandwidth-contention number in the
paper (victim NIC load in Fig. 2, TeraSort shuffle slowdown in Fig. 4, ...).

Solver architecture (DESIGN.md §8 and §11)
------------------------------------------
Max-min fairness is *separable* across connected components of the
flow–link graph: a stripe write to one victim NIC cannot change rates on a
node pair it shares no link with.  :class:`FlowNetwork` exploits that two
ways:

- **Component-aware incremental solving** — an adjacency map (link → flows
  crossing it) lets a change mark only the links it touches *dirty*; the
  solve walks the dirty links' connected components and re-runs progressive
  filling on those components only, while untouched components keep their
  rates.  The full recompute is retained as the ``"reference"`` solver mode
  (and :func:`progressive_fill` stays available as a standalone oracle).
- **Batched rebalancing** — mutations (``transfer`` / ``remove`` /
  ``set_capacity``) do not solve synchronously.  They mark dirty state and
  the solve is *coalesced*: once per simulated instant via a zero-delay
  guard callback, or per explicit :meth:`FlowNetwork.batch` block.  Reading
  any rate (``flow.rate``, ``link.used_rate``, ``net.flows``) flushes
  first, so results are indistinguishable from solving eagerly — the m
  per-stripe transfers a MemFSS write fan-out issues at one timestamp cost
  one solve instead of m.

Since the struct-of-arrays refactor (DESIGN.md §11) the mutable per-flow
and per-link numbers live in slot-indexed numpy arrays owned by the
network; :class:`NetFlow` / :class:`Link` objects are handles whose
properties read the arrays while attached and scalar fallbacks once
detached (which also keeps the dict-based reference oracle working
unmodified on standalone objects).  The settle step and the per-component
fill are vectorized, with every order-sensitive float reduction
(class-byte accumulation, per-link used-rate sums) routed through
``np.add.at`` / ``np.bincount`` so it accumulates in *creation order* —
the same float sequence the per-object loops produced, keeping
trajectories bit-identical (see the summation invariant in DESIGN.md §11).

A third solver mode ``"auto"`` keeps the coalesced flush schedule and
picks, per flush, between the per-component fill and one whole-graph
vectorized fill via :class:`repro.sim.select.SolverSelector` — closing the
fault-storm shape where component bookkeeping used to cost more than
simply re-filling everything.  Process-wide :data:`flownet_stats` counters
expose solves/rounds/flows touched and the auto decisions for the perf
suite (``benchmarks/bench_perf_suite.py``).
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from typing import Iterable

import numpy as np

from .kernel import Environment, Event, SimulationError
from .select import SolverSelector

__all__ = ["Link", "NetFlow", "FlowNetwork", "progressive_fill",
           "FlowNetStats", "flownet_stats"]

_EPS = 1e-9
_PAD = -1            # padding value in per-flow link-slot rows
_INIT_FLOW_SLOTS = 32
_INIT_LINK_SLOTS = 16
_INIT_PREFIXES = 4


class FlowNetStats:
    """Process-wide solver counters (the ``planner_stats`` pattern).

    Cumulative; reset per experiment run.  ``solves`` counts coalesced
    flush/solve passes, ``full_solves`` the ones done in ``"reference"``
    mode, ``rounds`` progressive-filling iterations, ``flows_touched`` /
    ``links_touched`` the component sizes actually re-solved, and
    ``batch_coalesced`` the mutations that shared a solve with an earlier
    one instead of paying their own.  ``auto_full`` / ``auto_incremental``
    count the per-flush strategy picks of the ``"auto"`` solver.
    ``stalemates`` counts the numerical-stalemate exits of
    :func:`progressive_fill` (also warned once per process — a stalemate
    means rates are only near-fair).
    """

    _COUNTERS = ("solves", "full_solves", "rounds", "flows_touched",
                 "links_touched", "batch_coalesced", "auto_full",
                 "auto_incremental", "stalemates")
    __slots__ = _COUNTERS + ("_stalemate_warned",)

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self._stalemate_warned = False

    def record_stalemate(self) -> None:
        self.stalemates += 1
        if not self._stalemate_warned:
            self._stalemate_warned = True
            warnings.warn(
                "progressive_fill hit a numerical stalemate: no flow fixed "
                "this round; accepting near-fair rates (counted in "
                "flownet_stats.stalemates)", RuntimeWarning, stacklevel=3)

    def snapshot(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self._COUNTERS}


#: Shared instance imported by ``repro.metrics.solver`` and the benchmarks.
flownet_stats = FlowNetStats()


class Link:
    """A directed capacity (one NIC direction, or any shared pipe).

    ``class_bytes`` accumulates, per label prefix (the part of a flow's
    label before the first ``:``), the bytes that traffic class has moved
    through the link — how the tenant models measure the scavenging
    store's average pressure over a window without burst aliasing.

    While owned by a :class:`FlowNetwork` (``_slot >= 0``) the mutable
    numbers live in the network's link arrays; a standalone link (the
    equivalence suite's detached clones) uses the scalar fallbacks.
    """

    __slots__ = ("name", "_net", "_slot", "_cap_s", "_used_s", "_busy_s",
                 "_cb_s")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"link {name!r}: capacity must be positive")
        self.name = name
        self._net: FlowNetwork | None = None
        self._slot = -1
        self._cap_s = float(capacity)
        self._used_s = 0.0
        self._busy_s = 0.0
        self._cb_s: dict[str, float] = {}

    @property
    def capacity(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._l_cap[s])
        return self._cap_s

    @capacity.setter
    def capacity(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._l_cap[s] = value
        else:
            self._cap_s = float(value)

    @property
    def _used_rate(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._l_used[s])
        return self._used_s

    @_used_rate.setter
    def _used_rate(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._l_used[s] = value
        else:
            self._used_s = float(value)

    @property
    def _busy_integral(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._l_busy[s])
        return self._busy_s

    @_busy_integral.setter
    def _busy_integral(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._l_busy[s] = value
        else:
            self._busy_s = float(value)

    @property
    def class_bytes(self) -> dict[str, float]:
        """Per-class byte totals (materialized from the accumulator)."""
        net = self._net
        if net is None:
            return self._cb_s
        row = net._class_acc[self._slot]
        return {p: float(row[i]) for i, p in enumerate(net._prefixes)
                if row[i] != 0.0}

    @property
    def used_rate(self) -> float:
        """Instantaneous allocated rate (flushes a pending batched solve)."""
        net = self._net
        if net is not None and net._pending:
            net._flush()
        return self._used_rate

    @used_rate.setter
    def used_rate(self, value: float) -> None:
        self._used_rate = value

    @property
    def utilization(self) -> float:
        return self.used_rate / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self._used_rate:.3g}/{self.capacity:.3g}>"


class NetFlow:
    """A transfer crossing one or more links.

    A handle over a slot in its network's flow arrays; detached flows
    (standalone oracle clones, completed/removed flows) carry their final
    values in scalar fallbacks.
    """

    __slots__ = ("links", "work", "done", "label", "class_prefix",
                 "started_at", "finished_at", "_net", "_seq", "_slot",
                 "_rate_s", "_rem_s", "_cap_s")

    def __init__(self, env: Environment, links: tuple[Link, ...],
                 work: float | None, cap: float, label: str,
                 net: "FlowNetwork | None" = None):
        self.links = links
        self.work = work
        self._slot = -1
        self._rem_s = math.inf if work is None else float(work)
        self._cap_s = float(cap)
        self._rate_s = 0.0
        self.done: Event = env.event()
        self.label = label
        # Interned once here instead of a str.partition per flow per
        # settle (the class prefix feeds Link.class_bytes accounting).
        prefix, sep, _rest = label.partition(":")
        self.class_prefix: str | None = prefix if sep else None
        self.started_at = env.now
        self.finished_at: float | None = None
        self._net = net
        self._seq = 0  # creation order within a FlowNetwork (see _solve)

    @property
    def remaining(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._f_rem[s])
        return self._rem_s

    @remaining.setter
    def remaining(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._f_rem[s] = value
        else:
            self._rem_s = float(value)

    @property
    def cap(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._f_cap[s])
        return self._cap_s

    @cap.setter
    def cap(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._f_cap[s] = value
        else:
            self._cap_s = float(value)

    @property
    def _rate(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self._net._f_rate[s])
        return self._rate_s

    @_rate.setter
    def _rate(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self._net._f_rate[s] = value
        else:
            self._rate_s = float(value)

    @property
    def rate(self) -> float:
        """Current max-min fair rate (flushes a pending batched solve)."""
        net = self._net
        if net is not None and net._pending:
            net._flush()
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = value

    @property
    def persistent(self) -> bool:
        return self.work is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(l.name for l in self.links)
        return f"<NetFlow {self.label or path} remaining={self.remaining:.3g}>"


def progressive_fill(flows: list[NetFlow], links: Iterable[Link]) -> None:
    """Set ``flow.rate`` for every flow to the max-min fair allocation.

    The standalone oracle: one coupled fill over everything it is given,
    exactly the classic dict-based algorithm, deliberately left
    unvectorized — it is both the equivalence-suite ground truth and the
    retained pre-optimization path the ``"reference"`` solver mode times
    against.  :class:`FlowNetwork` instead fills each connected component
    separately (identical allocation — max-min fairness is separable
    across components) so that incremental and full solves agree bit for
    bit on the tracked scenarios.
    """
    for f in flows:
        f.rate = 0.0
    if not flows:
        for l in links:
            l.used_rate = 0.0
        return
    avail = {l: l.capacity for l in links}
    unfixed = set(flows)
    # Count unfixed flows per link once per round.
    guard = len(flows) + len(avail) + 2
    while unfixed and guard > 0:
        guard -= 1
        flownet_stats.rounds += 1
        counts: dict[Link, int] = {}
        for f in unfixed:
            for l in f.links:
                counts[l] = counts.get(l, 0) + 1
        delta = math.inf
        for l, n in counts.items():
            delta = min(delta, avail[l] / n)
        for f in unfixed:
            delta = min(delta, f.cap - f._rate)
        if delta < 0:
            delta = 0.0
        for f in unfixed:
            f._rate += delta
        for l, n in counts.items():
            avail[l] -= delta * n
        newly_fixed = set()
        saturated = {l for l, n in counts.items()
                     if avail[l] <= _EPS * max(l.capacity, 1.0)}
        for f in unfixed:
            if f._rate >= f.cap - _EPS or any(l in saturated for l in f.links):
                newly_fixed.add(f)
        if not newly_fixed:
            flownet_stats.record_stalemate()
            break  # numerical stalemate; rates are already near-fair
        unfixed -= newly_fixed
    for l in links:
        l._used_rate = 0.0
    for f in flows:
        for l in f.links:
            l._used_rate += f._rate


class FlowNetwork:
    """Event-driven fluid network: owns links and active flows.

    *solver* selects the solve strategy: ``"incremental"`` (default)
    re-fills only the connected components touched since the last solve;
    ``"reference"`` re-fills every component from scratch, synchronously,
    on every mutation — the retained pre-optimization path the perf suite
    times against; ``"auto"`` keeps the incremental flush schedule but
    picks per flush between the component fill and one whole-graph
    vectorized fill (see :mod:`repro.sim.select`).  All modes produce
    bit-identical trajectories on the tracked scenarios.
    """

    SOLVERS = ("incremental", "reference", "auto")

    def __init__(self, env: Environment, solver: str | None = None):
        if solver is None:
            solver = "incremental"
        if solver not in self.SOLVERS:
            raise SimulationError(f"unknown solver {solver!r}; "
                                  f"choose one of {self.SOLVERS}")
        self.env = env
        self.solver = solver
        self._selector = SolverSelector() if solver == "auto" else None
        self._links: dict[str, Link] = {}
        self._link_objs: list[Link] = []
        # -- link slot arrays (slots are never freed: topology is add-only)
        nl = _INIT_LINK_SLOTS
        self._nl = 0
        self._l_cap = np.zeros(nl)
        self._l_used = np.zeros(nl)
        self._l_busy = np.zeros(nl)
        #: class-byte accumulator [link slot, interned prefix]
        self._class_acc = np.zeros((nl, _INIT_PREFIXES))
        self._prefixes: list[str] = []
        self._prefix_idx: dict[str, int] = {}
        #: global-link-slot -> component-local index scratch; the extra
        #: trailing cell is the sentinel the _PAD entries map to.
        self._loc = np.zeros(nl + 1, dtype=np.int32)
        # -- flow slot arrays
        nf = _INIT_FLOW_SLOTS
        self._W = 4  # link-row width (verbs paths use 2, tcp uses 4)
        self._f_cap = np.zeros(nf)
        self._f_rem = np.zeros(nf)
        self._f_rate = np.zeros(nf)
        self._f_pers = np.zeros(nf, dtype=bool)
        self._f_prefix = np.full(nf, -1, dtype=np.int32)
        self._f_links = np.full((nf, self._W), _PAD, dtype=np.int32)
        self._f_deg = np.zeros(nf, dtype=np.int32)
        self._alive = np.zeros(nf, dtype=bool)
        self._objs: list[NetFlow | None] = [None] * nf
        self._seqs: list[int] = [0] * nf
        self._free = list(range(nf - 1, -1, -1))
        self._freeq: list[int] = []
        self._act = np.zeros(nf, dtype=np.int32)
        self._act_n = 0
        self._act_dead = 0
        #: adjacency: link slot -> set of active flow slots crossing it
        self._flows_of: list[set[int]] = []
        #: link slots whose component must be re-solved at the next flush
        self._dirty: set[int] = set()
        self._pending = False
        self._batch_depth = 0
        self._ops_since_flush = 0
        self._flow_seq = 0
        self._last_update = env.now
        self._wakeup_fn = self._wakeup
        self._wakeup_cb = None

    # -- topology -------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise SimulationError(f"duplicate link {name!r}")
        link = Link(name, capacity)
        s = self._nl
        if s == len(self._l_cap):
            new = s * 2
            for attr in ("_l_cap", "_l_used", "_l_busy"):
                arr = np.zeros(new)
                arr[:s] = getattr(self, attr)
                setattr(self, attr, arr)
            acc = np.zeros((new, self._class_acc.shape[1]))
            acc[:s] = self._class_acc
            self._class_acc = acc
            self._loc = np.zeros(new + 1, dtype=np.int32)
        self._l_cap[s] = link._cap_s
        self._l_used[s] = 0.0
        self._l_busy[s] = 0.0
        link._net = self
        link._slot = s
        self._nl += 1
        self._links[name] = link
        self._link_objs.append(link)
        self._flows_of.append(set())
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity and re-fair-share every flow that can
        feel it (the link's connected component).

        This is the fabric-fault primitive: a degraded NIC (or a
        partition, capacity ≈ 0) immediately slows every flow crossing the
        link, which is what makes client deadlines fire.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {link.name!r}: capacity must be positive")
        if self._links.get(link.name) is not link:
            raise SimulationError(f"link {link.name!r} not in this network")
        self._settle()
        self._l_cap[link._slot] = float(capacity)
        self._mark((link._slot,))

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._link_objs)

    @property
    def flows(self) -> tuple[NetFlow, ...]:
        if self._pending:
            self._flush()
        return tuple(self._objs[s] for s in self._active())

    # -- batching -------------------------------------------------------------
    @contextmanager
    def batch(self):
        """Coalesce every mutation inside the block into one solve.

        Use around synchronous bursts of ``transfer`` / ``remove`` /
        ``set_capacity`` calls (a stripe fan-out, a multi-link degrade).
        Blocks must not span a ``yield``: the zero-delay guard flushes at
        the current instant anyway, so holding a batch across simulated
        time buys nothing and reads inside the block still see solved
        state (reads flush).  Re-entrant.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._pending:
                self._flush()

    # -- flows ----------------------------------------------------------------
    def transfer(self, links: Iterable[Link], nbytes: float | None,
                 cap: float = math.inf, label: str = "") -> NetFlow:
        """Start a transfer across *links*; wait on ``flow.done``."""
        if cap <= 0:
            raise SimulationError("flow cap must be positive")
        self._settle()
        path = tuple(links)
        if not path:
            raise SimulationError("a flow needs at least one link")
        for l in path:
            if self._links.get(l.name) is not l:
                raise SimulationError(f"link {l.name!r} not in this network")
        flow = NetFlow(self.env, path, nbytes, cap, label, net=self)
        flow._seq = self._flow_seq
        self._flow_seq += 1
        if flow._rem_s <= _EPS and not flow.persistent:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._attach(flow)
        s = flow._slot
        for l in path:
            self._flows_of[l._slot].add(s)
        self._mark([l._slot for l in path])
        return flow

    def remove(self, flow: NetFlow) -> float:
        """Withdraw a flow; returns remaining work."""
        self._settle()
        if flow._net is not self or flow._slot < 0:
            return 0.0
        s = flow._slot
        remaining = float(self._f_rem[s])
        for l in flow.links:
            self._flows_of[l._slot].discard(s)
        self._detach(flow)
        flow._rem_s = remaining
        if not flow.persistent and not flow.done.triggered:
            flow.done.fail(SimulationError(f"flow {flow.label!r} cancelled"))
        self._mark([l._slot for l in flow.links])
        return remaining

    def consume(self, links: Iterable[Link], nbytes: float,
                cap: float = math.inf, label: str = ""):
        """``yield from``-able: transfer and wait, withdrawing on interrupt."""
        flow = self.transfer(links, nbytes, cap, label)
        try:
            yield flow.done
        except BaseException:
            # Route through remove() so the interrupted flow's byte
            # integrals and class_bytes are settled before it vanishes
            # (popping it raw silently lost everything accrued since the
            # last update).
            self.remove(flow)
            raise
        return flow

    def busy_time(self, link: Link) -> float:
        """Capacity-normalized busy integral of *link*."""
        self._settle()
        return float(self._l_busy[link._slot]) / float(self._l_cap[link._slot])

    def settle(self) -> None:
        """Bring byte integrals up to the current time (for probes)."""
        self._settle()

    # -- flow slot machinery ---------------------------------------------------
    def _active(self) -> np.ndarray:
        """Active flow slots in creation order (tombstones filtered)."""
        a = self._act[: self._act_n]
        if self._act_dead:
            a = a[self._alive[a]]
        return a

    def _compact(self) -> None:
        """Drop tombstones from ``_act`` and promote quarantined slots.

        Only after compaction may a freed slot be reused: until then a
        stale ``_act`` entry still references it, and reusing it would
        resurrect the entry as a duplicate of the new flow.
        """
        a = self._active()
        n = len(a)
        self._act[:n] = a
        self._act_n = n
        self._act_dead = 0
        self._free.extend(self._freeq)
        self._freeq.clear()

    def _grow_flows(self) -> None:
        old = len(self._objs)
        new = old * 2
        for name in ("_f_cap", "_f_rem", "_f_rate"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        for name in ("_f_pers", "_alive"):
            arr = np.zeros(new, dtype=bool)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        pref = np.full(new, -1, dtype=np.int32)
        pref[:old] = self._f_prefix
        self._f_prefix = pref
        rows = np.full((new, self._W), _PAD, dtype=np.int32)
        rows[:old] = self._f_links
        self._f_links = rows
        deg = np.zeros(new, dtype=np.int32)
        deg[:old] = self._f_deg
        self._f_deg = deg
        self._objs.extend([None] * (new - old))
        self._seqs.extend([0] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _widen_rows(self, width: int) -> None:
        rows = np.full((len(self._objs), width), _PAD, dtype=np.int32)
        rows[:, : self._W] = self._f_links
        self._f_links = rows
        self._W = width

    def _intern_prefix(self, prefix: str) -> int:
        idx = self._prefix_idx.get(prefix)
        if idx is None:
            idx = len(self._prefixes)
            if idx == self._class_acc.shape[1]:
                acc = np.zeros((self._class_acc.shape[0], idx * 2))
                acc[:, :idx] = self._class_acc
                self._class_acc = acc
            self._prefix_idx[prefix] = idx
            self._prefixes.append(prefix)
        return idx

    def _attach(self, flow: NetFlow) -> None:
        if not self._free:
            self._compact()
            if not self._free:
                self._grow_flows()
        s = self._free.pop()
        flow._slot = s
        deg = len(flow.links)
        if deg > self._W:
            self._widen_rows(deg)
        self._f_cap[s] = flow._cap_s
        self._f_rem[s] = flow._rem_s
        self._f_rate[s] = 0.0
        self._f_pers[s] = flow.work is None
        self._f_prefix[s] = (-1 if flow.class_prefix is None
                             else self._intern_prefix(flow.class_prefix))
        self._f_links[s, :deg] = [l._slot for l in flow.links]
        self._f_links[s, deg:] = _PAD
        self._f_deg[s] = deg
        self._alive[s] = True
        self._objs[s] = flow
        self._seqs[s] = flow._seq
        if self._act_n == len(self._act):
            if self._act_dead > len(self._act) // 2:
                self._compact()
            else:
                act = np.zeros(len(self._act) * 2, dtype=np.int32)
                act[: self._act_n] = self._act[: self._act_n]
                self._act = act
        self._act[self._act_n] = s
        self._act_n += 1

    def _detach(self, flow: NetFlow) -> None:
        """Array-side teardown: copy state to scalars, tombstone the slot.

        Tombstones are inert in the vectorized settle (rate pinned to
        0.0, and ``x - 0.0 == x`` / ``x + 0.0 == x`` bitwise), so the
        ``_act`` buffer is compacted lazily.
        """
        s = flow._slot
        flow._cap_s = float(self._f_cap[s])
        flow._rem_s = float(self._f_rem[s])
        flow._rate_s = 0.0
        flow._slot = -1
        self._alive[s] = False
        self._f_rate[s] = 0.0
        self._objs[s] = None
        self._freeq.append(s)
        self._act_dead += 1

    # -- internals --------------------------------------------------------------
    def _mark(self, link_slots: Iterable[int]) -> None:
        """Mark link slots dirty and arrange for a coalesced solve."""
        self._dirty.update(link_slots)
        self._ops_since_flush += 1
        if self.solver == "reference":
            # Pre-PR behavior, retained for the perf suite: solve
            # synchronously on every mutation, no coalescing (batch()
            # blocks are deliberately ignored).
            self._pending = True
            self._flush()
            return
        if not self._pending:
            self._pending = True
            # Zero-delay guard: the solve happens at this same simulated
            # instant, after every other mutation queued at it — the
            # automatic same-timestamp batching that makes a stripe
            # fan-out cost one solve.  Scheduled even under batch() as a
            # safety net (a no-op if the batch already flushed).
            self.env.call_later(0.0, self._guard)

    def _guard(self) -> None:
        if self._pending:
            self._flush()

    def _settle(self) -> None:
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            return
        # Work drain: identical elementwise float sequence as the old
        # per-flow loop (remaining -= rate*dt, clamp at zero); persistent
        # flows subtract exactly 0.0 so their inf remaining is untouched.
        drain = np.where(self._f_pers, 0.0, self._f_rate * dt)
        np.subtract(self._f_rem, drain, out=self._f_rem)
        np.maximum(self._f_rem, 0.0, out=self._f_rem)
        # Class-byte accounting must accumulate in creation order (float
        # addition order is observable); the raw _act buffer is creation
        # ordered and its tombstones contribute exactly 0.0.  np.add.at
        # applies repeated indices sequentially in input order.
        aw = self._act[: self._act_n]
        if len(aw):
            pf = self._f_prefix[aw]
            sel = pf >= 0
            if sel.any():
                fs = aw[sel]
                moved = np.repeat(self._f_rate[fs] * dt, self._W)
                lf = self._f_links[fs].ravel()
                ok = lf >= 0
                np.add.at(self._class_acc,
                          (lf[ok], np.repeat(pf[sel], self._W)[ok]),
                          moved[ok])
        nl = self._nl
        self._l_busy[:nl] += self._l_used[:nl] * dt
        self._last_update = now

    def _fill_vec(self, fs: np.ndarray, ls: np.ndarray,
                  stats: FlowNetStats) -> None:
        """Vectorized progressive filling over one closed flow–link set.

        *fs* must be in creation (seq) order; *ls* order is free (only
        min-reductions and elementwise updates touch links, and the
        per-link used-rate writeback accumulates in flow order via
        bincount).  Computes the identical float sequence as the classic
        per-object algorithm — see DESIGN.md §11.
        """
        nf = len(fs)
        nl = len(ls)
        stats.flows_touched += nf
        stats.links_touched += nl
        if nf == 0:
            self._l_used[ls] = 0.0
            return
        loc = self._loc
        loc[ls] = np.arange(nl, dtype=np.int32)
        loc[len(loc) - 1] = nl  # _PAD rows resolve to the sentinel column
        rows = loc[self._f_links[fs]]          # nf × W local link ids
        flat = rows.ravel()
        caps = self._f_cap[fs]
        rates = np.zeros(nf)
        avail = self._l_cap[ls].copy()
        sat_eps = _EPS * np.maximum(avail, 1.0)
        unf = np.ones(nf, dtype=bool)
        guard = nf + nl + 2
        while unf.any() and guard > 0:
            guard -= 1
            stats.rounds += 1
            counts = np.bincount(rows[unf].ravel(), minlength=nl + 1)[:nl]
            lm = counts > 0
            delta = np.inf
            if lm.any():
                delta = (avail[lm] / counts[lm]).min()
            # fmin skips NaN headrooms exactly like the scalar `if d <
            # delta` comparison does.
            delta = float(np.fmin.reduce(caps[unf] - rates[unf],
                                         initial=delta))
            if delta < 0:
                delta = 0.0
            rates[unf] += delta
            avail[lm] -= delta * counts[lm]
            saturated = np.zeros(nl + 1, dtype=bool)
            saturated[:nl] = lm & (avail <= sat_eps)
            newly = unf & ((rates >= caps - _EPS) | saturated[rows].any(axis=1))
            if not newly.any():
                stats.record_stalemate()
                break  # numerical stalemate; rates are already near-fair
            unf &= ~newly
        self._f_rate[fs] = rates
        # Per-link used-rate: bincount accumulates weights sequentially in
        # input order == flow creation order, matching the scalar loop.
        used = np.bincount(flat, weights=np.repeat(rates, self._W),
                           minlength=nl + 1)[:nl]
        self._l_used[ls] = used

    def _solve(self, a: np.ndarray) -> None:
        """Re-fill the dirty components (or everything, per solver mode).

        *a* is the active flow slots in creation order.
        """
        stats = flownet_stats
        if self.solver == "reference":
            # The verbatim pre-PR solver: one coupled dict-based fill over
            # every flow and every link.  (Bit-equal to the per-component
            # fill below whenever the round-delta schedule coincides — the
            # golden tests and the perf suite assert trajectory identity
            # on the tracked scenarios.)
            stats.full_solves += 1
            stats.flows_touched += len(a)
            stats.links_touched += self._nl
            self._dirty.clear()
            progressive_fill([self._objs[s] for s in a], self._link_objs)
            return
        if not self._dirty:
            return
        if self.solver == "auto":
            decision = self._selector.decide(
                len(self._dirty), self._nl, len(a), self.env.now)
            if decision == "full":
                # One whole-graph coupled fill, skipping the component
                # walk.  Below the selector's min_links the reference
                # dict fill wins (vector setup costs more than the whole
                # computation there); above it, the vectorized fill does.
                # Both compute the identical float sequence.
                stats.auto_full += 1
                stats.full_solves += 1
                self._dirty.clear()
                if self._nl <= self._selector.min_links:
                    stats.flows_touched += len(a)
                    stats.links_touched += self._nl
                    progressive_fill([self._objs[s] for s in a],
                                     self._link_objs)
                else:
                    self._fill_vec(a, np.arange(self._nl, dtype=np.int32),
                                   stats)
                return
            stats.auto_incremental += 1
        todo = list(self._dirty)
        self._dirty.clear()
        flows_of = self._flows_of
        f_links = self._f_links
        f_deg = self._f_deg
        seqs = self._seqs
        seen: set[int] = set()
        for seed in todo:
            if seed in seen:
                continue
            # Walk this connected component of the flow–link graph.
            comp_links = [seed]
            comp_flows: list[int] = []
            seen_flows: set[int] = set()
            seen.add(seed)
            stack = [seed]
            while stack:
                li = stack.pop()
                for fslot in flows_of[li]:
                    if fslot not in seen_flows:
                        seen_flows.add(fslot)
                        comp_flows.append(fslot)
                        row = f_links[fslot]
                        for k in range(f_deg[fslot]):
                            lj = int(row[k])
                            if lj not in seen:
                                seen.add(lj)
                                comp_links.append(lj)
                                stack.append(lj)
            # Canonical creation order: BFS discovery order depends on set
            # iteration, and the float sum behind each link's used_rate
            # must be run-to-run and mode-to-mode deterministic.
            comp_flows.sort(key=seqs.__getitem__)
            self._fill_vec(np.asarray(comp_flows, dtype=np.int32),
                           np.asarray(comp_links, dtype=np.int32), stats)

    def _flush(self) -> None:
        """Coalesced settle + solve + completion drain + wakeup."""
        self._pending = False
        stats = flownet_stats
        stats.solves += 1
        if self._ops_since_flush > 1:
            stats.batch_coalesced += self._ops_since_flush - 1
        self._ops_since_flush = 0
        now = self.env.now
        # Completions below the float clock's resolution at `now` must
        # drain immediately to avoid a zero-advance wakeup spin (see
        # FluidResource._rebalance).
        min_dt = max(math.nextafter(now, math.inf) - now, 1e-12)
        dirty = self._dirty
        flows_of = self._flows_of
        while True:
            a = self._active()
            if len(a):
                fin = ~self._f_pers[a] & (self._f_rem[a] <= _EPS)
                if fin.any():
                    for s in a[fin]:  # creation order, like the old scan
                        flow = self._objs[s]
                        si = int(s)
                        for l in flow.links:
                            flows_of[l._slot].discard(si)
                            dirty.add(l._slot)
                        self._detach(flow)
                        flow._rem_s = 0.0
                        flow.finished_at = now
                        flow.done.succeed(flow)
                    a = self._active()
            self._solve(a)
            horizon = math.inf
            if len(a):
                rate_a = self._f_rate[a]
                m = (rate_a > 0) & ~self._f_pers[a]
                if m.any():
                    h = self._f_rem[a[m]] / rate_a[m]
                    horizon = float(h.min())
                    if horizon < min_dt:
                        # Sub-resolution completions: drain them at the
                        # current instant.
                        self._f_rem[a[m][h < min_dt]] = 0.0
                        continue
            break
        cb = self._wakeup_cb
        if cb is not None and cb.fn is self._wakeup_fn:
            # Lazy-cancel the superseded wakeup (identity-checked: a
            # fired slot returns to the pool and may belong to another
            # scheduler by now).
            cb.fn = None
        self._wakeup_cb = (self.env.call_later(horizon, self._wakeup_fn)
                           if horizon != math.inf else None)

    # Kept under its historical name for the sibling FluidResource's sake:
    # a flush *is* the rebalance, now coalesced.
    _rebalance = _flush

    def _wakeup(self) -> None:
        self._settle()
        self._flush()
