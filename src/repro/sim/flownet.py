"""Network-wide max-min fair flow model.

The DAS-5 fabric the paper runs on is FDR InfiniBand with (approximately)
full bisection bandwidth, so the only constrained elements are the node
NICs.  We model the network as a set of directed :class:`Link` capacities
(one egress and one ingress link per node, created by the cluster layer);
a :class:`NetFlow` crosses its source's egress link and its destination's
ingress link, and the classic **progressive-filling** algorithm computes the
global max-min fair rate vector every time the flow set changes.

Progressive filling: raise all unfixed flow rates at the same speed; when a
link saturates (or a flow reaches its own rate cap) freeze the flows on it;
repeat with the survivors.  The result is the unique max-min fair
allocation, which is the standard fluid approximation for TCP/IB fabric
sharing and the mechanism behind every bandwidth-contention number in the
paper (victim NIC load in Fig. 2, TeraSort shuffle slowdown in Fig. 4, ...).

Solver architecture (DESIGN.md §8)
----------------------------------
Max-min fairness is *separable* across connected components of the
flow–link graph: a stripe write to one victim NIC cannot change rates on a
node pair it shares no link with.  :class:`FlowNetwork` exploits that two
ways:

- **Component-aware incremental solving** — an adjacency map (link → flows
  crossing it) lets a change mark only the links it touches *dirty*; the
  solve walks the dirty links' connected components and re-runs progressive
  filling on those components only, while untouched components keep their
  rates.  The full recompute is retained as the ``"reference"`` solver mode
  (and :func:`progressive_fill` stays available as a standalone oracle).
- **Batched rebalancing** — mutations (``transfer`` / ``remove`` /
  ``set_capacity``) do not solve synchronously.  They mark dirty state and
  the solve is *coalesced*: once per simulated instant via a zero-delay
  guard callback, or per explicit :meth:`FlowNetwork.batch` block.  Reading
  any rate (``flow.rate``, ``link.used_rate``, ``net.flows``) flushes
  first, so results are indistinguishable from solving eagerly — the m
  per-stripe transfers a MemFSS write fan-out issues at one timestamp cost
  one solve instead of m.

Both solver modes share the identical flush schedule and fill arithmetic
(per-component progressive filling), so their simulated trajectories are
bit-identical; only the amount of work per solve differs.  Process-wide
:data:`flownet_stats` counters expose solves/rounds/flows touched for the
perf suite (``benchmarks/bench_perf_suite.py``).
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from typing import Iterable

from .kernel import Environment, Event, SimulationError

__all__ = ["Link", "NetFlow", "FlowNetwork", "progressive_fill",
           "FlowNetStats", "flownet_stats"]

_EPS = 1e-9


class FlowNetStats:
    """Process-wide solver counters (the ``planner_stats`` pattern).

    Cumulative; reset per experiment run.  ``solves`` counts coalesced
    flush/solve passes, ``full_solves`` the ones done in ``"reference"``
    mode, ``rounds`` progressive-filling iterations, ``flows_touched`` /
    ``links_touched`` the component sizes actually re-solved, and
    ``batch_coalesced`` the mutations that shared a solve with an earlier
    one instead of paying their own.  ``stalemates`` counts the
    numerical-stalemate exits of :func:`progressive_fill` (also warned
    once per process — a stalemate means rates are only near-fair).
    """

    _COUNTERS = ("solves", "full_solves", "rounds", "flows_touched",
                 "links_touched", "batch_coalesced", "stalemates")
    __slots__ = _COUNTERS + ("_stalemate_warned",)

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self._stalemate_warned = False

    def record_stalemate(self) -> None:
        self.stalemates += 1
        if not self._stalemate_warned:
            self._stalemate_warned = True
            warnings.warn(
                "progressive_fill hit a numerical stalemate: no flow fixed "
                "this round; accepting near-fair rates (counted in "
                "flownet_stats.stalemates)", RuntimeWarning, stacklevel=3)

    def snapshot(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self._COUNTERS}


#: Shared instance imported by ``repro.metrics.solver`` and the benchmarks.
flownet_stats = FlowNetStats()


class Link:
    """A directed capacity (one NIC direction, or any shared pipe).

    ``class_bytes`` accumulates, per label prefix (the part of a flow's
    label before the first ``:``), the bytes that traffic class has moved
    through the link — how the tenant models measure the scavenging
    store's average pressure over a window without burst aliasing.
    """

    __slots__ = ("name", "capacity", "_busy_integral", "_used_rate",
                 "class_bytes", "_net")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"link {name!r}: capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self._used_rate = 0.0
        self._busy_integral = 0.0
        self.class_bytes: dict[str, float] = {}
        self._net: FlowNetwork | None = None

    @property
    def used_rate(self) -> float:
        """Instantaneous allocated rate (flushes a pending batched solve)."""
        net = self._net
        if net is not None and net._pending:
            net._flush()
        return self._used_rate

    @used_rate.setter
    def used_rate(self, value: float) -> None:
        self._used_rate = value

    @property
    def utilization(self) -> float:
        return self.used_rate / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self._used_rate:.3g}/{self.capacity:.3g}>"


class NetFlow:
    """A transfer crossing one or more links."""

    __slots__ = ("links", "work", "remaining", "cap", "_rate", "done",
                 "label", "class_prefix", "started_at", "finished_at",
                 "_net", "_seq")

    def __init__(self, env: Environment, links: tuple[Link, ...],
                 work: float | None, cap: float, label: str,
                 net: "FlowNetwork | None" = None):
        self.links = links
        self.work = work
        self.remaining = math.inf if work is None else float(work)
        self.cap = float(cap)
        self._rate = 0.0
        self.done: Event = env.event()
        self.label = label
        # Interned once here instead of a str.partition per flow per
        # settle (the class prefix feeds Link.class_bytes accounting).
        prefix, sep, _rest = label.partition(":")
        self.class_prefix: str | None = prefix if sep else None
        self.started_at = env.now
        self.finished_at: float | None = None
        self._net = net
        self._seq = 0  # creation order within a FlowNetwork (see _solve)

    @property
    def rate(self) -> float:
        """Current max-min fair rate (flushes a pending batched solve)."""
        net = self._net
        if net is not None and net._pending:
            net._flush()
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = value

    @property
    def persistent(self) -> bool:
        return self.work is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(l.name for l in self.links)
        return f"<NetFlow {self.label or path} remaining={self.remaining:.3g}>"


def _fill_component(flows: list[NetFlow], links: list[Link],
                    stats: FlowNetStats) -> None:
    """Progressive filling over one (closed) flow–link component.

    Sets ``flow._rate`` / ``link._used_rate``.  Same arithmetic as the
    classic algorithm but with the per-round dict-of-Link counting
    replaced by precomputed link index arrays — every delta, saturation
    threshold and fixing test computes the identical float sequence, so
    the rates match :func:`progressive_fill` bit for bit on a connected
    graph.
    """
    for f in flows:
        f._rate = 0.0
    if not flows:
        for l in links:
            l._used_rate = 0.0
        return
    nlinks = len(links)
    index = {}
    avail = [0.0] * nlinks
    sat_eps = [0.0] * nlinks
    for i, l in enumerate(links):
        index[l] = i
        avail[i] = l.capacity
        sat_eps[i] = _EPS * max(l.capacity, 1.0)
    fidx = [tuple(index[l] for l in f.links) for f in flows]
    stats.flows_touched += len(flows)
    stats.links_touched += nlinks
    unfixed = list(range(len(flows)))
    guard = len(flows) + nlinks + 2
    while unfixed and guard > 0:
        guard -= 1
        stats.rounds += 1
        counts = [0] * nlinks
        for i in unfixed:
            for li in fidx[i]:
                counts[li] += 1
        delta = math.inf
        for li in range(nlinks):
            n = counts[li]
            if n:
                d = avail[li] / n
                if d < delta:
                    delta = d
        for i in unfixed:
            f = flows[i]
            d = f.cap - f._rate
            if d < delta:
                delta = d
        if delta < 0:
            delta = 0.0
        for i in unfixed:
            flows[i]._rate += delta
        saturated = [False] * nlinks
        for li in range(nlinks):
            n = counts[li]
            if n:
                avail[li] -= delta * n
                if avail[li] <= sat_eps[li]:
                    saturated[li] = True
        survivors = []
        for i in unfixed:
            f = flows[i]
            if f._rate >= f.cap - _EPS:
                continue
            fixed = False
            for li in fidx[i]:
                if saturated[li]:
                    fixed = True
                    break
            if not fixed:
                survivors.append(i)
        if len(survivors) == len(unfixed):
            stats.record_stalemate()
            break  # numerical stalemate; rates are already near-fair
        unfixed = survivors
    used = [0.0] * nlinks
    for i, f in enumerate(flows):
        r = f._rate
        for li in fidx[i]:
            used[li] += r
    for li in range(nlinks):
        links[li]._used_rate = used[li]


def progressive_fill(flows: list[NetFlow], links: Iterable[Link]) -> None:
    """Set ``flow.rate`` for every flow to the max-min fair allocation.

    The standalone oracle: one coupled fill over everything it is given,
    exactly the classic algorithm.  :class:`FlowNetwork` instead fills
    each connected component separately (identical allocation — max-min
    fairness is separable across components) so that incremental and
    full solves agree bit for bit; this entry point is kept for direct
    use and for the equivalence test suite.
    """
    for f in flows:
        f.rate = 0.0
    if not flows:
        for l in links:
            l.used_rate = 0.0
        return
    avail = {l: l.capacity for l in links}
    unfixed = set(flows)
    # Count unfixed flows per link once per round.
    guard = len(flows) + len(avail) + 2
    while unfixed and guard > 0:
        guard -= 1
        flownet_stats.rounds += 1
        counts: dict[Link, int] = {}
        for f in unfixed:
            for l in f.links:
                counts[l] = counts.get(l, 0) + 1
        delta = math.inf
        for l, n in counts.items():
            delta = min(delta, avail[l] / n)
        for f in unfixed:
            delta = min(delta, f.cap - f._rate)
        if delta < 0:
            delta = 0.0
        for f in unfixed:
            f._rate += delta
        for l, n in counts.items():
            avail[l] -= delta * n
        newly_fixed = set()
        saturated = {l for l, n in counts.items()
                     if avail[l] <= _EPS * max(l.capacity, 1.0)}
        for f in unfixed:
            if f._rate >= f.cap - _EPS or any(l in saturated for l in f.links):
                newly_fixed.add(f)
        if not newly_fixed:
            flownet_stats.record_stalemate()
            break  # numerical stalemate; rates are already near-fair
        unfixed -= newly_fixed
    for l in links:
        l._used_rate = 0.0
    for f in flows:
        for l in f.links:
            l._used_rate += f._rate


class FlowNetwork:
    """Event-driven fluid network: owns links and active flows.

    *solver* selects the solve strategy: ``"incremental"`` (default)
    re-fills only the connected components touched since the last solve;
    ``"reference"`` re-fills every component from scratch on every solve
    — the retained pre-optimization path the perf suite times against.
    Both produce bit-identical trajectories.
    """

    SOLVERS = ("incremental", "reference")

    def __init__(self, env: Environment, solver: str | None = None):
        if solver is None:
            solver = "incremental"
        if solver not in self.SOLVERS:
            raise SimulationError(f"unknown solver {solver!r}; "
                                  f"choose one of {self.SOLVERS}")
        self.env = env
        self.solver = solver
        self._links: dict[str, Link] = {}
        self._flows: list[NetFlow] = []
        #: adjacency: link -> set of active flows crossing it
        self._flows_of: dict[Link, set[NetFlow]] = {}
        #: links whose component must be re-solved at the next flush
        self._dirty: set[Link] = set()
        self._pending = False
        self._batch_depth = 0
        self._ops_since_flush = 0
        self._flow_seq = 0
        self._last_update = env.now
        self._wakeup_token = 0

    # -- topology -------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise SimulationError(f"duplicate link {name!r}")
        link = Link(name, capacity)
        link._net = self
        self._links[name] = link
        self._flows_of[link] = set()
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity and re-fair-share every flow that can
        feel it (the link's connected component).

        This is the fabric-fault primitive: a degraded NIC (or a
        partition, capacity ≈ 0) immediately slows every flow crossing the
        link, which is what makes client deadlines fire.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {link.name!r}: capacity must be positive")
        if self._links.get(link.name) is not link:
            raise SimulationError(f"link {link.name!r} not in this network")
        self._settle()
        link.capacity = float(capacity)
        self._mark((link,))

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    @property
    def flows(self) -> tuple[NetFlow, ...]:
        if self._pending:
            self._flush()
        return tuple(self._flows)

    # -- batching -------------------------------------------------------------
    @contextmanager
    def batch(self):
        """Coalesce every mutation inside the block into one solve.

        Use around synchronous bursts of ``transfer`` / ``remove`` /
        ``set_capacity`` calls (a stripe fan-out, a multi-link degrade).
        Blocks must not span a ``yield``: the zero-delay guard flushes at
        the current instant anyway, so holding a batch across simulated
        time buys nothing and reads inside the block still see solved
        state (reads flush).  Re-entrant.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._pending:
                self._flush()

    # -- flows ----------------------------------------------------------------
    def transfer(self, links: Iterable[Link], nbytes: float | None,
                 cap: float = math.inf, label: str = "") -> NetFlow:
        """Start a transfer across *links*; wait on ``flow.done``."""
        if cap <= 0:
            raise SimulationError("flow cap must be positive")
        self._settle()
        path = tuple(links)
        if not path:
            raise SimulationError("a flow needs at least one link")
        for l in path:
            if self._links.get(l.name) is not l:
                raise SimulationError(f"link {l.name!r} not in this network")
        flow = NetFlow(self.env, path, nbytes, cap, label, net=self)
        flow._seq = self._flow_seq
        self._flow_seq += 1
        if flow.remaining <= _EPS and not flow.persistent:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._flows.append(flow)
        for l in path:
            self._flows_of[l].add(flow)
        self._mark(path)
        return flow

    def remove(self, flow: NetFlow) -> float:
        """Withdraw a flow; returns remaining work."""
        self._settle()
        if flow not in self._flows:
            return 0.0
        self._flows.remove(flow)
        for l in flow.links:
            self._flows_of[l].discard(flow)
        remaining = flow.remaining
        flow._rate = 0.0
        if not flow.persistent and not flow.done.triggered:
            flow.done.fail(SimulationError(f"flow {flow.label!r} cancelled"))
        self._mark(flow.links)
        return remaining

    def consume(self, links: Iterable[Link], nbytes: float,
                cap: float = math.inf, label: str = ""):
        """``yield from``-able: transfer and wait, withdrawing on interrupt."""
        flow = self.transfer(links, nbytes, cap, label)
        try:
            yield flow.done
        except BaseException:
            # Route through remove() so the interrupted flow's byte
            # integrals and class_bytes are settled before it vanishes
            # (popping it raw silently lost everything accrued since the
            # last update).
            self.remove(flow)
            raise
        return flow

    def busy_time(self, link: Link) -> float:
        """Capacity-normalized busy integral of *link*."""
        self._settle()
        return link._busy_integral / link.capacity

    def settle(self) -> None:
        """Bring byte integrals up to the current time (for probes)."""
        self._settle()

    # -- internals --------------------------------------------------------------
    def _mark(self, links: Iterable[Link]) -> None:
        """Mark *links* dirty and arrange for a coalesced solve."""
        self._dirty.update(links)
        self._ops_since_flush += 1
        if self.solver == "reference":
            # Pre-PR behavior, retained for the perf suite: solve
            # synchronously on every mutation, no coalescing (batch()
            # blocks are deliberately ignored).
            self._pending = True
            self._flush()
            return
        if not self._pending:
            self._pending = True
            # Zero-delay guard: the solve happens at this same simulated
            # instant, after every other mutation queued at it — the
            # automatic same-timestamp batching that makes a stripe
            # fan-out cost one solve.  Scheduled even under batch() as a
            # safety net (a no-op if the batch already flushed).
            self.env.call_later(0.0, self._guard)

    def _guard(self) -> None:
        if self._pending:
            self._flush()

    def _settle(self) -> None:
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            return
        for f in self._flows:
            rate = f._rate
            if rate > 0:
                if not f.persistent:
                    f.remaining -= rate * dt
                    if f.remaining < 0:
                        f.remaining = 0.0
                prefix = f.class_prefix
                if prefix is not None:
                    moved = rate * dt
                    for l in f.links:
                        cb = l.class_bytes
                        cb[prefix] = cb.get(prefix, 0.0) + moved
        for l in self._links.values():
            ur = l._used_rate
            if ur:
                l._busy_integral += ur * dt
        self._last_update = now

    def _solve(self) -> None:
        """Re-fill the dirty components (or everything, in reference mode)."""
        stats = flownet_stats
        if self.solver == "reference":
            # The verbatim pre-PR solver: one coupled dict-based fill over
            # every flow and every link.  (Bit-equal to the per-component
            # fill below whenever the round-delta schedule coincides — the
            # golden tests and the perf suite assert trajectory identity
            # on the tracked scenarios.)
            stats.full_solves += 1
            stats.flows_touched += len(self._flows)
            stats.links_touched += len(self._links)
            self._dirty.clear()
            progressive_fill(self._flows, self._links.values())
            return
        if not self._dirty:
            return
        todo = list(self._dirty)
        self._dirty.clear()
        flows_of = self._flows_of
        seen: set[Link] = set()
        for seed in todo:
            if seed in seen:
                continue
            # Walk this connected component of the flow–link graph.
            comp_links = [seed]
            comp_flows: list[NetFlow] = []
            seen_flows: set[NetFlow] = set()
            seen.add(seed)
            stack = [seed]
            while stack:
                link = stack.pop()
                for f in flows_of[link]:
                    if f not in seen_flows:
                        seen_flows.add(f)
                        comp_flows.append(f)
                        for l in f.links:
                            if l not in seen:
                                seen.add(l)
                                comp_links.append(l)
                                stack.append(l)
            # Canonical creation order: BFS discovery order depends on set
            # iteration (id-hashed), and the float sum behind each link's
            # used_rate must be run-to-run and mode-to-mode deterministic.
            comp_flows.sort(key=lambda f: f._seq)
            _fill_component(comp_flows, comp_links, stats)

    def _flush(self) -> None:
        """Coalesced settle + solve + completion drain + wakeup."""
        self._pending = False
        stats = flownet_stats
        stats.solves += 1
        if self._ops_since_flush > 1:
            stats.batch_coalesced += self._ops_since_flush - 1
        self._ops_since_flush = 0
        now = self.env.now
        # Completions below the float clock's resolution at `now` must
        # drain immediately to avoid a zero-advance wakeup spin (see
        # FluidResource._rebalance).
        min_dt = max(math.nextafter(now, math.inf) - now, 1e-12)
        dirty = self._dirty
        flows_of = self._flows_of
        while True:
            finished = [f for f in self._flows
                        if not f.persistent and f.remaining <= _EPS]
            for f in finished:
                self._flows.remove(f)
                for l in f.links:
                    flows_of[l].discard(f)
                dirty.update(f.links)
                f._rate = 0.0
                f.remaining = 0.0
                f.finished_at = now
                f.done.succeed(f)
            self._solve()
            horizon = math.inf
            for f in self._flows:
                rate = f._rate
                if rate > 0 and not f.persistent:
                    h = f.remaining / rate
                    if h < horizon:
                        horizon = h
            if horizon >= min_dt or horizon is math.inf:
                break
            for f in self._flows:
                rate = f._rate
                if (not f.persistent and rate > 0
                        and f.remaining / rate < min_dt):
                    f.remaining = 0.0
        self._wakeup_token += 1
        token = self._wakeup_token
        if horizon is not math.inf:
            self.env.call_later(horizon, lambda: self._on_wakeup(token))

    # Kept under its historical name for the sibling FluidResource's sake:
    # a flush *is* the rebalance, now coalesced.
    _rebalance = _flush

    def _on_wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return
        self._settle()
        self._flush()
