"""Network-wide max-min fair flow model.

The DAS-5 fabric the paper runs on is FDR InfiniBand with (approximately)
full bisection bandwidth, so the only constrained elements are the node
NICs.  We model the network as a set of directed :class:`Link` capacities
(one egress and one ingress link per node, created by the cluster layer);
a :class:`NetFlow` crosses its source's egress link and its destination's
ingress link, and the classic **progressive-filling** algorithm computes the
global max-min fair rate vector every time the flow set changes.

Progressive filling: raise all unfixed flow rates at the same speed; when a
link saturates (or a flow reaches its own rate cap) freeze the flows on it;
repeat with the survivors.  The result is the unique max-min fair
allocation, which is the standard fluid approximation for TCP/IB fabric
sharing and the mechanism behind every bandwidth-contention number in the
paper (victim NIC load in Fig. 2, TeraSort shuffle slowdown in Fig. 4, ...).
"""

from __future__ import annotations

import math
from typing import Iterable

from .kernel import Environment, Event, SimulationError

__all__ = ["Link", "NetFlow", "FlowNetwork", "progressive_fill"]

_EPS = 1e-9


class Link:
    """A directed capacity (one NIC direction, or any shared pipe).

    ``class_bytes`` accumulates, per label prefix (the part of a flow's
    label before the first ``:``), the bytes that traffic class has moved
    through the link — how the tenant models measure the scavenging
    store's average pressure over a window without burst aliasing.
    """

    __slots__ = ("name", "capacity", "_busy_integral", "used_rate",
                 "class_bytes")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"link {name!r}: capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self.used_rate = 0.0
        self._busy_integral = 0.0
        self.class_bytes: dict[str, float] = {}

    @property
    def utilization(self) -> float:
        return self.used_rate / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.used_rate:.3g}/{self.capacity:.3g}>"


class NetFlow:
    """A transfer crossing one or more links."""

    __slots__ = ("links", "work", "remaining", "cap", "rate", "done", "label",
                 "started_at", "finished_at")

    def __init__(self, env: Environment, links: tuple[Link, ...],
                 work: float | None, cap: float, label: str):
        self.links = links
        self.work = work
        self.remaining = math.inf if work is None else float(work)
        self.cap = float(cap)
        self.rate = 0.0
        self.done: Event = env.event()
        self.label = label
        self.started_at = env.now
        self.finished_at: float | None = None

    @property
    def persistent(self) -> bool:
        return self.work is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(l.name for l in self.links)
        return f"<NetFlow {self.label or path} remaining={self.remaining:.3g}>"


def progressive_fill(flows: list[NetFlow], links: Iterable[Link]) -> None:
    """Set ``flow.rate`` for every flow to the max-min fair allocation."""
    for f in flows:
        f.rate = 0.0
    if not flows:
        for l in links:
            l.used_rate = 0.0
        return
    avail = {l: l.capacity for l in links}
    unfixed = set(flows)
    # Count unfixed flows per link once per round.
    guard = len(flows) + len(avail) + 2
    while unfixed and guard > 0:
        guard -= 1
        counts: dict[Link, int] = {}
        for f in unfixed:
            for l in f.links:
                counts[l] = counts.get(l, 0) + 1
        delta = math.inf
        for l, n in counts.items():
            delta = min(delta, avail[l] / n)
        for f in unfixed:
            delta = min(delta, f.cap - f.rate)
        if delta < 0:
            delta = 0.0
        for f in unfixed:
            f.rate += delta
        for l, n in counts.items():
            avail[l] -= delta * n
        newly_fixed = set()
        saturated = {l for l, n in counts.items()
                     if avail[l] <= _EPS * max(l.capacity, 1.0)}
        for f in unfixed:
            if f.rate >= f.cap - _EPS or any(l in saturated for l in f.links):
                newly_fixed.add(f)
        if not newly_fixed:
            break  # numerical stalemate; rates are already fair enough
        unfixed -= newly_fixed
    for l in links:
        l.used_rate = 0.0
    for f in flows:
        for l in f.links:
            l.used_rate += f.rate


class FlowNetwork:
    """Event-driven fluid network: owns links and active flows."""

    def __init__(self, env: Environment):
        self.env = env
        self._links: dict[str, Link] = {}
        self._flows: list[NetFlow] = []
        self._last_update = env.now
        self._wakeup_token = 0

    # -- topology -------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise SimulationError(f"duplicate link {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity and re-fair-share every active flow.

        This is the fabric-fault primitive: a degraded NIC (or a
        partition, capacity ≈ 0) immediately slows every flow crossing the
        link, which is what makes client deadlines fire.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {link.name!r}: capacity must be positive")
        if self._links.get(link.name) is not link:
            raise SimulationError(f"link {link.name!r} not in this network")
        self._settle()
        link.capacity = float(capacity)
        self._rebalance()

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    @property
    def flows(self) -> tuple[NetFlow, ...]:
        return tuple(self._flows)

    # -- flows ----------------------------------------------------------------
    def transfer(self, links: Iterable[Link], nbytes: float | None,
                 cap: float = math.inf, label: str = "") -> NetFlow:
        """Start a transfer across *links*; wait on ``flow.done``."""
        if cap <= 0:
            raise SimulationError("flow cap must be positive")
        self._settle()
        path = tuple(links)
        if not path:
            raise SimulationError("a flow needs at least one link")
        for l in path:
            if self._links.get(l.name) is not l:
                raise SimulationError(f"link {l.name!r} not in this network")
        flow = NetFlow(self.env, path, nbytes, cap, label)
        if flow.remaining <= _EPS and not flow.persistent:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._flows.append(flow)
        self._rebalance()
        return flow

    def remove(self, flow: NetFlow) -> float:
        """Withdraw a flow; returns remaining work."""
        self._settle()
        if flow not in self._flows:
            return 0.0
        self._flows.remove(flow)
        remaining = flow.remaining
        flow.rate = 0.0
        if not flow.persistent and not flow.done.triggered:
            flow.done.fail(SimulationError(f"flow {flow.label!r} cancelled"))
        self._rebalance()
        return remaining

    def consume(self, links: Iterable[Link], nbytes: float,
                cap: float = math.inf, label: str = ""):
        """``yield from``-able: transfer and wait, withdrawing on interrupt."""
        flow = self.transfer(links, nbytes, cap, label)
        try:
            yield flow.done
        except BaseException:
            if flow in self._flows:
                self._flows.remove(flow)
                flow.rate = 0.0
                self._rebalance()
            raise
        return flow

    def busy_time(self, link: Link) -> float:
        """Capacity-normalized busy integral of *link*."""
        self._settle()
        return link._busy_integral / link.capacity

    def settle(self) -> None:
        """Bring byte integrals up to the current time (for probes)."""
        self._settle()

    # -- internals --------------------------------------------------------------
    def _settle(self) -> None:
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            return
        for f in self._flows:
            if f.rate > 0:
                if not f.persistent:
                    f.remaining -= f.rate * dt
                    if f.remaining < 0:
                        f.remaining = 0.0
                prefix, sep, _rest = f.label.partition(":")
                if sep:
                    moved = f.rate * dt
                    for l in f.links:
                        l.class_bytes[prefix] = \
                            l.class_bytes.get(prefix, 0.0) + moved
        for l in self._links.values():
            l._busy_integral += l.used_rate * dt
        self._last_update = now

    def _rebalance(self) -> None:
        now = self.env.now
        # See FluidResource._rebalance: completions below the float clock's
        # resolution at `now` must drain immediately to avoid a zero-advance
        # wakeup spin.
        min_dt = max(math.nextafter(now, math.inf) - now, 1e-12)
        while True:
            finished = [f for f in self._flows
                        if not f.persistent and f.remaining <= _EPS]
            for f in finished:
                self._flows.remove(f)
                f.rate = 0.0
                f.remaining = 0.0
                f.finished_at = now
                f.done.succeed(f)
            progressive_fill(self._flows, self._links.values())
            horizon = math.inf
            for f in self._flows:
                if f.rate > 0 and not f.persistent:
                    horizon = min(horizon, f.remaining / f.rate)
            if horizon >= min_dt or horizon is math.inf:
                break
            for f in self._flows:
                if (not f.persistent and f.rate > 0
                        and f.remaining / f.rate < min_dt):
                    f.remaining = 0.0
        self._wakeup_token += 1
        token = self._wakeup_token
        if horizon is not math.inf:
            self.env.schedule_callback(horizon, lambda: self._on_wakeup(token))

    def _on_wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return
        self._settle()
        self._rebalance()
