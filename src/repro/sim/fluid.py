"""Fluid (rate-based) resource sharing.

Contention on NICs, memory bandwidth and CPU cores is modeled with the
classic *fluid-flow* abstraction: each consumer is a :class:`Flow` with a
fixed amount of *work* (bytes, or CPU-seconds) and an optional per-flow rate
cap (a task that asked for 4 cores can never use more than 4 core-seconds
per second).  The resource divides its capacity among active flows by
**max-min fairness**: rates rise equally until a flow hits its cap, then the
leftover is redistributed.  Completions are event-driven: whenever the flow
set changes, rates are recomputed and the next completion is rescheduled.

This single abstraction reproduces the contention effects the paper relies
on: an extra store flow on a victim NIC takes a fair share away from the
tenant's shuffle traffic; store ingest on the memory bus slows STREAM by
exactly the bandwidth it consumes.
"""

from __future__ import annotations

import math
from typing import Any

from .kernel import Environment, Event, SimulationError

__all__ = ["Flow", "FluidResource", "maxmin_allocate"]

_EPS = 1e-9


def maxmin_allocate(capacity: float, caps: list[float]) -> list[float]:
    """Max-min fair allocation of *capacity* among flows with rate *caps*.

    Returns a rate per flow, in the input order.  Uncapped flows pass
    ``math.inf``.  Runs in O(n log n).
    """
    n = len(caps)
    if n == 0:
        return []
    if n == 1:
        # share == capacity exactly; identical to the general path.
        cap = caps[0]
        return [cap if cap < capacity else capacity]
    first = caps[0]
    for c in caps:
        if c != first:
            order = sorted(range(n), key=lambda i: caps[i])
            break
    else:
        # All caps equal: the stable sort is the identity permutation.
        order = range(n)
    rates = [0.0] * n
    remaining = capacity
    for pos, idx in enumerate(order):
        share = remaining / (n - pos)
        cap = caps[idx]
        rate = cap if cap < share else share
        rates[idx] = rate
        remaining -= rate
    return rates


class Flow:
    """A unit of demand on a :class:`FluidResource`.

    *work* is the total amount to transfer/compute (bytes or CPU-seconds);
    *cap* bounds the instantaneous rate.  ``done`` triggers when the work
    drains.  A flow with ``work=None`` is *persistent*: it consumes its fair
    share forever (used for steady background demands) and must be removed
    explicitly.
    """

    __slots__ = ("resource", "work", "remaining", "cap", "rate", "done",
                 "label", "started_at", "finished_at")

    def __init__(self, resource: "FluidResource", work: float | None,
                 cap: float = math.inf, label: str = ""):
        if work is not None and work < 0:
            raise SimulationError(f"negative flow work: {work}")
        if cap <= 0:
            raise SimulationError(f"flow cap must be positive, got {cap}")
        self.resource = resource
        self.work = work
        self.remaining = math.inf if work is None else float(work)
        self.cap = float(cap)
        self.rate = 0.0
        self.done: Event = resource.env.event()
        self.label = label
        self.started_at = resource.env.now
        self.finished_at: float | None = None

    @property
    def persistent(self) -> bool:
        return self.work is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow {self.label or id(self):#x} remaining={self.remaining:.3g}"
                f" rate={self.rate:.3g}>")


class FluidResource:
    """A single shared capacity (one NIC direction, one memory bus, one CPU
    socket pair) dividing its rate among flows by capped max-min fairness."""

    def __init__(self, env: Environment, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[Flow] = []
        self._last_update = env.now
        self._wakeup: Event | None = None
        self._wakeup_token = 0
        # Integral of used rate over time, for utilization accounting.
        self._busy_integral = 0.0

    # -- public API ----------------------------------------------------------
    @property
    def flows(self) -> tuple[Flow, ...]:
        return tuple(self._flows)

    @property
    def used_rate(self) -> float:
        """Instantaneous total allocated rate."""
        return sum(f.rate for f in self._flows)

    @property
    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self.used_rate / self.capacity

    def busy_time(self) -> float:
        """Capacity-normalized busy integral: ∫ used/capacity dt."""
        self._settle()
        return self._busy_integral / self.capacity

    def submit(self, work: float | None, cap: float = math.inf,
               label: str = "") -> Flow:
        """Add a flow; returns it (wait on ``flow.done`` for completion)."""
        self._settle()
        flow = Flow(self, work, cap, label)
        if flow.remaining <= _EPS and not flow.persistent:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._flows.append(flow)
        self._rebalance()
        return flow

    def remove(self, flow: Flow) -> float:
        """Withdraw a flow (e.g. a persistent demand, or a cancel).

        Returns the work still remaining.  The ``done`` event of a
        non-persistent flow is failed so waiters do not hang.
        """
        self._settle()
        if flow not in self._flows:
            return 0.0
        self._flows.remove(flow)
        remaining = flow.remaining
        flow.rate = 0.0
        if not flow.persistent and not flow.done.triggered:
            flow.done.fail(SimulationError(f"flow {flow.label!r} cancelled"))
        self._rebalance()
        return remaining

    def adjust_capacity(self, capacity: float) -> None:
        """Change capacity at the current time (e.g. container re-cap)."""
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._settle()
        self.capacity = float(capacity)
        self._rebalance()

    def adjust_cap(self, flow: Flow, cap: float) -> None:
        """Change a flow's rate cap at the current time."""
        if cap <= 0:
            raise SimulationError(f"flow cap must be positive, got {cap}")
        self._settle()
        flow.cap = float(cap)
        self._rebalance()

    # -- generator helper ----------------------------------------------------
    def consume(self, work: float, cap: float = math.inf, label: str = ""):
        """``yield from``-able helper: submit and wait for completion."""
        flow = self.submit(work, cap, label)
        try:
            yield flow.done
        except BaseException:
            # Interrupted while flowing: withdraw through remove() so the
            # progress accrued since the last update is settled first.
            self.remove(flow)
            raise
        return flow

    # -- internals -----------------------------------------------------------
    def _settle(self) -> None:
        """Advance every flow's progress from the last update to now."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            return
        used = 0.0
        for f in self._flows:
            rate = f.rate
            if rate > 0 and f.work is not None:
                f.remaining -= rate * dt
                if f.remaining < 0:
                    f.remaining = 0.0
            used += rate
        self._busy_integral += used * dt
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute max-min rates, complete drained flows, schedule wakeup."""
        now = self.env.now
        # The smallest delay the float clock can actually represent at `now`;
        # a flow finishing sooner than this must complete immediately or the
        # wakeup would be scheduled at `now + dt == now` and spin forever.
        min_dt = max(math.nextafter(now, math.inf) - now, 1e-12)
        flows = self._flows
        while True:
            finished = [f for f in flows
                        if f.work is not None and f.remaining <= _EPS]
            for f in finished:
                flows.remove(f)
                f.rate = 0.0
                f.remaining = 0.0
                f.finished_at = now
                f.done.succeed(f)
            caps = [f.cap for f in flows]
            rates = maxmin_allocate(self.capacity, caps)
            horizon = math.inf
            for f, r in zip(flows, rates):
                f.rate = r
                if r > 0 and f.work is not None:
                    h = f.remaining / r
                    if h < horizon:
                        horizon = h
            if horizon >= min_dt or horizon is math.inf:
                break
            # Sub-resolution completions: drain them at the current instant.
            for f in flows:
                if (f.work is not None and f.rate > 0
                        and f.remaining / f.rate < min_dt):
                    f.remaining = 0.0
        self._wakeup_token += 1
        token = self._wakeup_token
        if horizon is not math.inf:
            self.env.call_later(horizon, lambda: self._on_wakeup(token))

    def _on_wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return  # superseded by a later rebalance
        self._settle()
        self._rebalance()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FluidResource {self.name!r} cap={self.capacity:.3g} "
                f"flows={len(self._flows)}>")
