"""Fluid (rate-based) resource sharing.

Contention on NICs, memory bandwidth and CPU cores is modeled with the
classic *fluid-flow* abstraction: each consumer is a :class:`Flow` with a
fixed amount of *work* (bytes, or CPU-seconds) and an optional per-flow rate
cap (a task that asked for 4 cores can never use more than 4 core-seconds
per second).  The resource divides its capacity among active flows by
**max-min fairness**: rates rise equally until a flow hits its cap, then the
leftover is redistributed.  Completions are event-driven: whenever the flow
set changes, rates are recomputed and the next completion is rescheduled.

This single abstraction reproduces the contention effects the paper relies
on: an extra store flow on a victim NIC takes a fair share away from the
tenant's shuffle traffic; store ingest on the memory bus slows STREAM by
exactly the bandwidth it consumes.

Struct-of-arrays state (DESIGN.md §11)
--------------------------------------
Per-flow state (cap, rate, work remaining) lives in parallel numpy arrays
owned by the resource; a :class:`Flow` object is a *handle* holding a slot
index.  The settle step (drain progress over a time delta) is a pair of
vector ops instead of a Python loop, and every reduction that feeds the
simulated trajectory preserves the original *creation-order* float
arithmetic (sequential sums, elementwise updates) so results stay
bit-identical to the per-object implementation — see the summation
invariant in DESIGN.md §11.  ``maxmin_allocate`` itself is deliberately
NOT vectorized: its sorted sequential share recurrence has no
order-preserving vector equivalent, and it runs over active flows only.
"""

from __future__ import annotations

import math

import numpy as np

from .kernel import Environment, Event, SimulationError

__all__ = ["Flow", "FluidResource", "maxmin_allocate"]

_EPS = 1e-9
_INIT_SLOTS = 16
#: At or below this many active flows _rebalance runs on Python scalars.
#: The vector path only vectorizes the finish scan and the horizon — the
#: max-min allocation itself is the same sequential Python loop — so its
#: ~10 fixed-cost numpy temporaries per call beat the scalar loops only
#: once populations reach the mid tens (fig. 2 profiles put >85% of
#: rebalances at or under this size).
_SCALAR_MAX = 32


def maxmin_allocate(capacity: float, caps: list[float]) -> list[float]:
    """Max-min fair allocation of *capacity* among flows with rate *caps*.

    Returns a rate per flow, in the input order.  Uncapped flows pass
    ``math.inf``.  Runs in O(n log n).
    """
    n = len(caps)
    if n == 0:
        return []
    if n == 1:
        # share == capacity exactly; identical to the general path.
        cap = caps[0]
        return [cap if cap < capacity else capacity]
    first = caps[0]
    for c in caps:
        if c != first:
            order = sorted(range(n), key=lambda i: caps[i])
            break
    else:
        # All caps equal: the stable sort is the identity permutation.
        order = range(n)
    rates = [0.0] * n
    remaining = capacity
    for pos, idx in enumerate(order):
        share = remaining / (n - pos)
        cap = caps[idx]
        rate = cap if cap < share else share
        rates[idx] = rate
        remaining -= rate
    return rates


_share_cache: dict = {}


def _equal_share(capacity: float, n: int):
    """Memoized ``maxmin_allocate(capacity, [inf]*n)`` plus its sum.

    Uncapped equal demands are the dominant meter population; their
    allocation depends only on ``(capacity, n)``, so the exact rate list
    the general routine produces — including its sequential
    ``remaining / (n - pos)`` float schedule — is computed once and
    reused.  Returns ``(rates, rates_arr, used)``; callers must treat
    all three as immutable.
    """
    key = (capacity, n)
    hit = _share_cache.get(key)
    if hit is None:
        if len(_share_cache) >= 4096:
            _share_cache.clear()
        rates = maxmin_allocate(capacity, [math.inf] * n)
        used = 0.0
        for r in rates:
            used += r
        hit = (rates, np.asarray(rates), used)
        _share_cache[key] = hit
    return hit


class Flow:
    """A unit of demand on a :class:`FluidResource`.

    *work* is the total amount to transfer/compute (bytes or CPU-seconds);
    *cap* bounds the instantaneous rate.  ``done`` triggers when the work
    drains.  A flow with ``work=None`` is *persistent*: it consumes its fair
    share forever (used for steady background demands) and must be removed
    explicitly.

    While attached to its resource (``_slot >= 0``) the mutable numbers
    live in the resource's slot arrays; once detached (completed or
    removed) they are copied back to the scalar fallbacks so late readers
    still see final values.
    """

    __slots__ = ("resource", "work", "done", "label", "started_at",
                 "finished_at", "_slot", "_rem_s", "_rate_s", "_cap_s")

    def __init__(self, resource: "FluidResource", work: float | None,
                 cap: float = math.inf, label: str = ""):
        if work is not None and work < 0:
            raise SimulationError(f"negative flow work: {work}")
        if cap <= 0:
            raise SimulationError(f"flow cap must be positive, got {cap}")
        self.resource = resource
        self.work = work
        self._slot = -1
        self._rem_s = math.inf if work is None else float(work)
        self._cap_s = float(cap)
        self._rate_s = 0.0
        self.done: Event = resource.env.event()
        self.label = label
        self.started_at = resource.env.now
        self.finished_at: float | None = None

    @property
    def remaining(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self.resource._f_rem[s])
        return self._rem_s

    @remaining.setter
    def remaining(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self.resource._f_rem[s] = value
        else:
            self._rem_s = float(value)

    @property
    def rate(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self.resource._f_rate[s])
        return self._rate_s

    @rate.setter
    def rate(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            self.resource._f_rate[s] = value
        else:
            self._rate_s = float(value)

    @property
    def cap(self) -> float:
        s = self._slot
        if s >= 0:
            return float(self.resource._f_cap[s])
        return self._cap_s

    @cap.setter
    def cap(self, value: float) -> None:
        s = self._slot
        if s >= 0:
            res = self.resource
            old = float(res._f_cap[s])
            res._f_cap[s] = value
            if (old != math.inf) != (float(value) != math.inf):
                res._capped += 1 if float(value) != math.inf else -1
        else:
            self._cap_s = float(value)

    @property
    def persistent(self) -> bool:
        return self.work is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow {self.label or id(self):#x} remaining={self.remaining:.3g}"
                f" rate={self.rate:.3g}>")


class FluidResource:
    """A single shared capacity (one NIC direction, one memory bus, one CPU
    socket pair) dividing its rate among flows by capped max-min fairness.

    State is struct-of-arrays: slot-indexed cap/rate/remaining vectors, an
    ``_act`` append-only active-slot buffer in creation order (with
    tombstones, compacted lazily), and a quarantined free list so a slot
    freed this instant cannot be reused while a stale ``_act`` entry still
    points at it.
    """

    def __init__(self, env: Environment, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        n = _INIT_SLOTS
        self._f_cap = np.zeros(n)
        self._f_rem = np.zeros(n)
        self._f_rate = np.zeros(n)
        self._f_pers = np.zeros(n, dtype=bool)
        self._alive = np.zeros(n, dtype=bool)
        self._objs: list[Flow | None] = [None] * n
        self._free = list(range(n - 1, -1, -1))
        self._freeq: list[int] = []
        self._act = np.zeros(n, dtype=np.int32)
        self._act_n = 0
        self._act_dead = 0
        # Exact alive slots in creation order, maintained eagerly: the
        # scalar paths iterate it directly and _active() builds from it,
        # skipping the tombstone mask of the append-only _act buffer.
        self._act_list: list[int] = []
        # Attached flows with a finite rate cap; when zero, the active
        # population is uncapped-equal and its allocation is memoizable.
        self._capped = 0
        # Attached persistent flows; when zero the per-flow persistence
        # checks (and the _f_pers gathers) can be skipped wholesale.
        self._pers_n = 0
        self._last_update = env.now
        # Identity-stable bound method: _arm_wakeup lazy-cancels the
        # previous wakeup only when the slot still holds *this* function
        # (a fired slot may already belong to another scheduler).
        self._wakeup_fn = self._wakeup
        self._wakeup_cb = None
        # Integral of used rate over time, for utilization accounting.
        self._busy_integral = 0.0
        # Total allocated rate, kept current by _rebalance as the same
        # sequential creation-order sum the settle loop used to compute.
        self._used_now = 0.0

    # -- public API ----------------------------------------------------------
    @property
    def flows(self) -> tuple[Flow, ...]:
        return tuple(self._objs[s] for s in self._active())

    @property
    def used_rate(self) -> float:
        """Instantaneous total allocated rate."""
        return self._used_now

    @property
    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self._used_now / self.capacity

    def busy_time(self) -> float:
        """Capacity-normalized busy integral: ∫ used/capacity dt."""
        self._settle()
        return self._busy_integral / self.capacity

    def submit(self, work: float | None, cap: float = math.inf,
               label: str = "") -> Flow:
        """Add a flow; returns it (wait on ``flow.done`` for completion)."""
        self._settle()
        flow = Flow(self, work, cap, label)
        if flow._rem_s <= _EPS and not flow.persistent:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._attach(flow)
        self._rebalance()
        return flow

    def remove(self, flow: Flow) -> float:
        """Withdraw a flow (e.g. a persistent demand, or a cancel).

        Returns the work still remaining.  The ``done`` event of a
        non-persistent flow is failed so waiters do not hang.
        """
        self._settle()
        if flow.resource is not self or flow._slot < 0:
            return 0.0
        remaining = float(self._f_rem[flow._slot])
        self._detach(flow)
        flow._rem_s = remaining
        if not flow.persistent and not flow.done.triggered:
            flow.done.fail(SimulationError(f"flow {flow.label!r} cancelled"))
        self._rebalance()
        return remaining

    def adjust_capacity(self, capacity: float) -> None:
        """Change capacity at the current time (e.g. container re-cap)."""
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._settle()
        self.capacity = float(capacity)
        self._rebalance()

    def adjust_cap(self, flow: Flow, cap: float) -> None:
        """Change a flow's rate cap at the current time."""
        if cap <= 0:
            raise SimulationError(f"flow cap must be positive, got {cap}")
        self._settle()
        flow.cap = float(cap)
        self._rebalance()

    # -- generator helper ----------------------------------------------------
    def consume(self, work: float, cap: float = math.inf, label: str = ""):
        """``yield from``-able helper: submit and wait for completion."""
        flow = self.submit(work, cap, label)
        try:
            yield flow.done
        except BaseException:
            # Interrupted while flowing: withdraw through remove() so the
            # progress accrued since the last update is settled first.
            self.remove(flow)
            raise
        return flow

    # -- slot machinery ------------------------------------------------------
    def _active(self) -> np.ndarray:
        """Active slots in creation order (tombstones filtered)."""
        if not self._act_dead:
            return self._act[: self._act_n]
        return np.asarray(self._act_list, dtype=np.int32)

    def _compact(self) -> None:
        """Drop tombstones from ``_act`` and promote quarantined slots.

        Only after compaction may a freed slot be reused: until then a
        stale ``_act`` entry still references it, and reusing it would
        resurrect the entry as a duplicate of the new flow.
        """
        a = self._active()
        n = len(a)
        self._act[:n] = a
        self._act_n = n
        self._act_dead = 0
        self._free.extend(self._freeq)
        self._freeq.clear()

    def _grow(self) -> None:
        old = len(self._objs)
        new = old * 2
        for name in ("_f_cap", "_f_rem", "_f_rate"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        for name in ("_f_pers", "_alive"):
            arr = np.zeros(new, dtype=bool)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        self._objs.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _attach(self, flow: Flow) -> None:
        if not self._free:
            self._compact()
            if not self._free:
                self._grow()
        s = self._free.pop()
        flow._slot = s
        self._f_cap[s] = flow._cap_s
        if flow._cap_s != math.inf:
            self._capped += 1
        if flow.work is None:
            self._pers_n += 1
        self._f_rem[s] = flow._rem_s
        self._f_rate[s] = 0.0
        self._f_pers[s] = flow.work is None
        self._alive[s] = True
        self._objs[s] = flow
        if self._act_n == len(self._act):
            if self._act_dead > len(self._act) // 2:
                self._compact()
            else:
                act = np.zeros(len(self._act) * 2, dtype=np.int32)
                act[: self._act_n] = self._act[: self._act_n]
                self._act = act
        self._act[self._act_n] = s
        self._act_n += 1
        self._act_list.append(s)

    def _detach(self, flow: Flow) -> None:
        """Array-side teardown: copy state to scalars, tombstone the slot."""
        s = flow._slot
        flow._cap_s = float(self._f_cap[s])
        if flow._cap_s != math.inf:
            self._capped -= 1
        if flow.work is None:
            self._pers_n -= 1
        flow._rem_s = float(self._f_rem[s])
        flow._rate_s = 0.0
        flow._slot = -1
        self._alive[s] = False
        self._f_rate[s] = 0.0
        self._objs[s] = None
        self._freeq.append(s)
        self._act_dead += 1
        self._act_list.remove(s)

    # -- internals -----------------------------------------------------------
    def _settle(self) -> None:
        """Advance every flow's progress from the last update to now.

        Vectorized over the whole slot range: tombstoned/free slots carry
        rate 0.0, and ``x - 0.0 == x`` bitwise, so they are inert.  The
        elementwise update computes the identical float sequence as the
        old per-flow loop (``remaining -= rate*dt`` then clamp at zero).
        Persistent flows must subtract exactly 0.0 — not ``rate*dt`` —
        because their remaining stays inf and ``inf - inf`` is NaN.
        """
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            return
        rem = self._f_rem
        drain = np.where(self._f_pers, 0.0, self._f_rate * dt)
        np.subtract(rem, drain, out=rem)
        np.maximum(rem, 0.0, out=rem)
        self._busy_integral += self._used_now * dt
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute max-min rates, complete drained flows, schedule wakeup."""
        now = self.env.now
        # The smallest delay the float clock can actually represent at `now`;
        # a flow finishing sooner than this must complete immediately or the
        # wakeup would be scheduled at `now + dt == now` and spin forever.
        min_dt = max(math.nextafter(now, math.inf) - now, 1e-12)
        if self._act_n - self._act_dead <= 1:
            # 0 or 1 active flows — the dominant case for task CPUs and
            # store cost meters, where the numpy temporaries of the
            # general path cost more than the whole computation.  Pure
            # scalar arithmetic, float-identical to the path below
            # (single-flow maxmin is min(cap, capacity); the used-rate
            # sum over one element is that element).
            s = self._act_list[0] if self._act_list else -1
            no_pers = self._pers_n == 0
            horizon = math.inf
            while True:
                if s >= 0 and (no_pers or not self._f_pers[s]) \
                        and self._f_rem[s] <= _EPS:
                    flow = self._objs[s]
                    self._detach(flow)
                    flow._rem_s = 0.0
                    flow.finished_at = now
                    flow.done.succeed(flow)
                    s = -1
                if s < 0:
                    self._used_now = 0.0
                    horizon = math.inf
                    break
                cap = float(self._f_cap[s])
                rate = cap if cap < self.capacity else self.capacity
                self._f_rate[s] = rate
                self._used_now = rate
                horizon = math.inf
                if rate > 0 and (no_pers or not self._f_pers[s]):
                    horizon = float(self._f_rem[s]) / rate
                    if horizon < min_dt:
                        self._f_rem[s] = 0.0
                        continue
                break
            self._arm_wakeup(horizon)
            return
        if self._act_n - self._act_dead <= _SCALAR_MAX:
            # Small populations (a store cost meter with a few concurrent
            # ops): run the same algorithm on Python scalars.  Fancy
            # indexing and the tolist() round-trip cost more than the
            # whole allocation at this size.  Every arithmetic step
            # mirrors the vector path below operation for operation, so
            # the float sequence is identical.
            f_rem, f_cap = self._f_rem, self._f_cap
            f_pers, f_rate = self._f_pers, self._f_rate
            slots = list(self._act_list)
            no_pers = self._pers_n == 0
            while True:
                if no_pers:
                    fin = [s for s in slots if f_rem[s] <= _EPS]
                else:
                    fin = [s for s in slots
                           if not f_pers[s] and f_rem[s] <= _EPS]
                if fin:
                    for s in fin:  # creation order, like the vector scan
                        flow = self._objs[s]
                        self._detach(flow)
                        flow._rem_s = 0.0
                        flow.finished_at = now
                        flow.done.succeed(flow)
                    slots = [s for s in slots if s not in fin]
                if self._capped == 0:
                    rates, _, used = _equal_share(self.capacity, len(slots))
                else:
                    rates = maxmin_allocate(
                        self.capacity, [float(f_cap[s]) for s in slots])
                    used = 0.0
                    for r in rates:
                        used += r
                for s, r in zip(slots, rates):
                    f_rate[s] = r
                self._used_now = used
                horizon = math.inf
                sub = []
                for s, r in zip(slots, rates):
                    if r > 0 and (no_pers or not f_pers[s]):
                        h = float(f_rem[s]) / r
                        if h < horizon:
                            horizon = h
                        if h < min_dt:
                            sub.append(s)
                if horizon < min_dt:
                    # Sub-resolution completions drain at this instant.
                    for s in sub:
                        f_rem[s] = 0.0
                    continue
                break
            self._arm_wakeup(horizon)
            return
        while True:
            a = self._active()
            npers = None
            if len(a):
                no_pers = self._pers_n == 0
                fin = self._f_rem[a] <= _EPS
                if not no_pers:
                    npers = ~self._f_pers[a]
                    fin &= npers
                if fin.any():
                    for s in a[fin]:  # creation order, like the old list scan
                        flow = self._objs[s]
                        self._detach(flow)
                        flow._rem_s = 0.0
                        flow.finished_at = now
                        flow.done.succeed(flow)
                    a = self._active()
                    no_pers = self._pers_n == 0
                    npers = (~self._f_pers[a]
                             if len(a) and not no_pers else None)
                elif no_pers:
                    npers = None
            # maxmin_allocate keeps its exact sequential arithmetic; the
            # caps round-trip through tolist() is value-preserving, and
            # assigning the Python floats back into the float64 arrays is
            # exact, so rate_a below equals the stored rates bit for bit.
            if self._capped == 0:
                _rates, rate_a, used = _equal_share(self.capacity, len(a))
            else:
                rates = maxmin_allocate(self.capacity,
                                        self._f_cap[a].tolist())
                rate_a = np.asarray(rates)
                used = 0.0
                for r in rates:
                    used += r
            self._f_rate[a] = rate_a if len(a) else 0.0
            self._used_now = used
            horizon = math.inf
            if len(a):
                m = rate_a > 0
                if npers is not None:
                    m &= npers
                if m.any():
                    # When every active flow drains (the usual case) the
                    # mask is all-true and the fancy-index copies can be
                    # skipped; the arithmetic is identical either way.
                    am = a if m.all() else a[m]
                    h = (self._f_rem[am] / rate_a if am is a
                         else self._f_rem[am] / rate_a[m])
                    horizon = float(h.min())
                    if horizon < min_dt:
                        # Sub-resolution completions: drain them at the
                        # current instant.
                        self._f_rem[am[h < min_dt]] = 0.0
                        continue
            break
        self._arm_wakeup(horizon)

    def _arm_wakeup(self, horizon: float) -> None:
        """Schedule the next completion wakeup, superseding the last.

        The previous pending wakeup (if any) is lazy-cancelled by
        clearing its calendar slot — guarded by an identity check on the
        stored function, because a fired slot returns to the shared pool
        and may already carry someone else's callback.
        """
        cb = self._wakeup_cb
        if cb is not None and cb.fn is self._wakeup_fn:
            cb.fn = None
        self._wakeup_cb = (self.env.call_later(horizon, self._wakeup_fn)
                           if horizon != math.inf else None)

    def _wakeup(self) -> None:
        self._settle()
        self._rebalance()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FluidResource {self.name!r} cap={self.capacity:.3g} "
                f"flows={self._act_n - self._act_dead}>")
