"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so adding a component never perturbs the draws of
another and whole-experiment runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent, deterministic ``numpy.random.Generator``
    streams keyed by component name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The stream for *name*, created on first use."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, _stable_hash(name)])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry with a derived seed (for repetition sweeps)."""
        return RngRegistry(self.seed * 1_000_003 + salt)


def _stable_hash(name: str) -> int:
    """Deterministic 63-bit hash of a string (Python's ``hash`` is salted)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode():
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
