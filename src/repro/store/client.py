"""Store client: the own-node side of the store protocol.

Each own node (the only nodes allowed by the AUTH policy, §III-F) runs one
client.  All methods are generators to be driven inside a simulation
process::

    resp_bytes, payload = yield from client.get(server, "stripe-3")

Round-trip latency is charged here (request + response legs); payload and
service costs are charged by the server (:mod:`repro.store.server`).
"""

from __future__ import annotations

from typing import Hashable

from ..cluster.network import Fabric
from ..cluster.node import Node
from ..sim import Environment
from .protocol import Op, Request, Response
from .server import StoreError, StoreServer

__all__ = ["StoreClient"]


class StoreClient:
    """Issues requests from one node to any store server."""

    def __init__(self, env: Environment, fabric: Fabric, node: Node,
                 password: str = ""):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.password = password

    def request(self, server: StoreServer, req: Request):
        """Generator: full round trip; returns the :class:`Response`."""
        rtt_leg = self.fabric.latency(self.node, server.node)
        if rtt_leg > 0:
            yield self.env.timeout(rtt_leg)
        resp: Response = yield from server.serve(req, self.node)
        if rtt_leg > 0:
            yield self.env.timeout(rtt_leg)
        return resp

    def _checked(self, server: StoreServer, req: Request):
        resp = yield from self.request(server, req)
        if not resp.ok:
            code = resp.error.split(":", 1)[0]
            raise StoreError(code, resp.error)
        return resp.value

    # -- operations ---------------------------------------------------------------
    def put(self, server: StoreServer, key: Hashable,
            nbytes: float | None = None, payload: bytes | None = None,
            batch: int = 1):
        """Store a value; returns the stored size."""
        return (yield from self._checked(server, Request(
            Op.PUT, key=key, nbytes=nbytes, payload=payload, batch=batch,
            password=self.password, client_node=self.node.name)))

    def get(self, server: StoreServer, key: Hashable, batch: int = 1):
        """Fetch a value; returns ``(nbytes, payload_or_None)``."""
        return (yield from self._checked(server, Request(
            Op.GET, key=key, batch=batch, password=self.password,
            client_node=self.node.name)))

    def delete(self, server: StoreServer, key: Hashable):
        """Delete a key; returns the bytes released."""
        return (yield from self._checked(server, Request(
            Op.DELETE, key=key, password=self.password,
            client_node=self.node.name)))

    def exists(self, server: StoreServer, key: Hashable):
        return (yield from self._checked(server, Request(
            Op.EXISTS, key=key, password=self.password,
            client_node=self.node.name)))

    def flush(self, server: StoreServer):
        return (yield from self._checked(server, Request(
            Op.FLUSH, password=self.password, client_node=self.node.name)))

    def info(self, server: StoreServer):
        return (yield from self._checked(server, Request(
            Op.INFO, password=self.password, client_node=self.node.name)))

    def sadd(self, server: StoreServer, key: Hashable, member: str):
        """Add a member to a server-side set; returns True if new."""
        return (yield from self._checked(server, Request(
            Op.SADD, key=key, member=member, password=self.password,
            client_node=self.node.name)))

    def srem(self, server: StoreServer, key: Hashable, member: str):
        """Remove a member from a server-side set; returns True if present."""
        return (yield from self._checked(server, Request(
            Op.SREM, key=key, member=member, password=self.password,
            client_node=self.node.name)))

    def smembers(self, server: StoreServer, key: Hashable):
        """Members of a server-side set (frozenset)."""
        return (yield from self._checked(server, Request(
            Op.SMEMBERS, key=key, password=self.password,
            client_node=self.node.name)))
