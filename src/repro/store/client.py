"""Store client: the own-node side of the store protocol.

Each own node (the only nodes allowed by the AUTH policy, §III-F) runs one
client.  All methods are generators to be driven inside a simulation
process::

    resp_bytes, payload = yield from client.get(server, "stripe-3")

Round-trip latency is charged here (request + response legs); payload and
service costs are charged by the server (:mod:`repro.store.server`).

Every operation takes the same resilience keywords — ``deadline=`` (per-op
wall-clock budget), ``retry=`` (a :class:`~repro.store.protocol.RetryPolicy`
with exponential backoff + seeded jitter) and, for chain reads, ``hedge=``
(delay before speculatively trying the next replica) — with policy defaults
settable at construction so the fs layer does not thread ad-hoc kwargs per
call.  Backoff jitter draws from a ``sim.rng`` stream, never the global
``random`` module, so retry timing is bit-reproducible.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

from ..cluster.network import Fabric
from ..cluster.node import Node
from ..faults.stats import fault_stats
from ..sim import Environment
from ..sim.rng import RngRegistry
from .protocol import (Op, Request, Response, RetryPolicy, StoreError,
                       StoreErrorCode)
from .server import StoreServer

__all__ = ["StoreClient"]


class StoreClient:
    """Issues requests from one node to any store server.

    *deadline*, *retry* and *hedge* set the per-op defaults; each
    operation accepts the same keywords to override them per call.
    ``deadline=None`` means unbounded, ``hedge=None`` disables hedged
    reads (chain reads then fall through sequentially on error).
    """

    def __init__(self, env: Environment, fabric: Fabric, node: Node,
                 password: str = "", *,
                 deadline: float | None = None,
                 retry: RetryPolicy | None = None,
                 hedge: float | None = None,
                 rng=None):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.password = password
        self.deadline = deadline
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge = hedge
        # Backoff jitter must come from a seeded stream; a private
        # per-node registry keeps un-parameterized constructions (tests,
        # examples) deterministic too.
        self.rng = rng if rng is not None else \
            RngRegistry(0).stream(f"store.client.{node.name}")

    def request(self, server: StoreServer, req: Request, *,
                deadline: float | None = None):
        """Generator: one full round trip; returns the :class:`Response`.

        With a *deadline* the attempt is raced against a timer; on expiry
        the in-flight request is interrupted (its resource flows are
        withdrawn by the server) and a ``TIMEOUT`` response is returned.
        """
        deadline = self.deadline if deadline is None else deadline
        if deadline is None or deadline == math.inf:
            return (yield from self._round_trip(server, req))
        proc = self.env.process(self._round_trip(server, req),
                                name=f"store-req@{self.node.name}")
        timer = self.env.timeout(deadline)
        yield self.env.any_of([proc, timer])
        if proc.triggered:
            return proc.value
        proc.interrupt("deadline")
        fault_stats.timeouts += 1
        return Response(ok=False, code=StoreErrorCode.TIMEOUT,
                        message=f"{req.op.value} {req.key!r} exceeded "
                                f"{deadline:.6g}s deadline to {server.name}")

    def _round_trip(self, server: StoreServer, req: Request):
        rtt_leg = self.fabric.latency(self.node, server.node)
        if rtt_leg > 0:
            yield self.env.timeout(rtt_leg)
        resp: Response = yield from server.serve(req, self.node)
        if rtt_leg > 0:
            yield self.env.timeout(rtt_leg)
        return resp

    def _checked(self, server: StoreServer, req: Request, *,
                 deadline: float | None = None,
                 retry: RetryPolicy | None = None):
        """Generator: request with bounded retries; returns the value or
        raises the typed :class:`StoreError`."""
        policy = retry if retry is not None else self.retry
        attempt = 0
        while True:
            attempt += 1
            resp = yield from self.request(server, req, deadline=deadline)
            if resp.ok:
                return resp.value
            code = resp.code or StoreErrorCode.BAD_REQUEST
            if code is StoreErrorCode.UNAVAILABLE:
                fault_stats.unavailable_errors += 1
            if not policy.should_retry(code, attempt):
                raise StoreError(code, resp.message, details=resp.details)
            fault_stats.retries += 1
            delay = policy.backoff(attempt, self.rng)
            if delay > 0:
                yield self.env.timeout(delay)

    # -- capacity -----------------------------------------------------------------
    def free_space(self, server: StoreServer) -> float:
        """Bytes *server* could still admit — a zero-cost local peek.

        Not a generator: it charges no simulated time, modeling the
        client's view of the capacity gossip every store piggybacks on
        its responses.  The write path's spill decisions
        (:mod:`repro.fs.capacity`) consult this before committing a
        stripe to a store.
        """
        return server.free_space()

    # -- operations ---------------------------------------------------------------
    def put(self, server: StoreServer, key: Hashable,
            nbytes: float | None = None, payload: bytes | None = None,
            batch: int = 1, *, deadline: float | None = None,
            retry: RetryPolicy | None = None):
        """Store a value; returns the stored size."""
        return (yield from self._checked(server, Request(
            Op.PUT, key=key, nbytes=nbytes, payload=payload, batch=batch,
            password=self.password, client_node=self.node.name),
            deadline=deadline, retry=retry))

    def get(self, server: StoreServer, key: Hashable, batch: int = 1, *,
            deadline: float | None = None, retry: RetryPolicy | None = None):
        """Fetch a value; returns ``(nbytes, payload_or_None)``."""
        return (yield from self._checked(server, Request(
            Op.GET, key=key, batch=batch, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    def delete(self, server: StoreServer, key: Hashable, *,
               deadline: float | None = None,
               retry: RetryPolicy | None = None):
        """Delete a key; returns the bytes released."""
        return (yield from self._checked(server, Request(
            Op.DELETE, key=key, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    def exists(self, server: StoreServer, key: Hashable, *,
               deadline: float | None = None,
               retry: RetryPolicy | None = None):
        return (yield from self._checked(server, Request(
            Op.EXISTS, key=key, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    def flush(self, server: StoreServer, *, deadline: float | None = None,
              retry: RetryPolicy | None = None):
        return (yield from self._checked(server, Request(
            Op.FLUSH, password=self.password, client_node=self.node.name),
            deadline=deadline, retry=retry))

    def info(self, server: StoreServer, *, deadline: float | None = None,
             retry: RetryPolicy | None = None):
        return (yield from self._checked(server, Request(
            Op.INFO, password=self.password, client_node=self.node.name),
            deadline=deadline, retry=retry))

    def sadd(self, server: StoreServer, key: Hashable, member: str, *,
             deadline: float | None = None, retry: RetryPolicy | None = None):
        """Add a member to a server-side set; returns True if new."""
        return (yield from self._checked(server, Request(
            Op.SADD, key=key, member=member, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    def srem(self, server: StoreServer, key: Hashable, member: str, *,
             deadline: float | None = None, retry: RetryPolicy | None = None):
        """Remove a member from a server-side set; returns True if present."""
        return (yield from self._checked(server, Request(
            Op.SREM, key=key, member=member, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    def smembers(self, server: StoreServer, key: Hashable, *,
                 deadline: float | None = None,
                 retry: RetryPolicy | None = None):
        """Members of a server-side set (frozenset)."""
        return (yield from self._checked(server, Request(
            Op.SMEMBERS, key=key, password=self.password,
            client_node=self.node.name), deadline=deadline, retry=retry))

    # -- chain reads ---------------------------------------------------------------
    def get_any(self, servers: Sequence[StoreServer], key: Hashable, *,
                batch: int = 1, deadline: float | None = None,
                retry: RetryPolicy | None = None,
                hedge: float | None = None):
        """Generator: fetch *key* from the first replica in *servers* that
        answers, in rank order (the stripe's HRW chain).

        Misses, crashes and timeouts fall through to the next replica
        (lazy movement, §V-C); other errors propagate.  With *hedge* set
        (seconds), the next replica is tried *concurrently* once the
        current best attempt has been outstanding that long — the classic
        tail-latency hedge — and the first success wins.  A success served
        by any non-primary replica counts as a degraded read.
        """
        servers = [s for s in servers if s is not None]
        if not servers:
            raise StoreError(StoreErrorCode.UNAVAILABLE,
                             f"{key!r}: no live replica")
        hedge = self.hedge if hedge is None else hedge
        if hedge is not None and hedge > 0 and len(servers) > 1:
            return (yield from self._hedged_get(servers, key, batch,
                                                deadline, retry, hedge))
        last: StoreError | None = None
        for rank, server in enumerate(servers):
            try:
                value = yield from self.get(server, key, batch=batch,
                                            deadline=deadline, retry=retry)
            except StoreError as exc:
                if not exc.code.fallthrough:
                    raise
                last = exc
                continue
            if rank > 0:
                fault_stats.degraded_reads += 1
            return value
        assert last is not None
        raise last

    def _collected_get(self, server: StoreServer, key: Hashable,
                       batch: int, deadline: float | None,
                       retry: RetryPolicy | None):
        """Generator: a get attempt that reports instead of raising, so a
        hedging race can collect losers without failing the combinator."""
        try:
            value = yield from self.get(server, key, batch=batch,
                                        deadline=deadline, retry=retry)
        except StoreError as exc:
            return False, exc
        return True, value

    def _hedged_get(self, servers: Sequence[StoreServer], key: Hashable,
                    batch: int, deadline: float | None,
                    retry: RetryPolicy | None, hedge: float):
        active: list = []
        rank_of: dict = {}
        nxt = 0
        last: StoreError | None = None

        def spawn():
            nonlocal nxt
            proc = self.env.process(
                self._collected_get(servers[nxt], key, batch, deadline,
                                    retry),
                name=f"hedge@{self.node.name}")
            rank_of[proc] = nxt
            active.append(proc)
            nxt += 1

        spawn()
        try:
            while True:
                waits = list(active)
                timer = None
                if nxt < len(servers):
                    timer = self.env.timeout(hedge)
                    waits.append(timer)
                yield self.env.any_of(waits)
                failed_now = False
                for proc in [p for p in active if p.triggered]:
                    active.remove(proc)
                    ok, value = proc.value
                    if ok:
                        if rank_of[proc] > 0:
                            fault_stats.degraded_reads += 1
                        return value
                    if not value.code.fallthrough:
                        raise value
                    last = value
                    failed_now = True
                if not active and nxt >= len(servers):
                    assert last is not None
                    raise last
                if nxt < len(servers) and (
                        not active
                        or (timer is not None and timer.triggered
                            and not failed_now)):
                    if active:
                        fault_stats.hedged_reads += 1
                    spawn()
        finally:
            for proc in active:
                if proc.is_alive:
                    proc.interrupt("hedge resolved")
