"""The store server process model.

A :class:`StoreServer` is one Redis stand-in bound to a node.  Serving a
request costs, concurrently:

- **CPU** on the serving node (fixed per-request cost + per-byte cost,
  capped at one core — Redis is single-threaded);
- **memory bandwidth** on the serving node (socket-buffer copies,
  ``membw_copy_factor`` bus bytes per payload byte);
- **network** between client and server through the shared fabric.

On victim nodes the server runs inside a :class:`~repro.cluster.Container`
whose caps bound its memory footprint, CPU rate and NIC rate (§III-F).
Request arrivals feed a :class:`~repro.store.protocol.RateTracker`; the
tenants' latency-sensitive phases read it as the OS-level disturbance term
(the paper's explanation of why BLAST hurts HPCC latency more than dd).
"""

from __future__ import annotations

import itertools
import math

from ..cluster.container import CapExceeded, Container
from ..cluster.network import Fabric
from ..cluster.node import Node, OutOfMemory
from ..sim import Environment, FluidResource
from .auth import AuthError, AuthPolicy
from .kvstore import KVStore, KeyMissing, StoreFull
from .protocol import (Op, RateTracker, Request, Response, StoreCostModel,
                       StoreError, StoreErrorCode)

__all__ = ["StoreServer", "StoreError"]

_ids = itertools.count()


class StoreServer:
    """One in-memory store bound to a node, serving requests at a cost."""

    def __init__(self, env: Environment, node: Node, fabric: Fabric,
                 capacity: float, name: str | None = None,
                 auth: AuthPolicy | None = None,
                 container: Container | None = None,
                 costs: StoreCostModel | None = None):
        self.env = env
        self.node = node
        self.fabric = fabric
        self.name = name or f"store{next(_ids)}@{node.name}"
        self.auth = auth
        self.container = container
        # Default built per instance: a dataclass-instance default would be
        # one shared object across all servers (audited repo-wide).
        self.costs = costs = costs if costs is not None else StoreCostModel()
        if container is not None:
            capacity = min(capacity, container.caps.memory)
        self.kv = KVStore(capacity, key_overhead=costs.key_overhead,
                          name=self.name)
        # The Redis event loop is single-threaded: all of this server's
        # request CPU work serializes through one core's worth of capacity
        # (less, if the container caps CPU tighter).  This is what bounds a
        # node's ingest at ~1.5 GB/s and makes the α = 100 % case of
        # Fig. 2f receiver-bound.
        self.loop = FluidResource(env, capacity=self.cpu_cap,
                                  name=f"{self.name}.loop")
        self.request_rate = RateTracker()
        self.requests_served = 0
        self.crashed = False
        self._mem_owner = f"store:{self.name}"
        self._accounted = 0.0
        # Flow labels interned once; _pay_costs runs per request and the
        # f-strings showed up in the Fig. 2 profile.
        self._loop_label = f"store:{self.name}.loop"
        self._cpu_label = f"store:{self.name}.cpu"
        self._membw_label = f"store:{self.name}.membw"
        self._net_label = f"store:{self.name}.net"

    # -- resource caps ------------------------------------------------------------
    @property
    def cpu_cap(self) -> float:
        cap = 1.0  # single-threaded event loop
        if self.container is not None:
            cap = min(cap, self.container.cpu_cap)
        return cap

    @property
    def net_cap(self) -> float:
        """Per-transfer rate ceiling from the container, if any.  (The
        TCP/IPoIB ceiling is enforced by the per-node IPoIB links the
        store's flows cross — see :class:`repro.cluster.Fabric`.)"""
        return self.container.net_cap if self.container is not None else math.inf

    def request_rate_now(self) -> float:
        return self.request_rate.rate(self.env.now)

    def free_space(self) -> float:
        """Bytes a put could still admit, as of now — a zero-cost local
        peek (no simulated request), modeling the capacity gossip the
        write path's spill decisions consult (§III-E).

        Bounded by the KV capacity *and* by what the hosting container /
        node can actually back, so tenant memory pressure shows up here
        before a put would bounce with ``FULL``.
        """
        if self.crashed:
            return 0.0
        free = self.kv.free_bytes
        if self.container is not None:
            free = min(free, self.container.memory_available)
        else:
            free = min(free, self.node.memory_free)
        return max(free, 0.0)

    # -- memory accounting ----------------------------------------------------------
    def _sync_memory(self) -> None:
        """Mirror the KV footprint into node/container accounting."""
        delta = self.kv.used_bytes - self._accounted
        if delta > 0:
            if self.container is not None:
                self.container.allocate(delta)
            else:
                self.node.allocate_memory(self._mem_owner, delta)
        elif delta < 0:
            if self.container is not None:
                self.container.free(-delta)
            else:
                self.node.free_memory(self._mem_owner, -delta)
        self._accounted = self.kv.used_bytes

    @property
    def memory_used(self) -> float:
        return self._accounted

    def _full_details(self, exc: Exception, requested: float) -> dict:
        """Structured context of a FULL rejection for the response."""
        if isinstance(exc, StoreFull):
            details = exc.details()
            details.setdefault("store", self.name)
            return details
        # Container cap / node memory exhausted: the KV had room, the
        # backing memory did not.
        return {"store": self.name, "requested_bytes": float(requested),
                "free_bytes": float(self.free_space())}

    # -- serving ------------------------------------------------------------------
    def serve(self, request: Request, client_node: Node):
        """Generator: performs the request, returns a :class:`Response`.

        Call as ``resp = yield from server.serve(req, my_node)`` — normally
        through :class:`~repro.store.client.StoreClient`.
        """
        if self.crashed:
            # The store process is dead: requests bounce immediately (the
            # client's chain walk / retry policy decides what happens next).
            return Response(ok=False, code=StoreErrorCode.UNAVAILABLE,
                            message=f"{self.name} is down")
        if self.auth is not None:
            try:
                self.auth.check(request.password, client_node.name)
            except AuthError as exc:
                return Response(ok=False, code=StoreErrorCode.AUTH,
                                message=str(exc))
        batch = max(1, int(request.batch))
        self.request_rate.record(self.env.now, count=batch)
        self.requests_served += batch

        op = request.op
        if op is Op.PUT:
            size = (float(len(request.payload)) if request.payload is not None
                    else float(request.nbytes or 0.0))
            yield from self._pay_costs(size, src=client_node, dst=self.node,
                                       batch=batch)
            try:
                self.kv.put(request.key, nbytes=request.nbytes,
                            payload=request.payload)
                self._sync_memory()
            except (StoreFull, CapExceeded, OutOfMemory) as exc:
                return Response(ok=False, code=StoreErrorCode.FULL,
                                message=str(exc),
                                details=self._full_details(exc, size))
            except ValueError as exc:
                return Response(ok=False, code=StoreErrorCode.BAD_REQUEST,
                                message=str(exc))
            return Response(ok=True, value=size)

        if op is Op.GET:
            try:
                nbytes, payload = self.kv.get(request.key)
            except KeyMissing:
                return Response(ok=False, code=StoreErrorCode.MISSING,
                                message=repr(request.key))
            yield from self._pay_costs(nbytes, src=self.node, dst=client_node,
                                       batch=batch)
            return Response(ok=True, value=(nbytes, payload))

        if op is Op.DELETE:
            try:
                released = self.kv.delete(request.key)
                self._sync_memory()
            except KeyMissing:
                return Response(ok=False, code=StoreErrorCode.MISSING,
                                message=repr(request.key))
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            return Response(ok=True, value=released)

        if op is Op.EXISTS:
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            return Response(ok=True, value=self.kv.contains(request.key))

        if op is Op.FLUSH:
            released = self.kv.flush()
            self._sync_memory()
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            return Response(ok=True, value=released)

        if op is Op.INFO:
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            return Response(ok=True, value=self.kv.info())

        if op is Op.SADD:
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            try:
                added = self.kv.sadd(request.key, request.member or "")
                self._sync_memory()
            except (StoreFull, CapExceeded, OutOfMemory) as exc:
                return Response(ok=False, code=StoreErrorCode.FULL,
                                message=str(exc),
                                details=self._full_details(exc, 0.0))
            except TypeError as exc:
                return Response(ok=False, code=StoreErrorCode.BAD_REQUEST,
                                message=str(exc))
            return Response(ok=True, value=added)

        if op is Op.SREM:
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            try:
                removed = self.kv.srem(request.key, request.member or "")
                self._sync_memory()
            except TypeError as exc:
                return Response(ok=False, code=StoreErrorCode.BAD_REQUEST,
                                message=str(exc))
            return Response(ok=True, value=removed)

        if op is Op.SMEMBERS:
            yield from self._pay_costs(0.0, src=client_node, dst=self.node)
            try:
                members = self.kv.smembers(request.key)
            except TypeError as exc:
                return Response(ok=False, code=StoreErrorCode.BAD_REQUEST,
                                message=str(exc))
            return Response(ok=True, value=members)

        return Response(ok=False, code=StoreErrorCode.BAD_REQUEST,
                        message=f"unknown op {op}")

    def _pay_costs(self, nbytes: float, src: Node, dst: Node,
                   batch: int = 1):
        """Concurrently pay CPU + memory-bandwidth + network for a payload."""
        cpu_work = (self.costs.cpu_per_request * batch
                    + self.costs.cpu_per_byte * nbytes)
        # Serialize through the single-threaded event loop *and* account the
        # same work on the node's CPU (where it contends with tenant
        # compute); the request waits for both, so a busy node slows the
        # store and a busy store never exceeds one core.
        loop_flow = self.loop.submit(cpu_work, label=self._loop_label)
        cpu_flow = self.node.cpu.submit(
            cpu_work, cap=self.cpu_cap,
            label=self._cpu_label)
        membw_flow = None
        if nbytes > 0:
            membw_flow = self.node.membw.submit(
                self.costs.membw_work(nbytes), label=self._membw_label)
        net_flow = None
        if nbytes > 0:
            net_flow = self.fabric.transfer(src, dst, nbytes,
                                            cap=self.net_cap,
                                            label=self._net_label,
                                            transport="tcp")
        waits = [loop_flow.done, cpu_flow.done] + \
            ([membw_flow.done] if membw_flow else []) + \
            ([net_flow.done] if net_flow else [])
        try:
            yield self.env.all_of(waits)
        except BaseException:
            # Interrupted mid-request (e.g. eviction): withdraw leftovers.
            self.loop.remove(loop_flow)
            self.node.cpu.remove(cpu_flow)
            if membw_flow is not None:
                self.node.membw.remove(membw_flow)
            if net_flow is not None:
                self.fabric.net.remove(net_flow)
            raise

    # -- lifecycle ---------------------------------------------------------------
    def crash(self) -> float:
        """Kill the store process: contents are lost, requests bounce.

        Models a victim-side store being OOM-killed or its node failing
        (the fault injector's crash events).  Memory is released back to
        the node — the process is gone — and every subsequent request gets
        :data:`StoreErrorCode.UNAVAILABLE` until :meth:`restart`.
        """
        released = self.kv.flush()
        self._sync_memory()
        self.crashed = True
        return released

    def restart(self) -> None:
        """Bring the (empty) store back up after a crash."""
        self.crashed = False

    def shutdown(self) -> float:
        """Flush the store and release all accounted memory."""
        released = self.kv.flush()
        self._sync_memory()
        if self.container is not None:
            self.container.release()
        return released

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StoreServer {self.name}>"
