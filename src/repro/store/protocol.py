"""Request/response types, error taxonomy and cost model for the store
protocol.

Failures travel as a typed :class:`StoreErrorCode` on the
:class:`Response` (and on the :class:`StoreError` raised client-side), so
policy decisions — retry? walk the replica chain? give up? — are driven by
the taxonomy instead of string parsing.  The legacy prefix-encoded
``Response.error`` string (``"full: ..."``) survives as a deprecation shim
for callers that still split on ``":"``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..units import GB

__all__ = ["Op", "Request", "Response", "StoreCostModel", "RateTracker",
           "StoreErrorCode", "StoreError", "RetryPolicy", "NO_RETRY"]


class Op(enum.Enum):
    PUT = "put"
    GET = "get"
    DELETE = "delete"
    EXISTS = "exists"
    FLUSH = "flush"
    INFO = "info"
    # Set-valued operations (Redis SADD/SREM/SMEMBERS): used for directory
    # entries so concurrent metadata updates are server-side atomic.
    SADD = "sadd"
    SREM = "srem"
    SMEMBERS = "smembers"


@dataclass(frozen=True)
class Request:
    op: Op
    key: Hashable = None
    nbytes: float | None = None
    payload: bytes | None = None
    member: str | None = None   # for SADD / SREM
    # A request may stand for a *batch* of `batch` small application-level
    # requests (e.g. one bundle of Montage's 1-4 MB files).  Bytes are the
    # payload total; per-request CPU and the arrival-rate tracker are
    # charged `batch` times, preserving the latency-interference behaviour
    # of many-small-request workloads at a fraction of the event count.
    batch: int = 1
    password: str = ""
    client_node: str = ""


class StoreErrorCode(str, enum.Enum):
    """Why a store request failed.

    A ``str`` subclass so legacy comparisons against the old prefix
    strings (``exc.code == "missing"``) keep working during migration.
    """

    AUTH = "auth"                # AUTH policy rejected the request
    FULL = "full"                # store / container / node out of memory
    MISSING = "missing"          # key not present on this server
    BAD_REQUEST = "bad-request"  # malformed request (type/size errors)
    UNAVAILABLE = "unavailable"  # server crashed / gone / unreachable
    TIMEOUT = "timeout"          # client-side deadline expired

    @property
    def retryable(self) -> bool:
        """May the *same* request be retried (same server) with any hope?

        Timeouts and crashes are transient; a missing key, a full store,
        or a rejected request will fail identically on retry — those are
        handled by walking the replica chain, not by retrying.
        """
        return self in _RETRYABLE

    @property
    def fallthrough(self) -> bool:
        """Should a chain read fall through to the next replica?"""
        return self in _FALLTHROUGH


_RETRYABLE = frozenset({StoreErrorCode.TIMEOUT, StoreErrorCode.UNAVAILABLE})
_FALLTHROUGH = frozenset({StoreErrorCode.MISSING, StoreErrorCode.UNAVAILABLE,
                          StoreErrorCode.TIMEOUT})


class StoreError(RuntimeError):
    """A store request failed; :attr:`code` carries the typed cause.

    :attr:`details` is an optional JSON-safe dict of structured context
    (for ``FULL``: the store id, requested bytes and free bytes, straight
    from :class:`~repro.store.kvstore.StoreFull`), so pressure/spill
    logic never parses :attr:`message`.
    """

    def __init__(self, code: StoreErrorCode | str, message: str = "",
                 details: dict | None = None):
        if not isinstance(code, StoreErrorCode):
            code = StoreErrorCode(code)
        super().__init__(f"{code.value}: {message}" if message
                         else code.value)
        self.code = code
        self.message = message
        self.details = dict(details) if details else {}

    def __reduce__(self):
        # args hold the formatted "code: message" string; default
        # exception pickling would feed that back into __init__ as
        # *code* and fail the StoreErrorCode lookup on unpickle.
        return (type(self), (self.code, self.message, self.details))

    @property
    def retryable(self) -> bool:
        return self.code.retryable


class Response:
    """Outcome of one request.

    Failures carry a :class:`StoreErrorCode` in :attr:`code` plus a plain
    :attr:`message`.  The legacy ``error`` surface — a prefix-encoded
    string like ``"full: out of memory"`` that callers used to
    ``split(":", 1)`` — is kept as a read/write deprecation shim.
    """

    __slots__ = ("ok", "value", "code", "message", "details")

    def __init__(self, ok: bool, value: Any = None,
                 code: StoreErrorCode | str | None = None,
                 message: str = "", error: str = "",
                 details: dict | None = None):
        self.ok = ok
        self.value = value
        self.details = dict(details) if details else {}
        if code is not None and not isinstance(code, StoreErrorCode):
            code = StoreErrorCode(code)
        if code is None and error:
            # Legacy construction: parse the old "code: message" shape.
            prefix, _, rest = error.partition(":")
            try:
                code = StoreErrorCode(prefix.strip())
                message = message or rest.strip()
            except ValueError:
                code = StoreErrorCode.BAD_REQUEST
                message = message or error
        self.code = code
        self.message = message

    @property
    def error(self) -> str:
        """Deprecated prefix-encoded error string (old wire shape)."""
        if self.code is None:
            return self.message
        return f"{self.code.value}: {self.message}"

    def raise_for_status(self) -> None:
        """Raise the matching :class:`StoreError` if the request failed."""
        if not self.ok:
            raise StoreError(self.code or StoreErrorCode.BAD_REQUEST,
                             self.message, details=self.details)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return f"Response(ok=True, value={self.value!r})"
        return f"Response(ok=False, code={self.code!r}, " \
               f"message={self.message!r})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    Delays are drawn through the caller's seeded ``sim.rng`` stream (never
    the global ``random`` module) so retry timing is reproducible
    bit-for-bit.  ``attempts`` counts total tries, so ``attempts=1``
    disables retrying.
    """

    attempts: int = 3
    base_delay: float = 1e-3      # first backoff, seconds
    multiplier: float = 2.0       # exponential growth per attempt
    max_delay: float = 0.25       # backoff ceiling
    jitter: float = 0.5           # +/- fraction of the delay randomized
    retry_on: frozenset = _RETRYABLE

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, code: StoreErrorCode, attempt: int) -> bool:
        """True if try number *attempt* (1-based) may be followed by another."""
        return attempt < self.attempts and code in self.retry_on

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before try ``attempt + 1`` (attempt is 1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if rng is not None and self.jitter > 0 and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


#: Retry disabled: single attempt, no backoff.
NO_RETRY = RetryPolicy(attempts=1)


@dataclass(frozen=True)
class StoreCostModel:
    """Resource cost per store request, at measured Redis-over-IPoIB scale:
    the single-threaded Redis event loop sustains ~1.5 GB/s of payload per
    core (protocol parsing + memcpy + kernel TCP/IPoIB), a request costs
    tens of microseconds of CPU, and every stored byte crosses the memory
    bus about twice (socket buffer in, value store out).

    These constants drive the victim-side bounds of Fig. 2 (CPU < 5 %, NIC
    < 16 %), the receiver-bound slowdown of the α = 100 % case in Fig. 2f,
    and the memory-bandwidth interference felt by STREAM in Fig. 3.
    """

    cpu_per_request: float = 30e-6          # core-seconds per request
    cpu_per_byte: float = 1.0 / (1.5 * GB)  # core-seconds per payload byte
    membw_copy_factor: float = 2.0          # memory-bus bytes per payload byte
    key_overhead: float = 128.0             # store metadata bytes per key

    def cpu_work(self, nbytes: float) -> float:
        return self.cpu_per_request + self.cpu_per_byte * nbytes

    def membw_work(self, nbytes: float) -> float:
        return self.membw_copy_factor * nbytes


class RateTracker:
    """Exponentially-decayed event rate (events/s).

    Tracks the store's request arrival rate; tenants' latency-sensitive
    phases read it to compute interference (the paper's BLAST-vs-dd effect:
    many small requests inflate MPI latency more than few large ones).
    """

    __slots__ = ("tau", "_rate", "_last")

    def __init__(self, tau: float = 2.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self._rate = 0.0
        self._last = 0.0

    def record(self, now: float, count: float = 1.0) -> None:
        self._decay(now)
        self._rate += count / self.tau

    def rate(self, now: float) -> float:
        self._decay(now)
        return self._rate

    def _decay(self, now: float) -> None:
        dt = now - self._last
        if dt > 0:
            self._rate *= math.exp(-dt / self.tau)
            self._last = now
