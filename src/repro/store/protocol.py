"""Request/response types and cost model for the store protocol."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..units import GB

__all__ = ["Op", "Request", "Response", "StoreCostModel", "RateTracker"]


class Op(enum.Enum):
    PUT = "put"
    GET = "get"
    DELETE = "delete"
    EXISTS = "exists"
    FLUSH = "flush"
    INFO = "info"
    # Set-valued operations (Redis SADD/SREM/SMEMBERS): used for directory
    # entries so concurrent metadata updates are server-side atomic.
    SADD = "sadd"
    SREM = "srem"
    SMEMBERS = "smembers"


@dataclass(frozen=True)
class Request:
    op: Op
    key: Hashable = None
    nbytes: float | None = None
    payload: bytes | None = None
    member: str | None = None   # for SADD / SREM
    # A request may stand for a *batch* of `batch` small application-level
    # requests (e.g. one bundle of Montage's 1-4 MB files).  Bytes are the
    # payload total; per-request CPU and the arrival-rate tracker are
    # charged `batch` times, preserving the latency-interference behaviour
    # of many-small-request workloads at a fraction of the event count.
    batch: int = 1
    password: str = ""
    client_node: str = ""


@dataclass
class Response:
    ok: bool
    value: Any = None
    error: str = ""


@dataclass(frozen=True)
class StoreCostModel:
    """Resource cost per store request, at measured Redis-over-IPoIB scale:
    the single-threaded Redis event loop sustains ~1.5 GB/s of payload per
    core (protocol parsing + memcpy + kernel TCP/IPoIB), a request costs
    tens of microseconds of CPU, and every stored byte crosses the memory
    bus about twice (socket buffer in, value store out).

    These constants drive the victim-side bounds of Fig. 2 (CPU < 5 %, NIC
    < 16 %), the receiver-bound slowdown of the α = 100 % case in Fig. 2f,
    and the memory-bandwidth interference felt by STREAM in Fig. 3.
    """

    cpu_per_request: float = 30e-6          # core-seconds per request
    cpu_per_byte: float = 1.0 / (1.5 * GB)  # core-seconds per payload byte
    membw_copy_factor: float = 2.0          # memory-bus bytes per payload byte
    key_overhead: float = 128.0             # store metadata bytes per key

    def cpu_work(self, nbytes: float) -> float:
        return self.cpu_per_request + self.cpu_per_byte * nbytes

    def membw_work(self, nbytes: float) -> float:
        return self.membw_copy_factor * nbytes


class RateTracker:
    """Exponentially-decayed event rate (events/s).

    Tracks the store's request arrival rate; tenants' latency-sensitive
    phases read it to compute interference (the paper's BLAST-vs-dd effect:
    many small requests inflate MPI latency more than few large ones).
    """

    __slots__ = ("tau", "_rate", "_last")

    def __init__(self, tau: float = 2.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self._rate = 0.0
        self._last = 0.0

    def record(self, now: float, count: float = 1.0) -> None:
        self._decay(now)
        self._rate += count / self.tau

    def rate(self, now: float) -> float:
        self._decay(now)
        return self._rate

    def _decay(self, now: float) -> None:
        dt = now - self._last
        if dt > 0:
            self._rate *= math.exp(-dt / self.tau)
            self._last = now
