"""Redis stand-in: capacity-accounted KV stores served at simulated cost."""

from .kvstore import KVStore, KeyMissing, StoreFull
from .auth import AuthError, AuthPolicy
from .protocol import (NO_RETRY, Op, RateTracker, Request, Response,
                       RetryPolicy, StoreCostModel, StoreError,
                       StoreErrorCode)
from .server import StoreServer
from .client import StoreClient

__all__ = [
    "KVStore", "KeyMissing", "StoreFull",
    "AuthPolicy", "AuthError",
    "Op", "Request", "Response", "StoreCostModel", "RateTracker",
    "StoreErrorCode", "StoreError", "RetryPolicy", "NO_RETRY",
    "StoreServer", "StoreClient",
]
