"""Redis stand-in: capacity-accounted KV stores served at simulated cost."""

from .kvstore import KVStore, KeyMissing, StoreFull
from .auth import AuthError, AuthPolicy
from .protocol import Op, RateTracker, Request, Response, StoreCostModel
from .server import StoreError, StoreServer
from .client import StoreClient

__all__ = [
    "KVStore", "KeyMissing", "StoreFull",
    "AuthPolicy", "AuthError",
    "Op", "Request", "Response", "StoreCostModel", "RateTracker",
    "StoreServer", "StoreError", "StoreClient",
]
