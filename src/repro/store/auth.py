"""Store authentication (paper §III-F, mechanism 1).

MemFSS runs Redis with AUTH enabled so that *"only the clients residing on
the own nodes could send requests"*.  We model the same policy: a shared
password plus an allow-list of client node names.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["AuthPolicy", "AuthError"]


class AuthError(PermissionError):
    """Request rejected by the store's authentication policy."""


class AuthPolicy:
    """Password + node allow-list checked on every request."""

    def __init__(self, password: str, allowed_nodes: Iterable[str] | None = None):
        if not password:
            raise ValueError("password must be non-empty")
        self.password = password
        self._allowed: set[str] | None = (
            set(allowed_nodes) if allowed_nodes is not None else None)

    def allow_node(self, node_name: str) -> None:
        if self._allowed is None:
            self._allowed = set()
        self._allowed.add(node_name)

    def check(self, password: str, node_name: str) -> None:
        """Raise :class:`AuthError` unless the credentials pass."""
        if password != self.password:
            raise AuthError(f"bad password from {node_name}")
        if self._allowed is not None and node_name not in self._allowed:
            raise AuthError(f"node {node_name!r} not on the allow-list")
