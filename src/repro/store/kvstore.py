"""In-memory key-value store (the Redis stand-in's data plane).

Pure and synchronous: no simulation dependencies, so it is unit-testable
and reusable outside the simulator.  Values may carry real payload bytes
(functional mode, used by the file-system tests) or be size-only (simulation
mode, where shipping 256 GB of real bytes would be pointless).  Either way
the store accounts memory: payload size plus a per-key overhead, against a
fixed capacity.
"""

from __future__ import annotations

from typing import Hashable, Iterator

__all__ = ["KVStore", "StoreFull", "KeyMissing"]


class StoreFull(RuntimeError):
    """A put would exceed the store's memory capacity.

    Carries structured fields — the store's id, the requested payload
    bytes and the free bytes at rejection time — so spill and degradation
    logic never parses the message.  When only the fields are given, the
    message is synthesized in the legacy
    ``"put of X B would exceed capacity (Y B free)"`` shape, which older
    callers still match on.
    """

    def __init__(self, message: str = "", *, store: str | None = None,
                 requested: float | None = None, free: float | None = None):
        if not message and requested is not None:
            message = (f"put of {requested:.3g} B would exceed capacity "
                       f"({(free if free is not None else 0.0):.3g} B free)")
        super().__init__(message)
        self.message = message
        self.store = store
        self.requested = requested
        self.free = free

    def __reduce__(self):
        # Keyword-only fields would be dropped by default exception
        # pickling (which replays positional args only).
        return (type(self), (self.message,),
                {"store": self.store, "requested": self.requested,
                 "free": self.free})

    def details(self) -> dict:
        """The structured fields as a JSON-safe dict (empty ones omitted)."""
        out: dict = {}
        if self.store is not None:
            out["store"] = self.store
        if self.requested is not None:
            out["requested_bytes"] = float(self.requested)
        if self.free is not None:
            out["free_bytes"] = float(self.free)
        return out


class KeyMissing(KeyError):
    """GET/DELETE on an absent key."""


class _Entry:
    __slots__ = ("nbytes", "payload")

    def __init__(self, nbytes: float, payload: bytes | None):
        self.nbytes = nbytes
        self.payload = payload


class KVStore:
    """Capacity-accounted dictionary of keys to (size, optional payload)."""

    def __init__(self, capacity: float, key_overhead: float = 128.0,
                 name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if key_overhead < 0:
            raise ValueError("key_overhead must be non-negative")
        self.name = name
        self.capacity = float(capacity)
        self.key_overhead = float(key_overhead)
        self._data: dict[Hashable, _Entry] = {}
        self._used = 0.0
        # Lifetime counters for INFO.
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.bytes_in = 0.0
        self.bytes_out = 0.0

    # -- capacity ---------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity - self._used

    def _cost(self, nbytes: float) -> float:
        return nbytes + self.key_overhead

    # -- operations ---------------------------------------------------------------
    def put(self, key: Hashable, nbytes: float | None = None,
            payload: bytes | None = None) -> None:
        """Store *key*.  Size comes from *payload* if given, else *nbytes*.

        Overwriting an existing key first releases its old footprint.
        """
        if payload is not None:
            size = float(len(payload))
            if nbytes is not None and float(nbytes) != size:
                raise ValueError("nbytes disagrees with len(payload)")
        elif nbytes is not None:
            size = float(nbytes)
            if size < 0:
                raise ValueError("nbytes must be non-negative")
        else:
            raise ValueError("put needs nbytes or payload")
        old = self._data.get(key)
        released = self._cost(old.nbytes) if old is not None else 0.0
        if self._used - released + self._cost(size) > self.capacity:
            raise StoreFull(store=self.name or None, requested=size,
                            free=self.free_bytes + released)
        self._used += self._cost(size) - released
        self._data[key] = _Entry(size, payload)
        self.puts += 1
        self.bytes_in += size

    def get(self, key: Hashable) -> tuple[float, bytes | None]:
        """Return ``(nbytes, payload_or_None)``; raises :class:`KeyMissing`."""
        entry = self._data.get(key)
        if entry is None:
            raise KeyMissing(key)
        self.gets += 1
        self.bytes_out += entry.nbytes
        return entry.nbytes, entry.payload

    def size_of(self, key: Hashable) -> float:
        entry = self._data.get(key)
        if entry is None:
            raise KeyMissing(key)
        return entry.nbytes

    def contains(self, key: Hashable) -> bool:
        return key in self._data

    __contains__ = contains

    def delete(self, key: Hashable) -> float:
        """Remove *key*, returning the payload bytes released."""
        entry = self._data.pop(key, None)
        if entry is None:
            raise KeyMissing(key)
        self._used -= self._cost(entry.nbytes)
        self.deletes += 1
        return entry.nbytes

    def flush(self) -> float:
        """Drop everything; returns the payload bytes released."""
        total = sum(e.nbytes for e in self._data.values())
        self._data.clear()
        self._used = 0.0
        return total

    # -- set values (Redis SADD/SREM/SMEMBERS) ------------------------------------
    # Directory entries are server-side sets so concurrent create/unlink on
    # the same parent directory stay atomic, exactly as Redis sets do for
    # the real MemFSS metadata.

    def sadd(self, key: Hashable, member: str) -> bool:
        """Add *member* to the set at *key* (created on demand).

        Returns True if the member was new.  Accounting charges the
        member's string length plus the per-key overhead once.
        """
        entry = self._data.get(key)
        if entry is None:
            cost = self._cost(0.0)
            if self._used + cost > self.capacity:
                raise StoreFull("sadd: no room for new set",
                                store=self.name or None, requested=cost,
                                free=self.free_bytes)
            entry = _Entry(0.0, set())
            self._data[key] = entry
            self._used += cost
        if not isinstance(entry.payload, set):
            raise TypeError(f"key {key!r} does not hold a set")
        if member in entry.payload:
            return False
        size = float(len(member))
        if self._used + size > self.capacity:
            raise StoreFull("sadd: over capacity",
                            store=self.name or None, requested=size,
                            free=self.free_bytes)
        entry.payload.add(member)
        entry.nbytes += size
        self._used += size
        return True

    def srem(self, key: Hashable, member: str) -> bool:
        """Remove *member*; returns True if it was present."""
        entry = self._data.get(key)
        if entry is None:
            return False
        if not isinstance(entry.payload, set):
            raise TypeError(f"key {key!r} does not hold a set")
        if member not in entry.payload:
            return False
        entry.payload.discard(member)
        size = float(len(member))
        entry.nbytes -= size
        self._used -= size
        return True

    def smembers(self, key: Hashable) -> frozenset:
        """Members of the set at *key* (empty if absent)."""
        entry = self._data.get(key)
        if entry is None:
            return frozenset()
        if not isinstance(entry.payload, set):
            raise TypeError(f"key {key!r} does not hold a set")
        return frozenset(entry.payload)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> dict[str, float]:
        return {
            "keys": float(len(self._data)),
            "used_bytes": self._used,
            "capacity": self.capacity,
            "puts": float(self.puts),
            "gets": float(self.gets),
            "deletes": float(self.deletes),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }
