"""Command-line entry point: run any of the paper's experiments.

::

    memfss fig2   [--tasks 256]
    memfss fig3   [--alpha 0.25] [--workload dd]
    memfss fig4   [--alpha 0.25] [--workload dd]
    memfss fig5   [--workload dd]
    memfss table2 [--scale 8]
    memfss table1

Each command prints the corresponding table or series as text.  The
benchmark suite under ``benchmarks/`` runs the same experiments with
shape assertions and result caching; the CLI is the quick interactive way
to poke at one scenario.
"""

from __future__ import annotations

import argparse
import sys

from .core import (DeploymentConfig, MemFSSDeployment, baseline_sweep,
                   normalized, run_scavenging, run_standalone)
from .core.slowdown import BackgroundWorkload, _run_suite
from .data import TABLE_I
from .metrics import render_table
from .tenants import hibench_hadoop_suite, hibench_spark_suite, hpcc_suite
from .units import GB, MB
from .workflows import MONTAGE_PAPER_WIDTH, blast, dd_bag, montage

WORKLOADS = {
    "montage": lambda i: montage(width=96, compute_scale=0.02,
                                 parallel_task_scale=2.0),
    "blast": lambda i: blast(n_searches=256, split_seconds=10.0,
                             search_seconds=60.0),
    "dd": lambda i: dd_bag(n_tasks=128, file_size=128 * MB),
}


def cmd_table1(_args) -> int:
    rows = [[r.study,
             "N/A" if r.cpu == (None, None) else f"<= {r.cpu[1] * 100:.0f}%",
             "N/A" if r.memory == (None, None)
             else f"<= {r.memory[1] * 100:.0f}%",
             "N/A" if r.network == (None, None)
             else f"<= {r.network[1] * 100:.0f}%",
             r.note]
            for r in TABLE_I]
    print(render_table(["Study", "CPU", "Memory", "Network", "Note"], rows,
                       title="Table I (survey data)"))
    return 0


def cmd_fig2(args) -> int:
    metrics = baseline_sweep(n_tasks=args.tasks, file_size=128 * MB)
    rows = [[f"{m.alpha * 100:.0f}%", f"{m.runtime_s:.2f} s",
             f"{m.own_cpu * 100:.1f}%", f"{m.victim_cpu * 100:.2f}%",
             f"{m.victim_rx_bytes_s / MB:.0f} MB/s"]
            for m in metrics]
    print(render_table(["alpha", "runtime", "own CPU", "victim CPU",
                        "victim ingest"], rows,
                       title=f"Fig. 2 baseline ({args.tasks} dd tasks)"))
    return 0


def _slowdown(args, suite_builder, title: str) -> int:
    config = DeploymentConfig(alpha=args.alpha)
    base = MemFSSDeployment(config)
    baseline = _run_suite(base, suite_builder(len(base.victims)))
    loaded_dep = MemFSSDeployment(config)
    bg = BackgroundWorkload(loaded_dep, WORKLOADS[args.workload])
    bg.start()
    loaded_dep.env.run(until=loaded_dep.env.now + 45.0)
    loaded = _run_suite(loaded_dep, suite_builder(len(loaded_dep.victims)))
    bg.stop()
    rows = [[b, f"{baseline[b]:.1f} s", f"{loaded[b]:.1f} s",
             f"{(loaded[b] / baseline[b] - 1) * 100:.2f}%"]
            for b in baseline]
    print(render_table(["benchmark", "baseline", "scavenged", "slowdown"],
                       rows, title=title))
    return 0


def cmd_fig3(args) -> int:
    return _slowdown(args, lambda n: hpcc_suite(0.5),
                     f"Fig. 3: HPCC under {args.workload}, "
                     f"alpha={args.alpha}")


def cmd_fig4(args) -> int:
    return _slowdown(args, hibench_hadoop_suite,
                     f"Fig. 4: HiBench Hadoop under {args.workload}, "
                     f"alpha={args.alpha}")


def cmd_fig5(args) -> int:
    args.alpha = 0.5
    return _slowdown(args, hibench_spark_suite,
                     f"Fig. 5: HiBench Spark under {args.workload}, "
                     "alpha=0.5")


def cmd_table2(args) -> int:
    scale = args.scale
    width = MONTAGE_PAPER_WIDTH // scale
    wf = lambda: montage(width=width, parallel_task_scale=float(scale))
    own_cap = 60 * GB / scale
    vic_mem = 28 * GB / scale
    points = [run_standalone(wf(), n_nodes=20, store_capacity=own_cap),
              run_standalone(wf(), n_nodes=19, store_capacity=own_cap)]
    for n in (4, 8, 16):
        points.append(run_scavenging(wf(), n_own=n, n_victim=40 - n,
                                     victim_memory=vic_mem,
                                     own_store_capacity=own_cap))
    rows = []
    for p in points:
        if not p.fits:
            rows.append([p.label, str(p.n_nodes), "unable to run", "-"])
        else:
            rows.append([p.label, str(p.n_nodes), f"{p.runtime_s:.0f} s",
                         f"{p.node_hours:.2f}"])
    print(render_table(["run", "own nodes", "runtime", "node-hours"], rows,
                       title=f"Table II (data scale 1/{scale})"))
    base = points[0]
    for row in normalized([p for p in points if p.fits], base):
        print(f"  {row['label']}: runtime x{row['norm_runtime']:.3f}, "
              f"node-hours x{row['norm_node_hours']:.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="memfss", description="MemFSS paper-reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table I survey")
    p2 = sub.add_parser("fig2", help="dd-bag baseline sweep")
    p2.add_argument("--tasks", type=int, default=256)
    for name in ("fig3", "fig4", "fig5"):
        p = sub.add_parser(name, help=f"{name} slowdown experiment")
        if name != "fig5":
            p.add_argument("--alpha", type=float, default=0.25)
        p.add_argument("--workload", choices=sorted(WORKLOADS),
                       default="dd")
    pt = sub.add_parser("table2", help="Montage consumption experiment")
    pt.add_argument("--scale", type=int, default=8,
                    help="data down-scale factor (default 8)")

    args = parser.parse_args(argv)
    handlers = {"table1": cmd_table1, "fig2": cmd_fig2, "fig3": cmd_fig3,
                "fig4": cmd_fig4, "fig5": cmd_fig5, "table2": cmd_table2}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
