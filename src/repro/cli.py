"""Command-line entry point: run any of the paper's experiments.

::

    memfss fig2   [--tasks 256] [-j N] [--no-cache]
    memfss fig3   [--alpha 0.25] [--workload dd] [-j N] [--no-cache]
    memfss fig4   [--alpha 0.25] [--workload dd] [-j N] [--no-cache]
    memfss fig5   [--workload dd] [-j N] [--no-cache]
    memfss table2 [--scale 8] [-j N] [--no-cache]
    memfss table1

Each command prints the corresponding table or series as text.  Every
figure is a sweep of independent simulations, so ``-j/--jobs N`` fans
them out over N worker processes (byte-identical to the serial run) and
results are cached content-addressed under ``.repro-cache/`` (override
with ``REPRO_CACHE_DIR``; ``--no-cache`` disables) so a warm re-run is
near-instant.  ``--solver {auto,incremental,reference}`` picks the flow
fabric's fill strategy (byte-identical outputs in every mode) and
``--profile`` wraps the command in cProfile, leaving
``results/profile-<cmd>.pstats``/``.txt`` for perf work.  The
benchmark suite under ``benchmarks/`` runs the same
experiments with shape assertions; the CLI is the quick interactive way
to poke at one scenario.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

from .core import (DeploymentConfig, baseline_sweep, normalized)
from .core.slowdown import SlowdownResult
from .data import TABLE_I
from .exec import (ResultCache, consumption_specs, run_consumption_points,
                   slowdown_sweep)
from .metrics import render_table
from .units import GB, MB
from .workflows import MONTAGE_PAPER_WIDTH

#: Scavenging workloads at CLI scale: name → (builder name, kwargs),
#: resolved by the scenario executor (specs carry names, not callables).
WORKLOADS = {
    "montage": ("montage", {"width": 96, "compute_scale": 0.02,
                            "parallel_task_scale": 2.0}),
    "blast": ("blast", {"n_searches": 256, "split_seconds": 10.0,
                        "search_seconds": 60.0}),
    "dd": ("dd", {"n_tasks": 128, "file_size": 128 * MB}),
}


def _cache_from(args) -> ResultCache | None:
    return ResultCache() if getattr(args, "cache", False) else None


def _solver_from(args) -> str | None:
    return getattr(args, "solver", None)


def _profiled(handler, args) -> int:
    """Run *handler* under cProfile; write pstats + a top-20 table.

    Artifacts land in ``results/`` next to the benchmark result JSONs:
    ``profile-<command>.pstats`` (load with :mod:`pstats`) and
    ``profile-<command>.txt`` (top 20 by cumulative time).
    """
    prof = cProfile.Profile()
    rc = prof.runcall(handler, args)
    out = Path("results")
    out.mkdir(exist_ok=True)
    base = out / f"profile-{args.command}"
    prof.dump_stats(str(base.with_suffix(".pstats")))
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(20)
    base.with_suffix(".txt").write_text(buf.getvalue())
    print(f"profile written: {base.with_suffix('.pstats')} and "
          f"{base.with_suffix('.txt')} (top 20 cumulative)")
    return rc


def cmd_table1(_args) -> int:
    rows = [[r.study,
             "N/A" if r.cpu == (None, None) else f"<= {r.cpu[1] * 100:.0f}%",
             "N/A" if r.memory == (None, None)
             else f"<= {r.memory[1] * 100:.0f}%",
             "N/A" if r.network == (None, None)
             else f"<= {r.network[1] * 100:.0f}%",
             r.note]
            for r in TABLE_I]
    print(render_table(["Study", "CPU", "Memory", "Network", "Note"], rows,
                       title="Table I (survey data)"))
    return 0


def cmd_fig2(args) -> int:
    metrics = baseline_sweep(n_tasks=args.tasks, file_size=128 * MB,
                             config=DeploymentConfig(
                                 solver=_solver_from(args)),
                             jobs=args.jobs, cache=_cache_from(args))
    rows = [[f"{m.alpha * 100:.0f}%", f"{m.runtime_s:.2f} s",
             f"{m.own_cpu * 100:.1f}%", f"{m.victim_cpu * 100:.2f}%",
             f"{m.victim_rx_bytes_s / MB:.0f} MB/s"]
            for m in metrics]
    print(render_table(["alpha", "runtime", "own CPU", "victim CPU",
                        "victim ingest"], rows,
                       title=f"Fig. 2 baseline ({args.tasks} dd tasks)"))
    return 0


def _slowdown(args, suite: str, suite_scale: float, title: str) -> int:
    config = DeploymentConfig(
        solver=_solver_from(args)).with_alpha(args.alpha)
    builder, kwargs = WORKLOADS[args.workload]
    sweep = slowdown_sweep(config, suite, suite_scale,
                           workloads=(builder,), workload_kwargs=kwargs,
                           warmup=45.0, jobs=args.jobs,
                           cache=_cache_from(args))
    baseline, loaded = sweep[None], sweep[builder]
    results = [SlowdownResult(b, baseline[b], loaded[b]) for b in baseline]
    rows = [[r.benchmark, f"{r.baseline_s:.1f} s", f"{r.loaded_s:.1f} s",
             f"{r.slowdown_pct:.2f}%"]
            for r in results]
    print(render_table(["benchmark", "baseline", "scavenged", "slowdown"],
                       rows, title=title))
    return 0


def cmd_fig3(args) -> int:
    return _slowdown(args, "hpcc", 0.5,
                     f"Fig. 3: HPCC under {args.workload}, "
                     f"alpha={args.alpha}")


def cmd_fig4(args) -> int:
    return _slowdown(args, "hibench-hadoop", 1.0,
                     f"Fig. 4: HiBench Hadoop under {args.workload}, "
                     f"alpha={args.alpha}")


def cmd_fig5(args) -> int:
    args.alpha = 0.5
    return _slowdown(args, "hibench-spark", 1.0,
                     f"Fig. 5: HiBench Spark under {args.workload}, "
                     "alpha=0.5")


def cmd_table2(args) -> int:
    scale = args.scale
    width = MONTAGE_PAPER_WIDTH // scale
    own_cap = 60 * GB / scale
    vic_mem = 28 * GB / scale
    specs = consumption_specs(
        "montage", {"width": width, "parallel_task_scale": float(scale)},
        standalone_nodes=(20, 19), scavenging_own=(4, 8, 16),
        total_nodes=40, victim_memory=vic_mem,
        own_store_capacity=own_cap)
    points = run_consumption_points(specs, jobs=args.jobs,
                                    cache=_cache_from(args))
    rows = []
    for p in points:
        if not p.fits:
            cell = p.degraded.render() if p.degraded else "unable to run"
            rows.append([p.label, str(p.n_nodes), cell, "-"])
        else:
            rows.append([p.label, str(p.n_nodes), f"{p.runtime_s:.0f} s",
                         f"{p.node_hours:.2f}"])
    print(render_table(["run", "own nodes", "runtime", "node-hours"], rows,
                       title=f"Table II (data scale 1/{scale})"))
    base = points[0]
    for row in normalized([p for p in points if p.fits], base):
        print(f"  {row['label']}: runtime x{row['norm_runtime']:.3f}, "
              f"node-hours x{row['norm_node_hours']:.3f}")
    return 0


def cmd_market(args) -> int:
    # Lazy: the market layer sits above the core deployment modules.
    from .market import market_mode_specs, run_market
    rows = []
    lost = 0
    for seed in range(args.first_seed, args.first_seed + args.seeds):
        runs = {}
        for spec in market_mode_specs(
                seed, n_tasks=args.tasks, n_events=args.events,
                epoch=args.epoch, alpha=args.static_alpha):
            out = run_market(spec)
            runs[out["mode"]] = out
        calm = runs["calm"]

        def mean_slowdown(mode):
            ratios = [runs[mode]["task_s"][t] / calm["task_s"][t]
                      for t in calm["task_s"]]
            return sum(ratios) / len(ratios)

        ctl = runs["controller"]
        lost += sum(len(runs[m]["lost_files"]) for m in runs)
        rows.append([str(seed),
                     f"{mean_slowdown('static'):.4f}",
                     f"{mean_slowdown('controller'):.4f}",
                     f"{ctl['final_alpha']:.3f}",
                     str(ctl["market"]["retunes"]),
                     f"{ctl['market']['bytes_migrated'] / MB:.0f} MB"])
    print(render_table(
        ["seed", f"static a={args.static_alpha:.0%}", "controller",
         "final a", "retunes", "migrated"],
        rows, title=f"market: mean slowdown vs calm ({args.tasks} dd "
                    f"tasks, {args.events} churn events)"))
    if lost:
        print(f"DATA LOSS: {lost} files failed the read-back audit")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="memfss", description="MemFSS paper-reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    # Sweep-executor knobs shared by every simulating command.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="fan scenarios out over N worker processes "
                             "(default 1 = serial; byte-identical)")
    common.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="reuse cached scenario results from "
                             ".repro-cache/ (default on; --no-cache "
                             "forces re-simulation)")
    common.add_argument("--solver",
                        choices=("auto", "incremental", "reference"),
                        default=None,
                        help="flow-solver mode for the fabric (default: "
                             "the FlowNetwork default, incremental); "
                             "every mode is byte-identical")
    common.add_argument("--profile", action="store_true",
                        help="run under cProfile and write "
                             "results/profile-<cmd>.pstats plus a top-20 "
                             "cumulative table")

    sub.add_parser("table1", help="print the Table I survey")
    p2 = sub.add_parser("fig2", help="dd-bag baseline sweep",
                        parents=[common])
    p2.add_argument("--tasks", type=int, default=256)
    for name in ("fig3", "fig4", "fig5"):
        p = sub.add_parser(name, help=f"{name} slowdown experiment",
                           parents=[common])
        if name != "fig5":
            p.add_argument("--alpha", type=float, default=0.25)
        p.add_argument("--workload", choices=sorted(WORKLOADS),
                       default="dd")
    pt = sub.add_parser("table2", help="Montage consumption experiment",
                        parents=[common])
    pt.add_argument("--scale", type=int, default=8,
                    help="data down-scale factor (default 8)")
    pm = sub.add_parser(
        "market", help="lease-market sweep: controller vs static alpha")
    pm.add_argument("--seeds", type=int, default=3, metavar="N",
                    help="churn-schedule seeds to compare (default 3); "
                         "each seed runs calm/static/controller modes")
    pm.add_argument("--first-seed", type=int, default=0)
    pm.add_argument("--tasks", type=int, default=256,
                    help="dd bag size (default 256 x 64 MB)")
    pm.add_argument("--events", type=int, default=5,
                    help="lease reclaim/repost events per run (default 5)")
    pm.add_argument("--epoch", type=float, default=2.0,
                    help="market clearing period in seconds (default 2.0)")
    pm.add_argument("--static-alpha", type=float, default=0.25,
                    help="the fixed alpha of the static row (default "
                         "0.25, the paper's best)")
    pm.add_argument("--profile", action="store_true",
                    help=argparse.SUPPRESS)

    args = parser.parse_args(argv)
    handlers = {"table1": cmd_table1, "fig2": cmd_fig2, "fig3": cmd_fig3,
                "fig4": cmd_fig4, "fig5": cmd_fig5, "table2": cmd_table2,
                "market": cmd_market}
    handler = handlers[args.command]
    if getattr(args, "profile", False):
        return _profiled(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
