"""Workflow execution engine.

Schedules a :class:`~repro.workflows.dag.Workflow` over the own nodes of a
MemFSS deployment: one slot per logical core (DAS-5 runs one task per
hyperthread), tasks become ready when their file dependencies exist, and
each task's life is read-inputs → compute → write-outputs, all through the
mounted file system at simulated cost.

Like the real MemFS, the engine is a *runtime* file system user: by default
intermediate files are unlinked as soon as their last consumer finishes
("garbage collection"), so the live data footprint is the workflow's
maximum span, not its total I/O volume — the quantity that decides how many
nodes a standalone deployment needs (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.node import Node
from ..fs.memfss import MemFSS
from ..fs.posix import MountPoint
from ..sim import Environment, Event
from .dag import FileSpec, Task, Workflow

__all__ = ["WorkflowEngine", "WorkflowResult", "TaskResult"]


@dataclass
class TaskResult:
    task_id: str
    stage: str
    node: str
    start: float
    end: float
    read_bytes: float
    written_bytes: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class WorkflowResult:
    workflow: str
    start: float
    end: float
    tasks: dict[str, TaskResult] = field(default_factory=dict)
    peak_bytes: float = 0.0

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def stage_span(self, stage: str) -> tuple[float, float]:
        """(first start, last end) over one stage's tasks."""
        rs = [r for r in self.tasks.values() if r.stage == stage]
        if not rs:
            raise KeyError(f"no tasks in stage {stage!r}")
        return min(r.start for r in rs), max(r.end for r in rs)

    def node_hours(self, n_nodes: int) -> float:
        return n_nodes * self.makespan / 3600.0


class WorkflowEngine:
    """List scheduler: ready tasks onto the least-loaded free slot."""

    def __init__(self, env: Environment, fs: MemFSS,
                 workers: list[Node] | None = None,
                 slots_per_node: int | None = None,
                 gc_intermediates: bool = True):
        self.env = env
        self.fs = fs
        self.workers = list(workers) if workers is not None else list(fs.own_nodes)
        if not self.workers:
            raise ValueError("need at least one worker node")
        self.slots_per_node = (slots_per_node if slots_per_node is not None
                               else self.workers[0].spec.cores)
        if self.slots_per_node < 1:
            raise ValueError("slots_per_node must be >= 1")
        self.gc_intermediates = gc_intermediates
        self._mounts = {n.name: MountPoint(fs, n) for n in self.workers}

    # -- staging ----------------------------------------------------------------
    def stage_in(self, workflow: Workflow):
        """Generator: create the workflow's external input files.

        Sizes/bundles are taken from the (first) consumer's FileSpec.
        """
        specs: dict[str, FileSpec] = {}
        for t in workflow.tasks.values():
            for f in t.inputs:
                if workflow.producer_of(f.path) is None:
                    specs.setdefault(f.path, f)
        mp = self._mounts[self.workers[0].name]
        for path in sorted(specs):
            f = specs[path]
            exists = yield from mp.exists(path)
            if not exists:
                yield from mp.write_file(path, nbytes=f.nbytes,
                                         batch=f.n_files)

    # -- execution -----------------------------------------------------------------
    def run(self, workflow: Workflow):
        """Generator: execute the workflow; returns :class:`WorkflowResult`."""
        result = WorkflowResult(workflow=workflow.name, start=self.env.now,
                                end=self.env.now)
        remaining_deps = {tid: set(workflow.dependencies(tid))
                          for tid in workflow.tasks}
        dependents: dict[str, list[str]] = {tid: [] for tid in workflow.tasks}
        for tid, deps in remaining_deps.items():
            for d in deps:
                dependents[d].append(tid)
        # Reference counts for GC: how many consumers has each produced file.
        consumers_left = {
            path: len(workflow.consumers_of(path))
            for path in (f.path for t in workflow.tasks.values()
                         for f in t.outputs)}
        free_slots = {n.name: self.slots_per_node for n in self.workers}
        ready = [tid for tid, deps in remaining_deps.items() if not deps]
        ready.sort()
        running: dict[str, Event] = {}

        while ready or running:
            # Dispatch as many ready tasks as slots allow.
            while ready:
                node_name = max(free_slots, key=lambda n: free_slots[n])
                if free_slots[node_name] == 0:
                    break
                tid = ready.pop(0)
                free_slots[node_name] -= 1
                task = workflow.tasks[tid]
                running[tid] = self.env.process(
                    self._run_task(task, node_name, result),
                    name=f"task:{tid}")
            if not running:
                break
            # Wait for any task to finish.
            try:
                finished_ev = yield self.env.any_of(list(running.values()))
            except BaseException:
                # A task died mid-wait (AnyOf propagates the first child
                # failure).  Cancel the survivors before unwinding.
                for p in running.values():
                    if p.is_alive:
                        p.interrupt("workflow aborted")
                raise
            finished = [tid for tid, p in running.items() if p.triggered]
            for tid in finished:
                proc = running.pop(tid)
                if not proc.ok:
                    # A task died (e.g. a store filled up).  Cancel its
                    # siblings so they stop consuming resources, then
                    # surface the failure to whoever ran the workflow.
                    for other in running.values():
                        if other.is_alive:
                            other.interrupt("workflow aborted")
                    raise proc.value
                node_name = result.tasks[tid].node
                free_slots[node_name] += 1
                for succ in dependents[tid]:
                    remaining_deps[succ].discard(tid)
                    if not remaining_deps[succ]:
                        ready.append(succ)
                ready.sort()
                # GC inputs whose last consumer just finished.
                if self.gc_intermediates:
                    yield from self._gc_inputs(workflow.tasks[tid],
                                               workflow, consumers_left)
            result.peak_bytes = max(result.peak_bytes, self.fs.used_bytes())
            del finished_ev
        unfinished = [tid for tid, deps in remaining_deps.items() if deps]
        done = set(result.tasks)
        stuck = [tid for tid in unfinished if tid not in done]
        if stuck:  # pragma: no cover - defensive
            raise RuntimeError(f"deadlocked tasks: {sorted(stuck)[:5]}")
        result.end = self.env.now
        return result

    def _run_task(self, task: Task, node_name: str, result: WorkflowResult):
        mp = self._mounts[node_name]
        node = self.fs.fabric.node(node_name)
        start = self.env.now
        read = 0.0
        if task.io_slices <= 1:
            for f in task.inputs:
                size, _ = yield from mp.read_file(f.path, batch=f.n_files)
                read += size
            if task.compute_seconds > 0:
                yield from node.cpu.consume(task.compute_seconds,
                                            cap=float(task.cores),
                                            label=f"task:{task.id}")
        else:
            # Streaming tasks: alternate a slice of each input with a
            # slice of compute, spreading I/O over the task's lifetime.
            slices = task.io_slices
            compute_slice = task.compute_seconds / slices
            for s in range(slices):
                for f in task.inputs:
                    meta_size = f.nbytes
                    off = int(meta_size * s / slices)
                    ln = int(meta_size * (s + 1) / slices) - off
                    if ln <= 0:
                        continue
                    batch = max(1, f.n_files // slices)
                    nread, _ = yield from self.fs.read_range(
                        node, f.path, off, ln, batch=batch)
                    read += nread
                if compute_slice > 0:
                    yield from node.cpu.consume(compute_slice,
                                                cap=float(task.cores),
                                                label=f"task:{task.id}")
        written = 0.0
        for f in task.outputs:
            yield from mp.write_file(f.path, nbytes=f.nbytes,
                                     batch=f.n_files)
            written += f.nbytes
        result.tasks[task.id] = TaskResult(
            task_id=task.id, stage=task.stage, node=node_name,
            start=start, end=self.env.now,
            read_bytes=read, written_bytes=written)

    def _gc_inputs(self, task: Task, workflow: Workflow,
                   consumers_left: dict[str, int]):
        mp = self._mounts[self.workers[0].name]
        for f in task.inputs:
            if f.path not in consumers_left:
                continue  # external input; not ours to delete
            consumers_left[f.path] -= 1
            if consumers_left[f.path] <= 0:
                exists = yield from mp.exists(f.path)
                if exists:
                    yield from mp.unlink(f.path)

    def execute(self, workflow: Workflow,
                stage_inputs: bool = True) -> WorkflowResult:
        """Blocking convenience: stage in, run, and drive the simulation."""
        def driver():
            if stage_inputs:
                yield from self.stage_in(workflow)
            return (yield from self.run(workflow))

        proc = self.env.process(driver(), name=f"workflow:{workflow.name}")
        return self.env.run(until=proc)
