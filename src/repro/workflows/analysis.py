"""Workflow structure analysis (paper §II-A).

Quantifies why scientific workflows under-utilize reserved CPUs: the
*achieved parallelism* profile (how many tasks could run concurrently over
the workflow's lifetime) collapses during long aggregation/partitioning
stages, so the time-average parallelism is far below the peak and the
reserved cores idle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dag import Workflow
from .engine import WorkflowResult

__all__ = ["StageStats", "stage_statistics", "ideal_parallelism_profile",
           "achieved_parallelism", "cpu_utilization_of_run"]


@dataclass(frozen=True)
class StageStats:
    stage: str
    n_tasks: int
    total_compute: float
    mean_task_seconds: float
    max_width: int


def stage_statistics(wf: Workflow) -> list[StageStats]:
    """Per-stage task counts and compute volume, in stage order."""
    out = []
    for stage in wf.stages():
        tasks = wf.stage_tasks(stage)
        total = sum(t.compute_seconds for t in tasks)
        out.append(StageStats(
            stage=stage, n_tasks=len(tasks), total_compute=total,
            mean_task_seconds=total / len(tasks),
            max_width=len(tasks)))
    return out


def ideal_parallelism_profile(wf: Workflow) -> tuple[np.ndarray, np.ndarray]:
    """(time, width) under infinite resources and zero I/O cost.

    Every task starts the instant its dependencies finish; the profile is
    the number of running tasks over time — the workflow's *potential*
    parallelism (paper §II-A).
    """
    finish: dict[str, float] = {}
    start: dict[str, float] = {}
    for tid in wf.topological_order():
        t = wf.tasks[tid]
        s = max((finish[d] for d in wf.dependencies(tid)), default=0.0)
        start[tid] = s
        finish[tid] = s + t.compute_seconds / t.cores
    events: list[tuple[float, int]] = []
    for tid in wf.tasks:
        events.append((start[tid], +1))
        events.append((finish[tid], -1))
    events.sort()
    times, widths = [0.0], [0]
    w = 0
    for t, delta in events:
        w += delta
        if times[-1] == t:
            widths[-1] = w
        else:
            times.append(t)
            widths.append(w)
    return np.asarray(times), np.asarray(widths)


def achieved_parallelism(wf: Workflow) -> float:
    """Time-average width of the ideal profile (work / critical path)."""
    cp = wf.critical_path_seconds()
    if cp == 0:
        return 0.0
    work = sum(t.compute_seconds / t.cores * t.cores
               for t in wf.tasks.values())
    return wf.total_compute_seconds / cp


def cpu_utilization_of_run(result: WorkflowResult, n_nodes: int,
                           cores_per_node: int) -> float:
    """Fraction of reserved core-time actually computing in a real run."""
    if result.makespan <= 0:
        return 0.0
    busy = sum(r.duration for r in result.tasks.values())
    # duration includes I/O; still an upper bound on CPU use — callers
    # wanting exact numbers should probe node.cpu.busy_time() instead.
    return min(1.0, busy / (result.makespan * n_nodes * cores_per_node))
