"""Scientific-workflow substrate: DAGs, execution engine, generators."""

from .dag import CycleError, FileSpec, Task, Workflow
from .engine import TaskResult, WorkflowEngine, WorkflowResult
from .generators import MONTAGE_PAPER_WIDTH, blast, dd_bag, montage
from .analysis import (StageStats, achieved_parallelism,
                       cpu_utilization_of_run, ideal_parallelism_profile,
                       stage_statistics)

__all__ = [
    "FileSpec", "Task", "Workflow", "CycleError",
    "WorkflowEngine", "WorkflowResult", "TaskResult",
    "dd_bag", "montage", "blast", "MONTAGE_PAPER_WIDTH",
    "StageStats", "stage_statistics", "ideal_parallelism_profile",
    "achieved_parallelism", "cpu_utilization_of_run",
]
