"""Scientific-workflow DAG model (paper §II-A).

Workflows are "applications composed of many tasks linked through data
dependencies ... typically described by directed acyclic graphs".  Tasks
communicate through *files*: a task is ready when every task producing one
of its input files has completed.  Tasks carry a compute demand
(core-seconds at a core width) and file I/O specs; the engine turns these
into simulator resource demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["FileSpec", "Task", "Workflow", "CycleError"]


class CycleError(ValueError):
    """The task graph has a cycle (not a DAG)."""


@dataclass(frozen=True)
class FileSpec:
    """One logical file a task reads or writes.

    ``n_files > 1`` marks a *bundle*: one logical file standing for many
    small application files of the same aggregate size (Montage writes
    thousands of 1-4 MB files; simulating each individually would be
    needless event-count without changing any byte flow — the request count
    is preserved through the store's batch accounting).
    """

    path: str
    nbytes: float = 0.0
    n_files: int = 1

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")


@dataclass
class Task:
    """One workflow task."""

    id: str
    stage: str
    compute_seconds: float = 0.0     # total core-seconds of work
    cores: int = 1                   # maximum width of the compute
    inputs: tuple[FileSpec, ...] = ()
    outputs: tuple[FileSpec, ...] = ()
    extra_deps: tuple[str, ...] = ()  # control dependencies (task ids)
    # > 1 interleaves input reads with compute in that many slices — the
    # streaming-I/O pattern of BLAST-style tasks that read their database
    # throughout the computation instead of staging it up front.
    io_slices: int = 1

    def __post_init__(self):
        if self.compute_seconds < 0:
            raise ValueError(f"{self.id}: compute_seconds must be >= 0")
        if self.cores < 1:
            raise ValueError(f"{self.id}: cores must be >= 1")
        if self.io_slices < 1:
            raise ValueError(f"{self.id}: io_slices must be >= 1")

    @property
    def input_bytes(self) -> float:
        return sum(f.nbytes for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        return sum(f.nbytes for f in self.outputs)


class Workflow:
    """A validated task DAG with file-dependency resolution."""

    def __init__(self, name: str, tasks: Iterable[Task]):
        self.name = name
        self.tasks: dict[str, Task] = {}
        for t in tasks:
            if t.id in self.tasks:
                raise ValueError(f"duplicate task id {t.id!r}")
            self.tasks[t.id] = t
        self._producer: dict[str, str] = {}
        for t in self.tasks.values():
            for f in t.outputs:
                if f.path in self._producer:
                    raise ValueError(
                        f"{f.path!r} produced by both "
                        f"{self._producer[f.path]!r} and {t.id!r}")
                self._producer[f.path] = t.id
        self._deps: dict[str, frozenset[str]] = {}
        for t in self.tasks.values():
            deps = set(t.extra_deps)
            for f in t.inputs:
                prod = self._producer.get(f.path)
                if prod is not None and prod != t.id:
                    deps.add(prod)
            unknown = deps - self.tasks.keys()
            if unknown:
                raise ValueError(f"{t.id}: unknown dependencies {unknown}")
            self._deps[t.id] = frozenset(deps)
        self._check_acyclic()

    # -- structure -------------------------------------------------------------
    def dependencies(self, task_id: str) -> frozenset[str]:
        return self._deps[task_id]

    def producer_of(self, path: str) -> str | None:
        return self._producer.get(path)

    def consumers_of(self, path: str) -> list[str]:
        return [t.id for t in self.tasks.values()
                if any(f.path == path for f in t.inputs)]

    def external_inputs(self) -> list[str]:
        """Paths read by some task but produced by none (staged-in data)."""
        read = {f.path for t in self.tasks.values() for f in t.inputs}
        return sorted(read - self._producer.keys())

    def stages(self) -> list[str]:
        """Stage names in first-appearance order."""
        seen: list[str] = []
        for t in self.tasks.values():
            if t.stage not in seen:
                seen.append(t.stage)
        return seen

    def stage_tasks(self, stage: str) -> list[Task]:
        return [t for t in self.tasks.values() if t.stage == stage]

    def _check_acyclic(self) -> None:
        order = self.topological_order()
        if len(order) != len(self.tasks):
            raise CycleError(f"workflow {self.name!r} has a cycle")

    def topological_order(self) -> list[str]:
        indeg = {tid: len(deps) for tid, deps in self._deps.items()}
        rdeps: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        for tid, deps in self._deps.items():
            for d in deps:
                rdeps[d].append(tid)
        ready = sorted(tid for tid, d in indeg.items() if d == 0)
        out: list[str] = []
        while ready:
            tid = ready.pop(0)
            out.append(tid)
            for succ in sorted(rdeps[tid]):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        return out

    # -- aggregate metrics ----------------------------------------------------------
    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.tasks.values())

    @property
    def total_output_bytes(self) -> float:
        return sum(t.output_bytes for t in self.tasks.values())

    def critical_path_seconds(self) -> float:
        """Longest chain of compute time through the DAG (I/O excluded)."""
        finish: dict[str, float] = {}
        for tid in self.topological_order():
            t = self.tasks[tid]
            start = max((finish[d] for d in self._deps[tid]), default=0.0)
            finish[tid] = start + t.compute_seconds / t.cores
        return max(finish.values(), default=0.0)

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workflow {self.name}: {len(self.tasks)} tasks>"
