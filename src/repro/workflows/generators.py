"""Synthetic generators for the paper's MemFSS workloads (§IV-A-1).

Three workloads drive every experiment:

- :func:`dd_bag` — "a bag of 2048 dd tasks, that each write 128 MB": the
  I/O-bound upper bound on scavenging overhead.  Large sequential requests.
- :func:`montage` — the Montage mosaicking workflow: short tasks (seconds),
  *small files (1-4 MB)*, and a long sequential aggregation/partitioning
  tail (mConcatFit, mBgModel, mAdd) that limits scalability.  Stage shapes
  follow the Juve et al. characterization the paper cites; compute times are
  calibrated so the Table II "large instance" reproduces the published
  runtime/ node-hour points (see EXPERIMENTS.md).
- :func:`blast` — BLAST sequence search: mostly CPU-bound tasks of tens of
  seconds to minutes over hundreds-of-MB files, issuing *many short I/O
  requests* (the property that makes it hurt latency-sensitive tenants more
  than dd, Fig. 3).

Small application files are bundled into logical files with an ``n_files``
count so the store charges per-request costs that many times without
simulating every 2 MB PUT individually.
"""

from __future__ import annotations

import math

from ..units import GB, KB, MB
from .dag import FileSpec, Task, Workflow

__all__ = ["dd_bag", "montage", "blast", "MONTAGE_PAPER_WIDTH"]


def dd_bag(n_tasks: int = 2048, file_size: float = 128 * MB,
           compute_seconds: float = 0.05) -> Workflow:
    """The paper's dd micro-benchmark bag (§IV-B): pure writers."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if file_size < 0:
        raise ValueError("file_size must be non-negative")
    tasks = [
        Task(id=f"dd-{i:05d}", stage="dd",
             compute_seconds=compute_seconds,
             outputs=(FileSpec(f"/dd/out-{i:05d}", file_size),))
        for i in range(n_tasks)
    ]
    return Workflow("dd-bag", tasks)


MONTAGE_PAPER_WIDTH = 2048


def montage(width: int = MONTAGE_PAPER_WIDTH,
            bundle_files: int = 50,
            bundle_bytes: float = 160 * MB,
            n_adds: int = 4,
            compute_scale: float = 1.0,
            parallel_task_scale: float = 1.0) -> Workflow:
    """A Montage instance with the paper's stage structure.

    *width* parallel tiles; each parallel-stage task handles one bundle of
    *bundle_files* small (1-4 MB) files totalling *bundle_bytes*.  At the
    defaults the instance writes ≈ 1 TB of intermediate data — the Table II
    "large instance" whose footprint just fits 20 DAS-5 nodes.

    Compute calibration (core-seconds, scaled by *compute_scale*): the
    parallel stages total ≈ 110 s × width and the sequential tail
    (mConcatFit → mJPEG) ≈ 3950 s, reproducing runtime(n) ≈ tail +
    par/(slots) of Table II.

    *parallel_task_scale* multiplies only the per-tile task durations:
    running a reduced *width* with ``parallel_task_scale =
    MONTAGE_PAPER_WIDTH / width`` keeps the total parallel work (and hence
    the Table II runtime curve) while scaling the data volume down — the
    knob the consumption benchmark uses to stay tractable.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if parallel_task_scale <= 0:
        raise ValueError("parallel_task_scale must be positive")
    cs = compute_scale
    ps = compute_scale * parallel_task_scale
    tasks: list[Task] = []
    # Parallel stage 1: reproject every input tile.
    for i in range(width):
        tasks.append(Task(
            id=f"mProject-{i:05d}", stage="mProjectPP",
            compute_seconds=55.0 * ps,
            inputs=(FileSpec(f"/montage/raw/img-{i:05d}", 8 * MB, n_files=2),),
            outputs=(FileSpec(f"/montage/proj/p-{i:05d}", bundle_bytes,
                              n_files=bundle_files),),
        ))
    # Parallel stage 2: difference fitting between overlapping tiles.
    for i in range(width):
        j = (i + 1) % width
        tasks.append(Task(
            id=f"mDiffFit-{i:05d}", stage="mDiffFit",
            compute_seconds=30.0 * ps,
            inputs=(FileSpec(f"/montage/proj/p-{i:05d}", bundle_bytes,
                             n_files=bundle_files),
                    FileSpec(f"/montage/proj/p-{j:05d}", bundle_bytes,
                             n_files=bundle_files)),
            outputs=(FileSpec(f"/montage/diff/d-{i:05d}", bundle_bytes,
                              n_files=bundle_files),),
        ))
    # Sequential aggregation: fit-plane concatenation over all diffs.
    tasks.append(Task(
        id="mConcatFit", stage="mConcatFit",
        compute_seconds=500.0 * cs,
        inputs=tuple(FileSpec(f"/montage/diff/d-{i:05d}", bundle_bytes,
                              n_files=bundle_files)
                     for i in range(width)),
        outputs=(FileSpec("/montage/fits.tbl", 16 * MB, n_files=width),),
    ))
    # Sequential: background model (the long tail of large instances).
    tasks.append(Task(
        id="mBgModel", stage="mBgModel",
        compute_seconds=2500.0 * cs,
        inputs=(FileSpec("/montage/fits.tbl", 16 * MB, n_files=width),),
        outputs=(FileSpec("/montage/corrections.tbl", 4 * MB),),
    ))
    # Parallel stage 3: apply background corrections.
    for i in range(width):
        tasks.append(Task(
            id=f"mBackground-{i:05d}", stage="mBackground",
            compute_seconds=25.0 * ps,
            inputs=(FileSpec(f"/montage/proj/p-{i:05d}", bundle_bytes,
                             n_files=bundle_files),
                    FileSpec("/montage/corrections.tbl", 4 * MB)),
            outputs=(FileSpec(f"/montage/corr/c-{i:05d}", bundle_bytes,
                              n_files=bundle_files),),
        ))
    # Sequential: image table over the corrected tiles.
    tasks.append(Task(
        id="mImgtbl", stage="mImgtbl",
        compute_seconds=150.0 * cs,
        inputs=tuple(FileSpec(f"/montage/corr/c-{i:05d}", bundle_bytes,
                              n_files=bundle_files)
                     for i in range(min(width, 8))),
        extra_deps=tuple(f"mBackground-{i:05d}" for i in range(width)),
        outputs=(FileSpec("/montage/images.tbl", 8 * MB),),
    ))
    # Few-way parallel co-addition: each mAdd consumes a shard of tiles.
    shard = max(1, width // n_adds)
    for a in range(n_adds):
        lo, hi = a * shard, min(width, (a + 1) * shard)
        if lo >= width:
            break
        tasks.append(Task(
            id=f"mAdd-{a}", stage="mAdd",
            compute_seconds=500.0 * cs,
            inputs=(FileSpec("/montage/images.tbl", 8 * MB),) + tuple(
                FileSpec(f"/montage/corr/c-{i:05d}", bundle_bytes,
                         n_files=bundle_files) for i in range(lo, hi)),
            outputs=(FileSpec(f"/montage/mosaic-{a}.fits",
                              bundle_bytes * (hi - lo) / 4, n_files=1),),
        ))
    # Sequential finishing: shrink + JPEG preview.
    tasks.append(Task(
        id="mShrink", stage="mShrink",
        compute_seconds=200.0 * cs,
        inputs=tuple(FileSpec(f"/montage/mosaic-{a}.fits",
                              bundle_bytes * shard / 4)
                     for a in range(min(n_adds, math.ceil(width / shard)))),
        outputs=(FileSpec("/montage/mosaic-small.fits", 512 * MB),),
    ))
    tasks.append(Task(
        id="mJPEG", stage="mJPEG",
        compute_seconds=100.0 * cs,
        inputs=(FileSpec("/montage/mosaic-small.fits", 512 * MB),),
        outputs=(FileSpec("/montage/mosaic.jpg", 64 * MB),),
    ))
    return Workflow("montage", tasks)


def blast(n_searches: int = 128,
          db_bytes: float = 4 * GB,
          chunk_bytes: float = 256 * MB,
          result_bytes: float = 40 * MB,
          search_seconds: float = 90.0,
          split_seconds: float = 60.0,
          request_granularity: float = 16 * KB) -> Workflow:
    """A BLAST workflow: split → parallel searches → merge.

    Searches are CPU-bound (tens of seconds to minutes) over
    hundreds-of-MB chunks; ``request_granularity`` sets how finely their
    I/O is chopped into store requests (small records → many requests →
    the latency interference of Fig. 3).
    """
    if n_searches < 1:
        raise ValueError("n_searches must be >= 1")
    reqs = lambda size: max(1, int(size / request_granularity))
    tasks: list[Task] = [Task(
        id="split", stage="split",
        compute_seconds=split_seconds,
        inputs=(FileSpec("/blast/db.fasta", db_bytes, n_files=1),),
        outputs=tuple(FileSpec(f"/blast/chunk-{i:04d}", chunk_bytes,
                               n_files=reqs(chunk_bytes))
                      for i in range(n_searches)),
    )]
    for i in range(n_searches):
        tasks.append(Task(
            id=f"search-{i:04d}", stage="search",
            compute_seconds=search_seconds,
            inputs=(FileSpec(f"/blast/chunk-{i:04d}", chunk_bytes,
                             n_files=reqs(chunk_bytes)),),
            outputs=(FileSpec(f"/blast/res-{i:04d}", result_bytes,
                              n_files=reqs(result_bytes)),),
            # BLAST streams its database throughout the search, so its
            # small reads disturb the victims continuously (§IV-C).
            io_slices=24,
        ))
    tasks.append(Task(
        id="merge", stage="merge",
        compute_seconds=120.0,
        inputs=tuple(FileSpec(f"/blast/res-{i:04d}", result_bytes,
                              n_files=reqs(result_bytes))
                     for i in range(n_searches)),
        outputs=(FileSpec("/blast/report.out", result_bytes * n_searches / 8,
                          n_files=1),),
    ))
    return Workflow("blast", tasks)
