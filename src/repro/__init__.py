"""repro — a reproduction of "Towards Resource Disaggregation — Memory
Scavenging for Scientific Workloads" (Uta, Oprescu, Kielmann; CLUSTER 2016).

The package implements MemFSS, the paper's scavenging in-memory
distributed file system, together with every substrate its evaluation
needs: a discrete-event cluster simulator with max-min-fair fluid
resources, a Redis-like store, the weighted two-layer HRW placement, a
scientific-workflow engine, and phase-based tenant benchmark models
(HPCC, HiBench on Hadoop and Spark).

Quickstart::

    from repro.core import DeploymentConfig, MemFSSDeployment
    from repro.workflows import dd_bag

    dep = MemFSSDeployment(DeploymentConfig(n_own=8, n_victim=32,
                                            alpha=0.25))
    result = dep.engine.execute(dd_bag(n_tasks=256))
    print(result.makespan, dep.victim_class_utilization())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from . import units
from .core import DeploymentConfig, MemFSSDeployment

__all__ = ["DeploymentConfig", "MemFSSDeployment", "units", "__version__"]
