"""Revocation-risk pricing for leased victim memory.

Memtrade-style market terms make revocation *predictable*: a lease that
expires in two seconds, or one whose notice period is too short to drain
a store, is worth less than its nominal bytes.  :func:`lease_discount`
turns a lease's terms into a usable-capacity multiplier in ``[0, 1]``;
:func:`discounted_supply` aggregates a lease set into the
risk-discounted victim supply the α-controller and the admission
predictor both consume (Hydra's lesson — correlated reclaims are the
failure mode to price in — shows up as the controller shrinking the
victim share *before* the reclaim wave lands).

Open-ended leases (``duration is None`` — every lease predating the
market, with or without a notice term) are priced at full value, so
legacy deployments see byte-identical admission decisions and adding
notice to a lease can never lower its price.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..cluster.reservation import ScavengeLease

__all__ = ["lease_discount", "discounted_supply", "node_discounts"]

#: Remaining-term horizon (seconds): a termed lease is worth its full
#: bytes only while it has at least this long left to live.
DEFAULT_RISK_HORIZON = 30.0

#: Notice floor (seconds): shorter revocation notice than this scales
#: the lease's value down proportionally (zero notice on a termed lease
#: means reclaim behaves like a crash — price it near zero).
DEFAULT_SHORT_NOTICE = 2.0


def lease_discount(lease: ScavengeLease, now: float, *,
                   horizon: float = DEFAULT_RISK_HORIZON,
                   short_notice: float = DEFAULT_SHORT_NOTICE) -> float:
    """Usable-capacity multiplier for one lease at time *now*.

    - A lease already inside its drain window (noticed or revoked) is
      worth nothing — its bytes are leaving.
    - A termed lease decays linearly from 1 at ``remaining >= horizon``
      to 0 at expiry, and is further scaled by ``notice /
      short_notice`` (capped at 1) — short-notice reclaims leave no
      time to drain.
    - An open-ended lease is priced at full value whatever its notice
      term: the zero-notice legacy kind already prices at 1.0, and
      added notice only makes revocation *safer*, so it must never pull
      a lease below that floor (the notice scaling applies to termed
      leases only).
    """
    if not lease.active or lease.notified.triggered:
        return 0.0
    if lease.expires_at is None:
        return 1.0
    remaining = lease.expires_at - now
    if remaining <= 0.0:
        return 0.0
    d = 1.0
    if horizon > 0.0:
        d = min(1.0, remaining / horizon)
    if short_notice > 0.0:
        d *= min(1.0, lease.notice / short_notice)
    return d


def node_discounts(leases: Mapping[str, ScavengeLease], now: float, *,
                   horizon: float = DEFAULT_RISK_HORIZON,
                   short_notice: float = DEFAULT_SHORT_NOTICE,
                   ) -> dict[str, float]:
    """Per-node discount for a ``{node_name: lease}`` map (the
    scavenger's ``leases`` attribute)."""
    return {name: lease_discount(lease, now, horizon=horizon,
                                 short_notice=short_notice)
            for name, lease in leases.items()}


def discounted_supply(leases: Iterable[ScavengeLease], now: float, *,
                      horizon: float = DEFAULT_RISK_HORIZON,
                      short_notice: float = DEFAULT_SHORT_NOTICE) -> float:
    """Risk-discounted victim supply in bytes across *leases*."""
    return sum(lease.memory * lease_discount(
        lease, now, horizon=horizon, short_notice=short_notice)
        for lease in leases)
