"""Lease-churn soak: the marketplace's zero-data-loss CI lane.

Each seed runs the ``market-fig2`` scenario in ``controller`` mode under
a heavier-than-default churn schedule — victims served notice mid-write,
termed reposts, permanent reclaims — and asserts the read-back audit
found **no** lost or truncated file.  Any loss raises; the lane is
red/green, not statistical.  The JSON report carries every run's α trace
and market counters so CI can publish them as artifacts.

Runnable directly for the CI lane::

    python -m repro.market.soak --seeds 20 --out results/market-soak.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..units import MB
from .scenario import market_spec, run_market

__all__ = ["run_market_soak", "main"]


class MarketDataLoss(AssertionError):
    """A churn seed lost data — the invariant this soak exists to catch."""


def run_market_soak(seeds, *, n_tasks: int = 256,
                    file_size: float = 64 * MB, n_events: int = 8,
                    horizon: float = 14.0,
                    repost_probability: float = 0.6) -> dict:
    """One controller-mode churn run per seed; zero tolerance for loss."""
    runs = []
    for seed in seeds:
        out = run_market(market_spec(
            seed, "controller", n_tasks=n_tasks, file_size=file_size,
            n_events=n_events, horizon=horizon,
            repost_probability=repost_probability))
        if out["lost_files"]:
            raise MarketDataLoss(
                f"seed {seed}: {len(out['lost_files'])} file(s) lost "
                f"under lease churn: {out['lost_files'][:5]}")
        runs.append(out)
    totals: dict[str, float] = {}
    for run in runs:
        for name, value in run["market"].items():
            totals[name] = totals.get(name, 0) + value
    return {
        "seeds": [run["seed"] for run in runs],
        "lost_files": 0,
        "market_totals": totals,
        "alpha_traces": {str(run["seed"]): run["alpha_trace"]
                         for run in runs},
        "final_alphas": {str(run["seed"]): run["final_alpha"]
                         for run in runs},
        "runs": [{k: v for k, v in run.items() if k != "task_s"}
                 for run in runs],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.market.soak",
        description="Lease-churn soak: market controller, zero data loss")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds to soak (default 20)")
    parser.add_argument("--first-seed", type=int, default=0)
    parser.add_argument("--tasks", type=int, default=256)
    parser.add_argument("--events", type=int, default=8)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_market_soak(
        range(args.first_seed, args.first_seed + args.seeds),
        n_tasks=args.tasks, n_events=args.events)
    totals = report["market_totals"]
    print(f"market soak: {len(report['seeds'])} seeds, 0 files lost; "
          f"granted={totals.get('leases_granted', 0)} "
          f"noticed={totals.get('leases_noticed', 0)} "
          f"retunes={totals.get('retunes', 0)} "
          f"migrated={int(totals.get('bytes_migrated', 0)) // (1 << 20)} MiB")
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
