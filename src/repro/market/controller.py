"""The seeded epoch controller clearing the memory marketplace.

Each epoch the :class:`MarketController`

1. **clears the book** — every pending offer is granted in deterministic
   (sorted) order: the reservation system registers the offer's terms,
   the scavenger claims the lease, spins up the containerized store and
   grows the victim class by that node (new writes see it immediately);
2. **prices the supply** — active leases are risk-discounted by their
   remaining term and notice period (:mod:`repro.market.risk`);
3. **retunes α** — the own-data fraction tracks
   ``1 − supply/demand`` (clamped to ``[alpha_floor, alpha_ceil]``):
   plentiful cheap victim memory keeps α at the paper's sweet spot,
   shrinking or risky supply pulls data home *before* the reclaim wave
   lands;
4. **migrates the delta** — class weights are recomputed through the
   (memoized) calibration in :meth:`repro.core.policy.PlacementPolicy.
   weights` and the scavenger's :meth:`~repro.fs.scavenger.
   ScavengingManager.rebalance` moves **only** the stripes whose
   placement changed between the old and new stripe plans, under the
   per-epoch migration budget.

An idle epoch — empty book, unchanged membership, α within the deadband
— short-circuits without touching the placement, so a marketplace with
no activity is byte-identical to the static-weights path.
"""

from __future__ import annotations

from ..cluster.reservation import ReservationSystem
from ..core.policy import PlacementPolicy
from ..fs.memfss import MemFSS
from ..fs.scavenger import ScavengingManager
from ..sim import Environment, Interrupt
from .book import MarketBook
from .risk import (DEFAULT_RISK_HORIZON, DEFAULT_SHORT_NOTICE,
                   discounted_supply)
from .stats import market_stats

__all__ = ["MarketController"]


class MarketController:
    """Clears the lease book and retunes placement once per epoch."""

    def __init__(self, env: Environment, fs: MemFSS,
                 manager: ScavengingManager,
                 reservations: ReservationSystem,
                 policy: PlacementPolicy, *,
                 book: MarketBook | None = None,
                 epoch: float = 2.0,
                 alpha_floor: float = 0.25,
                 alpha_ceil: float = 0.95,
                 deadband: float = 0.02,
                 risk_horizon: float = DEFAULT_RISK_HORIZON,
                 short_notice: float = DEFAULT_SHORT_NOTICE,
                 supply_target: float = 0.85,
                 budget_bytes: float | None = None,
                 retune: bool = True,
                 victim_class: str = "victim"):
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0.0 <= alpha_floor <= alpha_ceil <= 1.0:
            raise ValueError("need 0 <= alpha_floor <= alpha_ceil <= 1")
        self.env = env
        self.fs = fs
        self.manager = manager
        self.reservations = reservations
        self.policy = policy
        self.book = book if book is not None else MarketBook()
        self.epoch = float(epoch)
        self.alpha_floor = float(alpha_floor)
        self.alpha_ceil = float(alpha_ceil)
        self.deadband = float(deadband)
        self.risk_horizon = float(risk_horizon)
        self.short_notice = float(short_notice)
        if not 0.0 < supply_target <= 1.0:
            raise ValueError("supply_target must be in (0, 1]")
        self.supply_target = float(supply_target)
        self.budget_bytes = budget_bytes
        if retune and policy.alpha is None:
            # with_fraction("own", α) on the retune path needs a
            # fraction-targeted policy containing an "own" class;
            # anything else would crash the controller process on the
            # first non-idle epoch — reject it at construction instead.
            raise ValueError(
                "retune=True requires a fraction-targeted policy with an "
                "'own' class (e.g. PlacementPolicy.own_victim(alpha)); "
                f"got {policy!r} — pass retune=False to run this policy "
                "without live α retuning")
        self.retune = retune
        self.victim_class = victim_class
        initial = policy.alpha
        self.alpha = float(initial if initial is not None else alpha_floor)
        #: Per-epoch α decisions: the headline trace of the Fig. 2-style
        #: sweep (JSON-safe dicts, in epoch order).
        self.alpha_trace: list[dict] = []
        self._last_map = fs.policy
        self._seen_noticed: set[str] = set()
        self._seen_revoked: set[str] = set()
        self._proc = None

    # -- lifecycle -----------------------------------------------------------------
    def start(self):
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(),
                                          name="market-controller")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("market controller stopped")

    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.epoch)
                yield from self.clear_epoch()
        except Interrupt:
            return

    # -- book entry points ---------------------------------------------------------
    def publish(self, node, memory: float, *,
                duration: float | None = None, notice: float = 0.0):
        """A victim posts memory with market terms; granted next epoch."""
        return self.book.publish(node, memory, duration=duration,
                                 notice=notice, now=self.env.now)

    def submit_demand(self, tenant: str, nbytes: float):
        """A consumer declares the bytes it intends to store."""
        return self.book.submit(tenant, nbytes, now=self.env.now)

    # -- the epoch step ------------------------------------------------------------
    def market_leases(self) -> list:
        """Active leases on the victim class, in node-name order."""
        return [self.manager.leases[name]
                for name in sorted(self.manager.leases)
                if self.manager.leases[name].active]

    def supply(self) -> float:
        """Risk-discounted victim supply (bytes) right now."""
        return discounted_supply(self.market_leases(), self.env.now,
                                 horizon=self.risk_horizon,
                                 short_notice=self.short_notice)

    def demand(self) -> float:
        """Outstanding demand: the declared byte demand, floored by what
        is already stored (data on disk is demand already exercised)."""
        stored = sum(s.kv.used_bytes for s in self.fs.servers.values())
        return max(self.book.demand_total(), stored)

    def target_alpha(self) -> float:
        """The α the controller wants right now (rounded so recurring
        market states hit the calibration memo).

        The law targets victim bytes at ``supply_target`` of the
        risk-discounted supply — ``(1 − α)·D = u·S`` — so leased stores
        keep headroom for churn instead of running pinned at capacity:
        plentiful supply clamps to the floor (the paper's α), shrinking
        or risky supply pulls data home before the reclaim wave lands.
        """
        if not self.retune:
            return self.alpha
        demand = self.demand()
        if demand <= 0.0:
            return self.alpha
        raw = 1.0 - self.supply_target * self.supply() / demand
        return round(min(self.alpha_ceil, max(self.alpha_floor, raw)), 3)

    def _grant_pending(self) -> int:
        granted = 0
        for offer in self.book.pending_offers():
            node = offer.node
            if node.name in self.fs.servers:
                lease = self.manager.leases.get(node.name)
                if lease is not None and lease.active \
                        and not lease.notified.triggered:
                    # Duplicate offer for a healthy live store — drop it.
                    self.book.withdraw(node.name)
                # Otherwise the old store is still draining: keep the
                # offer pending and grant it once the drain completes.
                continue
            self.reservations.register_offer(
                node, offer.memory, owner="market", voluntary=True,
                duration=offer.duration, notice=offer.notice)
            self.manager.scavenge_node(
                node, offer.memory, class_name=self.victim_class,
                weight=self._victim_weight(), drain_on_notice=True)
            offer.granted_at = self.env.now
            self.book.withdraw(node.name)
            # A fresh lease on a returning node gets its events counted.
            self._seen_noticed.discard(node.name)
            self._seen_revoked.discard(node.name)
            market_stats.leases_granted += 1
            granted += 1
        return granted

    def _victim_weight(self) -> float:
        spec = self.fs.policy.classes.get(self.victim_class)
        if spec is not None:
            return spec.weight
        return self.policy.weights().get(self.victim_class, 0.0)

    def _count_lease_events(self) -> None:
        for name, lease in self.manager.leases.items():
            if lease.notified.triggered and name not in self._seen_noticed:
                self._seen_noticed.add(name)
                market_stats.leases_noticed += 1
            if lease.revoked.triggered and name not in self._seen_revoked:
                self._seen_revoked.add(name)
                market_stats.leases_revoked += 1

    def clear_epoch(self):
        """Generator: one clearing round (grant → price → retune →
        migrate the plan diff)."""
        market_stats.epochs += 1
        self._count_lease_events()
        granted = self._grant_pending()
        alpha = self.target_alpha()
        moved = {"moved_bytes": 0.0, "moved_stripes": 0,
                 "deferred_files": 0, "freed_bytes": 0.0}
        map_changed = self.fs.policy is not self._last_map
        alpha_changed = abs(alpha - self.alpha) > self.deadband
        if not (granted or map_changed or alpha_changed):
            market_stats.idle_epochs += 1
            return moved
        if alpha_changed:
            self.alpha = alpha
            self.policy = self.policy.with_fraction("own", alpha)
            market_stats.retunes += 1
        weights = self.policy.weights()
        new_map = self.fs.policy.reweighted(
            {c: float(w) for c, w in weights.items()})
        summary = yield from self.manager.rebalance(
            new_map, budget_bytes=self.budget_bytes)
        self._last_map = self.fs.policy
        market_stats.stripes_migrated += summary["moved_stripes"]
        market_stats.bytes_migrated += int(summary["moved_bytes"])
        market_stats.bytes_freed += int(summary["freed_bytes"])
        market_stats.files_deferred += summary["deferred_files"]
        moved.update(summary)
        self.alpha_trace.append({
            "t": self.env.now, "alpha": self.alpha,
            "supply": self.supply(), "demand": self.demand(),
            "granted": granted,
            "moved_bytes": summary["moved_bytes"],
            "moved_stripes": summary["moved_stripes"],
            "deferred_files": summary["deferred_files"]})
        return moved
