"""Elastic scavenging marketplace: leased victim memory with live α retuning.

The paper fixes the victim fraction α per deployment; this package turns
victim memory into a *market* (Memtrade at cluster scale): victim nodes
publish :class:`~repro.market.book.MarketOffer`\\ s with explicit terms
(size, lease duration, revocation-notice period), consumers submit byte
demands, and a seeded :class:`~repro.market.controller.MarketController`
clears the book each epoch — recomputing class weights through the
memoized calibration and migrating only the stripes whose placement
actually changed (the :class:`~repro.fs.placement.StripePlan` diff).
Revocation risk is priced (:mod:`repro.market.risk`) into both the
controller's α and the admission predictor's store budgets, and victims
reclaim with *notice* — an announced drain, not a surprise crash.
"""

from .book import MarketBook, MarketOffer, TenantDemand
from .controller import MarketController
from .risk import (DEFAULT_RISK_HORIZON, DEFAULT_SHORT_NOTICE,
                   discounted_supply, lease_discount, node_discounts)
from .scenario import (ChurnEvent, build_churn_schedule, market_mode_specs,
                       market_spec, run_market)
from .stats import MarketStats, market_stats

__all__ = [
    "MarketBook", "MarketOffer", "TenantDemand",
    "MarketController",
    "lease_discount", "discounted_supply", "node_discounts",
    "DEFAULT_RISK_HORIZON", "DEFAULT_SHORT_NOTICE",
    "MarketStats", "market_stats",
    "ChurnEvent", "build_churn_schedule",
    "market_spec", "market_mode_specs", "run_market",
]
